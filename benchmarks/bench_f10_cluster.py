"""F10 — the cluster: multi-core ask scaling and crash-storm durability.

Two claims of ``repro serve --procs N``, measured against **real**
server subprocesses (forked worker pools, SIGKILL, the lot):

* **Processes scale where threads cannot.**  Single-process serving
  (f7) multiplexes askers over threads, but every parse/plan/execute
  still shares one GIL, so CPU-bound ask throughput is capped at one
  core.  ``--procs N`` forks N workers after the corpus loads
  (copy-on-write) and fans session asks across them.  Acceptance on a
  multi-core box: ask throughput with ``--procs 2`` >= 1.7x the
  single-process baseline.  On a single-core box the fork can't buy a
  core, so the gate degrades to a no-collapse floor: the cluster keeps
  >= 0.4x of the baseline (IPC tax only, no pathology).

* **A kill -9 mid-storm loses nothing acknowledged.**  Under a mixed
  ask/DML storm we SIGKILL first a reader that owns a parked
  clarification, then the writer itself.  Acceptance: every INSERT the
  client saw a 200 for is present afterwards on *every* worker (503s
  during the degraded window are by-design rejections, not losses), and
  the pre-crash clarification id still resolves — the session state was
  handed off to a sibling, the data recovered from checkpoint + WAL.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.evalkit import format_table

from benchmarks.conftest import emit

REPO_ROOT = Path(__file__).resolve().parent.parent

QUESTIONS = [
    "how many ships are there",
    "show the carriers",
    "ships commissioned in 1970",
    "how many ships are in the pacific fleet",
]

ASKERS = 4
QUESTIONS_PER_ASKER = 12


def _server_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _start_server(*extra_args: str) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "fleet", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_server_env(),
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    assert "listening on" in line, f"server failed to start: {line!r}"
    url = line.strip().rsplit("listening on ", 1)[1]
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            if _get(url, "/healthz").get("status") == "ok":
                return proc, url
        except (urllib.error.URLError, ConnectionError):
            pass
        time.sleep(0.05)
    raise AssertionError("server never became healthy")


def _get(url: str, path: str) -> dict:
    try:
        with urllib.request.urlopen(url + path, timeout=15) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        return json.loads(error.read())


def _post(url: str, path: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=15) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait_healthy(url: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if _get(url, "/healthz").get("status") == "ok":
            return
        time.sleep(0.1)
    raise AssertionError("pool never returned to full strength")


# -- scaling ----------------------------------------------------------------


def _measure_ask_qps(url: str) -> float:
    """Aggregate session-ask throughput (sessions bypass the response
    cache, so every request runs the full pipeline)."""
    errors: list[tuple] = []

    def asker(k: int) -> None:
        sid = f"f10-asker-{k}"
        for i in range(QUESTIONS_PER_ASKER):
            question = QUESTIONS[(k + i) % len(QUESTIONS)]
            code, envelope = _post(
                url, "/ask", {"question": question, "session": sid}
            )
            if code != 200:
                errors.append((code, envelope))

    # Warm each worker's grammar paths before the timed run.
    for k in range(ASKERS):
        _post(url, "/ask", {"question": QUESTIONS[k % len(QUESTIONS)],
                            "session": f"f10-warm-{k}"})
    threads = [threading.Thread(target=asker, args=(k,)) for k in range(ASKERS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[:3]
    return (ASKERS * QUESTIONS_PER_ASKER) / elapsed


def test_f10_process_pool_scales_ask_throughput():
    cores = os.cpu_count() or 1

    proc, url = _start_server("--workers", "4")
    try:
        single_qps = _measure_ask_qps(url)
    finally:
        proc.kill()
        proc.wait(timeout=10)

    proc, url = _start_server("--procs", "2", "--workers", "4")
    try:
        cluster_qps = _measure_ask_qps(url)
        stats = _get(url, "/stats")
        assert stats["cluster"]["procs"] == 2
        assert stats["cluster"]["all_live"]
    finally:
        proc.kill()
        proc.wait(timeout=10)

    ratio = cluster_qps / single_qps
    gate = "≥ 1.70x (multi-core)" if cores >= 2 else "≥ 0.40x (single core)"
    emit("F10", format_table(
        ["configuration", "asks/s", "vs single"],
        [
            ["1 process (f7 baseline)", f"{single_qps:.1f}", "1.00x"],
            ["--procs 2", f"{cluster_qps:.1f}", f"{ratio:.2f}x"],
            ["gate", gate, "pass"],
        ],
        title=(
            f"F10: {ASKERS * QUESTIONS_PER_ASKER} session asks, "
            f"{ASKERS} concurrent askers, {cores} core(s)"
        ),
    ))
    if cores >= 2:
        # A second process is a second core: near-linear ask scaling.
        assert ratio >= 1.7, f"single={single_qps:.1f}/s cluster={cluster_qps:.1f}/s"
    else:
        # One core can't go faster; the gate is that IPC + routing do
        # not collapse throughput.
        assert ratio >= 0.4, f"single={single_qps:.1f}/s cluster={cluster_qps:.1f}/s"


# -- crash storm ------------------------------------------------------------


def test_f10_kill9_storm_loses_no_acked_statement():
    data_dir = tempfile.mkdtemp(prefix="f10-cluster-")
    proc, url = _start_server(
        "--procs", "3", "--data-dir", data_dir, "--clarify-margin", "10",
    )
    acked: list[int] = []
    rejected_503 = 0
    stop_storm = threading.Event()
    ask_errors: list[tuple] = []

    def dml_storm() -> None:
        nonlocal rejected_503
        row_id = 3000
        while not stop_storm.is_set():
            row_id += 1
            code, _ = _post(url, "/sql", {
                "sql": "INSERT INTO port (id, name, country) "
                       f"VALUES ({row_id}, 'storm{row_id}', 'x')"
            })
            if code == 200:
                acked.append(row_id)
            elif code == 503:
                rejected_503 += 1  # degraded window: rejected, not lost
            time.sleep(0.01)

    def ask_storm(k: int) -> None:
        i = 0
        while not stop_storm.is_set():
            code, envelope = _post(url, "/ask", {
                "question": QUESTIONS[(k + i) % len(QUESTIONS)],
                "session": f"storm-{k}",
            })
            if code != 200:
                ask_errors.append((code, envelope))
            i += 1

    try:
        # Park a clarification on a NON-writer worker (stateless clarify
        # round-robins, so a few tries always find one).
        clar_id, owner = None, 0
        for _ in range(12):
            code, wire = _post(url, "/ask", {
                "question": "ships from norfolk", "clarify": True,
            })
            assert code == 409 and wire["clarification_id"], wire
            owners = _get(url, "/stats")["cluster"]["domains"]["fleet"][
                "clarification_owners"
            ]
            owner = owners[wire["clarification_id"]]
            if owner != 0:
                clar_id = wire["clarification_id"]
                choices = wire["choices"]
                break
        assert clar_id is not None, "no clarification landed on a reader"

        threads = [threading.Thread(target=dml_storm)] + [
            threading.Thread(target=ask_storm, args=(k,)) for k in range(2)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.8)

        # Phase 1: SIGKILL the reader that owns the parked clarification.
        pids = {w["index"]: w["pid"]
                for w in _get(url, "/stats")["cluster"]["workers"]}
        os.kill(pids[owner], signal.SIGKILL)
        _wait_healthy(url)
        time.sleep(0.5)

        # Phase 2: SIGKILL the writer mid-storm.
        pids = {w["index"]: w["pid"]
                for w in _get(url, "/stats")["cluster"]["workers"]}
        os.kill(pids[0], signal.SIGKILL)
        _wait_healthy(url)
        time.sleep(0.5)

        stop_storm.set()
        for thread in threads:
            thread.join(timeout=30)

        # Asks never fail during the storm: readers retry on siblings.
        assert not ask_errors, ask_errors[:3]

        # Zero acked loss: every 200-acked INSERT is on every worker.
        assert acked, "the storm never landed a write"
        for _ in range(6):
            count = _post(url, "/sql", {
                "sql": "SELECT COUNT(*) FROM port WHERE id > 3000"
            })[1]["rows"][0][0]
            assert count == len(acked), (count, len(acked))

        # The pre-crash clarification resolved on a sibling (handoff).
        code, resolved = _post(url, "/resolve", {
            "clarification_id": clar_id, "choice": choices[0]["index"],
        })
        assert code == 200, resolved
        assert resolved["status"] == "answered"
        assert resolved["answer"]["sql"] == choices[0]["sql"]

        restarts = sum(
            w["restarts"] for w in _get(url, "/stats")["cluster"]["workers"]
        )
        assert restarts >= 2
    finally:
        stop_storm.set()
        proc.send_signal(signal.SIGTERM)
        try:
            proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()

    emit("F10-STORM", format_table(
        ["step", "outcome"],
        [
            ["acked INSERTs during storm", str(len(acked))],
            ["503 (degraded window, by design)", str(rejected_503)],
            ["acked rows present after 2 kill -9", f"{len(acked)}/{len(acked)}"],
            ["pre-crash clarification resolved", resolved["status"]],
            ["worker respawns", str(restarts)],
        ],
        title="F10: mixed ask/DML storm with reader + writer SIGKILL "
              "(--procs 3, durable)",
    ))
