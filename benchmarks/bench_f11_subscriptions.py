"""F11 — live questions: standing subscriptions and streaming results.

Three claims of `GET /v1/subscribe` (docs/streaming.md), measured
against real servers:

* **Idle subscriptions are free.**  A subscription is stamped with the
  tables its plan reads and is re-evaluated only when a committed write
  intersects that stamp.  Acceptance: a 1 000-write storm on unrelated
  tables leaves the evaluation counter exactly where registration put
  it (zero storm-induced evaluations), and the storm itself runs at
  ≥ 0.5x the no-subscription throughput (the per-commit relevance check
  is a set intersection, not a query).

* **A relevant committed write pushes an untorn answer.**  After the
  client's DML ack, the next streamed frame reflects exactly that
  commit — single-process and ``--procs 2``, and across a SIGKILL of
  the worker that owns the subscription (the router re-registers it on
  the surviving sibling and the stream keeps pushing).

* **Paginated reads are exact.**  ``/v1/sql`` with ``limit``/``cursor``
  reassembles to byte-identical rows against the unpaginated answer.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

from repro.datasets import fleet
from repro.evalkit import format_table
from repro.service import NliService

from benchmarks.conftest import emit

REPO_ROOT = Path(__file__).resolve().parent.parent

STORM_WRITES = 1000

SHIP_INSERT = (
    "INSERT INTO ship (id, name, type_id, fleet_id, home_port_id, "
    "commander_id, displacement, length, speed, commissioned, crew) "
    "VALUES ({id}, 'f11-{id}', 1, 2, 6, 1, 1000, 100, 30, 2000, 100)"
)
PORT_INSERT = "INSERT INTO port (id, name, country) VALUES ({id}, 'f11p{id}', 'x')"


def _server_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _start_server(*extra_args: str) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "fleet", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_server_env(),
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    assert "listening on" in line, f"server failed to start: {line!r}"
    url = line.strip().rsplit("listening on ", 1)[1]
    _wait_healthy(url)
    return proc, url


def _stop_server(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()


def _get(url: str, path: str) -> dict:
    try:
        with urllib.request.urlopen(url + path, timeout=15) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        return json.loads(error.read())


def _post(url: str, path: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=15) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait_healthy(url: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if _get(url, "/healthz").get("status") == "ok":
                return
        except (urllib.error.URLError, ConnectionError):
            pass
        time.sleep(0.05)
    raise AssertionError("server never became healthy")


def _post_sql_retry(url: str, sql: str, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        code, _ = _post(url, "/v1/sql", {"sql": sql})
        if code == 200:
            return
        assert code == 503, f"unexpected {code}"
        assert time.monotonic() < deadline, "write never got through"
        time.sleep(0.2)


def _open_stream(url: str, question: str):
    host = url.split("//", 1)[1]
    connection = http.client.HTTPConnection(host, timeout=60)
    connection.request(
        "GET",
        "/v1/subscribe?question=" + urllib.parse.quote(question)
        + "&heartbeat=60",
    )
    response = connection.getresponse()
    assert response.status == 200, response.read()
    return connection, response


def _read_answer(response) -> dict:
    while True:
        frame = json.loads(response.readline())
        if frame["type"] in ("answer", "error", "closed"):
            assert frame["type"] == "answer", frame
            return frame


# -- idle cost ---------------------------------------------------------------


IDLE_SUBS = 50


def _storm_seconds(service: NliService) -> float:
    start = time.perf_counter()
    for i in range(STORM_WRITES):
        service.execute(PORT_INSERT.format(id=30000 + i))
    return time.perf_counter() - start


def test_f11_idle_subscription_costs_nothing():
    # Two arms over identical fresh databases, so table growth cannot
    # bias the comparison: the storm alone, then the same storm with 50
    # standing subscriptions that never read the stormed table.
    service = NliService(fleet.build_database(), domain=fleet.domain())
    try:
        baseline_s = _storm_seconds(service)
    finally:
        service.close()

    service = NliService(fleet.build_database(), domain=fleet.domain())
    try:
        subs = [service.subscribe("how many ships are there") for _ in range(IDLE_SUBS)]
        for subscription in subs:
            assert subscription.next_frame(timeout=5.0)["type"] == "answer"
        evals_before = service.stats["subscription_evaluations"]
        subscribed_s = _storm_seconds(service)
        stats = service.stats
        storm_evals = stats["subscription_evaluations"] - evals_before
        ratio = baseline_s / subscribed_s if subscribed_s else 1.0
    finally:
        service.close()

    emit("F11", format_table(
        ["measure", "value", "gate"],
        [
            [f"{STORM_WRITES} unrelated commits, no subscriptions",
             f"{baseline_s:.2f}s", ""],
            [f"{STORM_WRITES} unrelated commits, {IDLE_SUBS} idle subscriptions",
             f"{subscribed_s:.2f}s", f"{ratio:.2f}x of baseline (≥ 0.50x)"],
            ["storm-induced evaluations", str(storm_evals), "= 0"],
            ["irrelevant commits filtered",
             str(stats["subscription_irrelevant_commits"]), f"≥ {STORM_WRITES}"],
        ],
        title="F11: idle-subscription cost under an unrelated write storm",
    ))
    assert storm_evals == 0, "an unrelated commit reached the evaluator"
    assert stats["subscription_irrelevant_commits"] >= STORM_WRITES
    assert ratio >= 0.5, (
        f"storm slowed {1 / ratio:.2f}x with {IDLE_SUBS} idle subscriptions"
    )


# -- push-on-commit ----------------------------------------------------------


def _push_roundtrip(url: str, row_id: int, expected: int, response) -> float:
    """Ack-to-frame latency for one relevant committed write."""
    _post_sql_retry(url, SHIP_INSERT.format(id=row_id))
    acked = time.perf_counter()
    frame = _read_answer(response)
    latency = time.perf_counter() - acked
    got = frame["envelope"]["answer"]["rows"][0][0]
    assert got == expected, f"torn/stale push: {got} != {expected}"
    return latency


def test_f11_relevant_write_pushes_single_process():
    proc, url = _start_server()
    try:
        connection, response = _open_stream(url, "how many ships are there")
        hello = json.loads(response.readline())
        assert hello["tables"] == ["ship"]
        count = _read_answer(response)["envelope"]["answer"]["rows"][0][0]
        latencies = [
            _push_roundtrip(url, 50000 + i, count + 1 + i, response)
            for i in range(5)
        ]
        response.close()
        connection.close()
    finally:
        _stop_server(proc)

    emit("F11-PUSH", format_table(
        ["configuration", "pushes", "max ack→frame latency"],
        [["1 process", "5/5 exact", f"{max(latencies) * 1000:.0f}ms"]],
        title="F11: committed relevant writes push untorn answers",
    ))


def test_f11_push_survives_cluster_owner_sigkill():
    proc, url = _start_server("--procs", "2")
    try:
        connection, response = _open_stream(url, "how many ships are there")
        hello = json.loads(response.readline())
        count = _read_answer(response)["envelope"]["answer"]["rows"][0][0]

        pre_kill = _push_roundtrip(url, 51000, count + 1, response)

        owners = _get(url, "/stats")["cluster"]["domains"]["fleet"][
            "subscription_owners"
        ]
        owner = owners[hello["subscription"]]
        pids = {w["index"]: w["pid"] for w in _get(url, "/stats")["cluster"]["workers"]}
        os.kill(pids[owner], signal.SIGKILL)

        # The failover re-registration re-evaluates and pushes current.
        failover = _read_answer(response)
        assert failover["envelope"]["answer"]["rows"][0][0] == count + 1
        _wait_healthy(url)
        stats = _get(url, "/stats")["cluster"]["domains"]["fleet"]
        new_owner = stats["subscription_owners"][hello["subscription"]]
        assert new_owner != owner
        assert stats["router"]["subscription_handoffs"] >= 1

        post_kill = _push_roundtrip(url, 51001, count + 2, response)
        response.close()
        connection.close()
    finally:
        _stop_server(proc)

    emit("F11-KILL", format_table(
        ["step", "outcome"],
        [
            ["push before kill (ack→frame)", f"{pre_kill * 1000:.0f}ms"],
            ["owner SIGKILLed", f"worker {owner} → worker {new_owner}"],
            ["failover re-registration pushed", "current answer"],
            ["push after kill (ack→frame)", f"{post_kill * 1000:.0f}ms"],
        ],
        title="F11: subscription survives owner SIGKILL (--procs 2)",
    ))


# -- pagination --------------------------------------------------------------


def test_f11_paginated_sql_is_exact():
    proc, url = _start_server()
    try:
        sql = "SELECT id, name FROM ship ORDER BY id"
        code, whole = _post(url, "/v1/sql", {"sql": sql})
        assert code == 200 and "next_cursor" not in whole

        pages = 0
        rows: list = []
        payload: dict = {"sql": sql, "limit": 7}
        while True:
            code, page = _post(url, "/v1/sql", payload)
            assert code == 200, page
            rows.extend(page["rows"])
            pages += 1
            if not page.get("next_cursor"):
                break
            payload = {"sql": sql, "cursor": page["next_cursor"]}
        assert rows == whole["rows"], "pagination changed the result"
        assert page["total_rows"] == len(whole["rows"])
    finally:
        _stop_server(proc)

    emit("F11-PAGE", format_table(
        ["measure", "value"],
        [
            ["unpaginated rows", str(len(whole["rows"]))],
            ["pages of 7", str(pages)],
            ["reassembly", "identical"],
        ],
        title="F11: /v1/sql limit/cursor pagination is exact",
    ))
