"""F12 — columnar batch execution on the hot SELECT path.

The row interpreter walks one ``Environment`` per row through the tree
evaluator; the columnar path compiles each plan node into a batch kernel
(fused predicate comprehensions over a shared selection vector) and only
materializes rows at projection time.  Both paths are observably
identical — ``tests/test_columnar_differential.py`` holds that line —
so the only question left is whether the kernels actually pay.

Two comparisons over the same 50k-row ship table:

* ``cold join`` — first execution on a fresh engine with the plan cache
  off: parse, plan, optimize, install kernels, execute.  This is the
  interactive first-ask story and the headline gate: columnar must be
  >= 2x faster than the row path.
* ``warm ask`` — repeat median with the plan cache on.  The result set
  is above the materialized-result cap, so repeats re-execute through
  the cached plan (kernels installed once, at plan time); columnar must
  never lose here.

Acceptance: cold columnar join >= 2x the row path; warm columnar no
worse than warm row (within measurement noise); the pinned F4/F5/F8
gates are untouched by the columnar default.
"""

from __future__ import annotations

import time

from repro.datasets import fleet
from repro.evalkit import format_series
from repro.sqlengine import Database, Engine

from benchmarks.conftest import emit

SHIPS = 50_000
# Non-selective residual join: forces a real hash join over the bulk of
# the ship table with a post-join filter — the shape the kernels target.
JOIN = (
    "SELECT ship.name, fleet.name FROM ship JOIN fleet ON "
    "ship.fleet_id = fleet.id WHERE ship.displacement > 1000"
)
WARM = (
    "SELECT name FROM ship WHERE displacement > 20000 AND commissioned > 1950"
)


def _cold_ms(database: Database, columnar: bool, repeats: int = 3) -> float:
    """Best-of-N first execution on fresh cache-less engines."""
    times = []
    for _ in range(repeats):
        engine = Engine(database, use_plan_cache=False, use_columnar=columnar)
        start = time.perf_counter()
        result = engine.execute(JOIN)
        times.append((time.perf_counter() - start) * 1000.0)
        assert len(result.rows) > SHIPS * 0.9  # the filter keeps the bulk
    return min(times)


def _warm_ms(database: Database, columnar: bool, repeats: int = 7) -> float:
    """Median repeat latency through an already-cached plan.

    The result exceeds ``max_cached_result_rows``, so every repeat
    re-executes — this isolates pure execution under a warm plan cache.
    """
    engine = Engine(database, use_columnar=columnar)
    engine.execute(WARM)  # populate the plan cache outside the clock
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.execute(WARM)
        times.append((time.perf_counter() - start) * 1000.0)
    times.sort()
    return times[len(times) // 2]


def test_f12_columnar_join(benchmark):
    def sweep():
        database = fleet.build_database(seed=7, ships=SHIPS)
        return (
            _cold_ms(database, columnar=False),
            _cold_ms(database, columnar=True),
            _warm_ms(database, columnar=False),
            _warm_ms(database, columnar=True),
        )

    row_cold, col_cold, row_warm, col_warm = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    points = [
        ("cold join", [f"{row_cold:.2f}", f"{col_cold:.2f}",
                       f"{row_cold / max(col_cold, 1e-6):.2f}x"]),
        ("warm ask", [f"{row_warm:.3f}", f"{col_warm:.3f}",
                      f"{row_warm / max(col_warm, 1e-6):.2f}x"]),
    ]
    emit("F12", format_series(
        "query",
        ["row ms", "columnar ms", "speedup"],
        points,
        title=f"F12: row vs columnar execution on a {SHIPS}-row join",
    ))
    # Headline gate: the batch kernels must at least halve the cold join.
    assert col_cold * 2 <= row_cold, (
        f"cold join: row={row_cold:.1f}ms columnar={col_cold:.1f}ms"
    )
    # Warm repeats re-execute through the cached plan; columnar must not
    # regress them (generous noise floor against timer jitter).
    assert col_warm <= row_warm * 1.5 + 0.5, (
        f"warm ask: row={row_warm:.3f}ms columnar={col_warm:.3f}ms"
    )
