"""F1 (Figure 1) — end-to-end latency vs question length.

The series shows per-question wall time bucketed by token count; the
pytest-benchmark timing covers a single representative question so the
suite also tracks regressions.
"""

from __future__ import annotations

import time

from repro.core.pipeline import NaturalLanguageInterface
from repro.evalkit import format_series

from benchmarks.conftest import emit


def _latency_series(bundle):
    nli = NaturalLanguageInterface(bundle.database, domain=bundle.model)
    buckets: dict[str, list[float]] = {}
    for example in bundle.corpus:
        tokens = len(example.question.split())
        if tokens <= 4:
            bucket = "2-4"
        elif tokens <= 6:
            bucket = "5-6"
        elif tokens <= 8:
            bucket = "7-8"
        else:
            bucket = "9+"
        start = time.perf_counter()
        response = nli.ask(example.question)
        elapsed = (time.perf_counter() - start) * 1000.0
        if not response.ok:
            continue
        buckets.setdefault(bucket, []).append(elapsed)
    points = []
    for bucket in ("2-4", "5-6", "7-8", "9+"):
        values = buckets.get(bucket, [])
        if not values:
            continue
        mean = sum(values) / len(values)
        points.append((bucket, [len(values), f"{mean:.1f}", f"{max(values):.1f}"]))
    return points


def test_f1_latency(benchmark, fleet_bundle):
    points = _latency_series(fleet_bundle)
    emit("F1", format_series(
        "tokens", ["questions", "mean ms", "max ms"], points,
        title="F1: end-to-end latency vs question length (fleet corpus)",
    ))
    # Interactive-rate requirement: every bucket answers well under a second.
    for _, values in points:
        assert float(values[1]) < 1000.0

    nli = NaturalLanguageInterface(
        fleet_bundle.database, domain=fleet_bundle.model
    )
    benchmark(nli.ask, "how many ships are in the pacific fleet")
