"""F2 (Figure 2) — accuracy vs synonym-dictionary size (ablation A2).

Sweeps the fraction of hand-curated synonyms loaded into the lexicon;
catalog-derived names always load.  The curve shows how much of the
system's coverage comes from the auto-generated lexicon alone versus the
human vocabulary layered on top.
"""

from __future__ import annotations

from repro.core.config import NliConfig
from repro.evalkit import evaluate_nli, format_series, pct

from benchmarks.conftest import emit

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _sweep(bundle):
    points = []
    for fraction in FRACTIONS:
        config = NliConfig(synonym_fraction=fraction)
        result = evaluate_nli(bundle, config=config)
        points.append(
            (f"{fraction:.2f}", [pct(result.stages.parse_rate),
                                 pct(result.stages.accuracy)])
        )
    return points


def test_f2_lexicon_sweep(benchmark, fleet_bundle):
    points = benchmark.pedantic(
        _sweep, args=(fleet_bundle,), rounds=1, iterations=1
    )
    emit("F2", format_series(
        "synonym fraction", ["parsed", "correct"], points,
        title="F2: coverage vs synonym-dictionary size (fleet corpus)",
    ))
    first = float(points[0][1][1].rstrip("%"))
    last = float(points[-1][1][1].rstrip("%"))
    # The curve must rise: synonyms buy real coverage.
    assert last >= first + 10.0
    # But the auto-generated lexicon alone already answers a solid chunk.
    assert first >= 20.0
