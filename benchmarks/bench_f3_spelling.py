"""F3 (Figure 3) — robustness to typos, with/without spelling correction
(ablation A1)."""

from __future__ import annotations

import random

from repro.core.config import NliConfig
from repro.core.pipeline import NaturalLanguageInterface
from repro.evalkit import answers_match, corrupt_question, format_series, pct
from repro.sqlengine.executor import Engine

from benchmarks.conftest import emit

RATES = (0.0, 0.1, 0.2, 0.3)


def _accuracy_at(bundle, nli, rate: float, seed: int) -> float:
    rng = random.Random(seed)
    gold_engine = Engine(bundle.database)
    correct = 0
    for example in bundle.corpus:
        question = corrupt_question(example.question, rate, rng)
        gold = gold_engine.execute(example.gold_sql)
        response = nli.ask(question)
        if response.ok and answers_match(response.answer.result, gold):
            correct += 1
    return correct / len(bundle.corpus)


def _sweep(bundle):
    with_corr = NaturalLanguageInterface(
        bundle.database, domain=bundle.model,
        config=NliConfig(spelling_correction=True),
    )
    without_corr = NaturalLanguageInterface(
        bundle.database, domain=bundle.model,
        config=NliConfig(spelling_correction=False),
    )
    points = []
    for rate in RATES:
        on = _accuracy_at(bundle, with_corr, rate, seed=42)
        off = _accuracy_at(bundle, without_corr, rate, seed=42)
        points.append((f"{int(rate * 100)}%", [pct(on), pct(off)]))
    return points


def test_f3_spelling_robustness(benchmark, fleet_bundle):
    points = benchmark.pedantic(
        _sweep, args=(fleet_bundle,), rounds=1, iterations=1
    )
    emit("F3", format_series(
        "typo rate", ["correction ON", "correction OFF"], points,
        title="F3: accuracy vs word-corruption rate (fleet corpus)",
    ))
    # At zero corruption both configurations agree...
    assert points[0][1][0] == points[0][1][1]
    # ...and under corruption the corrector recovers a clear margin.
    on_20 = float(points[2][1][0].rstrip("%"))
    off_20 = float(points[2][1][1].rstrip("%"))
    assert on_20 > off_20 + 10.0
