"""F4 (Figure 4) — relational-engine scaling (ablation A5).

Latency of point lookup, equi-join and grouped aggregate as the ship
table grows, with indexes on and off.  The shape to reproduce: indexed
lookup stays flat while unindexed lookup grows linearly.
"""

from __future__ import annotations

import time

from repro.datasets import fleet
from repro.evalkit import format_series
from repro.sqlengine import Database, Engine

from benchmarks.conftest import emit

SIZES = (100, 500, 2000, 8000)

LOOKUP = "SELECT name FROM ship WHERE id = 37"
JOIN = (
    "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
    "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'"
)
AGGREGATE = (
    "SELECT fleet_id, AVG(displacement) FROM ship GROUP BY fleet_id"
)


def _median_ms(engine: Engine, sql: str, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.execute(sql)
        times.append((time.perf_counter() - start) * 1000.0)
    times.sort()
    return times[len(times) // 2]


def _scaled_database(rows: int) -> Database:
    return fleet.build_database(seed=7, ships=rows)


def _sweep():
    points = []
    for size in SIZES:
        db = _scaled_database(size)
        indexed = Engine(db, use_indexes=True)  # PK hash index exists
        unindexed = Engine(db, use_indexes=False)
        points.append((
            size,
            [
                f"{_median_ms(indexed, LOOKUP):.2f}",
                f"{_median_ms(unindexed, LOOKUP):.2f}",
                f"{_median_ms(indexed, JOIN):.2f}",
                f"{_median_ms(indexed, AGGREGATE):.2f}",
            ],
        ))
    return points


def test_f4_engine_scaling(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit("F4", format_series(
        "rows",
        ["lookup idx ms", "lookup scan ms", "join ms", "group-agg ms"],
        points,
        title="F4: engine latency vs ship-table cardinality",
    ))
    # Index keeps point lookups roughly flat; the full scan does not.
    small_idx = float(points[0][1][0])
    large_idx = float(points[-1][1][0])
    small_scan = float(points[0][1][1])
    large_scan = float(points[-1][1][1])
    scan_growth = large_scan / max(small_scan, 1e-6)
    idx_growth = large_idx / max(small_idx, 1e-6)
    assert scan_growth > idx_growth * 2


def test_f4_lookup_benchmark(benchmark):
    db = _scaled_database(2000)
    engine = Engine(db)
    benchmark(engine.execute, LOOKUP)


def test_f4_join_benchmark(benchmark):
    db = _scaled_database(2000)
    engine = Engine(db)
    benchmark(engine.execute, JOIN)
