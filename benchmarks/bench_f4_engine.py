"""F4 (Figure 4) — relational-engine scaling (ablation A5).

Latency of point lookup, equi-join and grouped aggregate as the ship
table grows, with indexes on and off.  The shape to reproduce: indexed
lookup stays flat while unindexed lookup grows linearly.

The join is measured twice: cold (first execution on a fresh engine —
parse, plan, optimize, execute) and warm (repeats served through the
statement-plan cache).  The warm series is the repeated-question latency
story: it must stay far below cold at every size.
"""

from __future__ import annotations

import time

from repro.datasets import fleet
from repro.evalkit import format_series
from repro.sqlengine import Database, Engine

from benchmarks.conftest import emit

SIZES = (100, 500, 2000, 8000)

LOOKUP = "SELECT name FROM ship WHERE id = 37"
JOIN = (
    "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
    "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'"
)
AGGREGATE = (
    "SELECT fleet_id, AVG(displacement) FROM ship GROUP BY fleet_id"
)


def _median_ms(engine: Engine, sql: str, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.execute(sql)
        times.append((time.perf_counter() - start) * 1000.0)
    times.sort()
    return times[len(times) // 2]


def _cold_and_warm_ms(database: Database, sql: str) -> tuple[float, float]:
    """First execution vs cached-repeat median on a fresh engine."""
    engine = Engine(database)
    start = time.perf_counter()
    engine.execute(sql)
    cold = (time.perf_counter() - start) * 1000.0
    return cold, _median_ms(engine, sql)


def _scaled_database(rows: int) -> Database:
    return fleet.build_database(seed=7, ships=rows)


def _sweep():
    points = []
    for size in SIZES:
        db = _scaled_database(size)
        # Cache off for the scaling series: these measure raw execution.
        indexed = Engine(db, use_indexes=True, use_plan_cache=False)
        unindexed = Engine(db, use_indexes=False, use_plan_cache=False)
        join_cold, join_warm = _cold_and_warm_ms(db, JOIN)
        points.append((
            size,
            [
                f"{_median_ms(indexed, LOOKUP):.2f}",
                f"{_median_ms(unindexed, LOOKUP):.2f}",
                f"{join_cold:.2f}",
                f"{join_warm:.3f}",
                f"{_median_ms(indexed, AGGREGATE):.2f}",
            ],
        ))
    return points


def test_f4_engine_scaling(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit("F4", format_series(
        "rows",
        [
            "lookup idx ms",
            "lookup scan ms",
            "join cold ms",
            "join warm ms",
            "group-agg ms",
        ],
        points,
        title="F4: engine latency vs ship-table cardinality",
    ))
    # Index keeps point lookups roughly flat; the full scan does not.
    small_idx = float(points[0][1][0])
    large_idx = float(points[-1][1][0])
    small_scan = float(points[0][1][1])
    large_scan = float(points[-1][1][1])
    scan_growth = large_scan / max(small_scan, 1e-6)
    idx_growth = large_idx / max(small_idx, 1e-6)
    assert scan_growth > idx_growth * 2


def test_f4_plan_cache_speedup():
    """Acceptance: cached repeats of the F4 join are >= 3x faster than cold."""
    db = _scaled_database(2000)
    cold, warm = _cold_and_warm_ms(db, JOIN)
    assert warm * 3 <= cold, f"cold={cold:.3f}ms warm={warm:.3f}ms"


def test_f4_explain_shows_stats_choices():
    """The skewed fleet/ship join must surface its statistics decisions."""
    db = _scaled_database(2000)
    engine = Engine(db)
    text = engine.explain(
        "SELECT fleet.name, ship.name FROM fleet JOIN ship "
        "ON ship.fleet_id = fleet.id"
    )
    assert "build=left" in text  # fleet (4 rows) is the build side
    assert "est=" in text


def test_f4_lookup_benchmark(benchmark):
    db = _scaled_database(2000)
    engine = Engine(db, use_plan_cache=False)
    benchmark(engine.execute, LOOKUP)


def test_f4_join_benchmark(benchmark):
    db = _scaled_database(2000)
    engine = Engine(db, use_plan_cache=False)
    benchmark(engine.execute, JOIN)


def test_f4_join_cached_benchmark(benchmark):
    db = _scaled_database(2000)
    engine = Engine(db)  # plan/result cache on: the repeated-question path
    benchmark(engine.execute, JOIN)
