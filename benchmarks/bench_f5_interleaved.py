"""F5 — interleaved DML + questions (per-table versioning payoff).

The PR-1 cache layer made *repeated* questions fast, but one global
version counter meant any INSERT forced a full lexicon + ValueIndex
rebuild on the next ``ask()`` — O(database) per question for interactive
sessions that mix writes with questions.  With per-table stamps and
delta-driven refresh, the warm path after a write is O(changed rows).

Two series over the same 10k-row ship table:

* ``rebuild`` — the old behaviour, emulated by forcing a full language-
  layer rebuild after each write (``refresh(full=True)``);
* ``delta`` — the incremental path: the write's row-level delta patches
  the value index in place.

Acceptance: the delta path is >= 5x faster per interleaved round, never
performs a full rebuild, and a write to one table provably leaves another
table's cached plans/results valid (plan-cache hit counters).
"""

from __future__ import annotations

import time

from repro.core import NaturalLanguageInterface
from repro.datasets import fleet
from repro.evalkit import format_series
from repro.sqlengine import Engine

from benchmarks.conftest import emit

SHIPS = 10_000
ROUNDS = 6
QUESTION = "how many ships are there"


def _fresh_nli() -> NaturalLanguageInterface:
    database = fleet.build_database(seed=7, ships=SHIPS)
    return NaturalLanguageInterface(database, domain=fleet.domain())


def _insert_ship(nli: NaturalLanguageInterface, i: int) -> None:
    nli.engine.execute(
        f"INSERT INTO ship VALUES ({100_000 + i}, 'Colossus {i}', "
        "3, 1, 1, 1, 8000, 600, 30, 1976, 150)"
    )


def _interleaved_round_ms(nli: NaturalLanguageInterface, i: int, rebuild: bool) -> float:
    """One write followed by one question; returns elapsed milliseconds."""
    start = time.perf_counter()
    _insert_ship(nli, i)
    if rebuild:
        nli.refresh(full=True)  # emulate global-counter invalidation
    response = nli.ask(QUESTION)
    elapsed = (time.perf_counter() - start) * 1000.0
    assert response.answer.result.scalar() == SHIPS + (i + 1)  # stays correct
    return elapsed


def _run_series(rebuild: bool) -> list[float]:
    nli = _fresh_nli()
    nli.ask(QUESTION)  # prime grammar/lexicon paths outside the clock
    times = [
        _interleaved_round_ms(nli, i, rebuild=rebuild) for i in range(ROUNDS)
    ]
    if not rebuild:
        # The warm path must never have rebuilt: one build at construction,
        # every subsequent write absorbed as a delta.
        assert nli.stats["full_rebuilds"] == 1, nli.stats
        assert nli.stats["delta_refreshes"] == ROUNDS, nli.stats
    return times


def test_f5_interleaved_dml_ask(benchmark):
    def sweep():
        return _run_series(rebuild=True), _run_series(rebuild=False)

    rebuild_times, delta_times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    points = [
        (i, [f"{r:.2f}", f"{d:.2f}"])
        for i, (r, d) in enumerate(zip(rebuild_times, delta_times))
    ]
    emit("F5", format_series(
        "round",
        ["rebuild ms", "delta ms"],
        points,
        title=f"F5: interleaved INSERT+ask on a {SHIPS}-row table",
    ))
    rebuild_median = sorted(rebuild_times)[ROUNDS // 2]
    delta_median = sorted(delta_times)[ROUNDS // 2]
    assert delta_median * 5 <= rebuild_median, (
        f"rebuild={rebuild_median:.1f}ms delta={delta_median:.1f}ms"
    )


def test_f5_write_preserves_other_tables_cache():
    """Acceptance: a write to `fleet` leaves `ship` plans/results cached."""
    engine = Engine(fleet.build_database(seed=7, ships=2000))
    ships = "SELECT COUNT(*) FROM ship"
    engine.execute(ships)
    engine.execute(ships)
    stats = engine.plan_cache.stats
    assert stats["result_hits"] == 1
    plan_hits = stats["plan_hits"]
    engine.execute("INSERT INTO fleet VALUES (9, 'Reserve', 'Atlantic', 'Boston')")
    engine.execute(ships)  # still served from the materialized result
    assert stats["result_hits"] == 2
    assert stats["plan_hits"] == plan_hits
    # ...while the written table's own entries do invalidate.
    fleets = "SELECT COUNT(*) FROM fleet"
    assert engine.execute(fleets).scalar() == 5
    engine.execute("DELETE FROM fleet WHERE name = 'Reserve'")
    assert engine.execute(fleets).scalar() == 4
