"""F6 — service layer: batch `ask_many` and read-write lock scaling.

Two claims of the service-API redesign, measured:

* **Batch beats interleaved-cold sequential.**  A service receiving
  writes interleaved with questions pays, per sequential question, one
  delta refresh (value-index patch + prepared-cache flush) plus a full
  normalize/parse.  ``ask_many`` absorbs all pending writes in *one*
  freshness pass and lets repeated question strings share the prepared
  pipeline and the engine's materialized results.  Acceptance: the batch
  is >= 2x faster than the same questions asked one-by-one with a write
  before each (same total writes, same total questions).

* **Concurrent readers scale vs a single global lock.**  Readers holding
  the service's RW lock overlap (max_concurrent_readers > 1, asserted on
  real ``ask()`` traffic), and for lock-bound work the wall-clock win is
  direct: N sleepers under the RW read lock finish ~concurrently where an
  exclusive lock serializes them.  Acceptance: RW wall time is at least
  2x better than the exclusive-lock baseline, and an exclusive lock never
  shows reader overlap.
"""

from __future__ import annotations

import threading
import time

from repro.core import NaturalLanguageInterface
from repro.datasets import fleet
from repro.evalkit import format_table
from repro.service import NliService, RwLock

from benchmarks.conftest import emit

SHIPS = 2_000
DISTINCT_QUESTIONS = [
    "how many ships are there",
    "show the carriers",
    "how many ships are in the pacific fleet",
    "ships commissioned in 1970",
]
REPEATS = 8  # batch = 4 distinct questions x 8 repeats = 32 questions
READER_THREADS = 4
SLEEP_S = 0.02


def _questions() -> list[str]:
    return DISTINCT_QUESTIONS * REPEATS


def _fresh_nli() -> NaturalLanguageInterface:
    database = fleet.build_database(seed=11, ships=SHIPS)
    nli = NaturalLanguageInterface(database, domain=fleet.domain())
    nli.ask("how many fleets are there")  # prime grammar paths off the clock
    return nli


def _insert_ship(nli: NaturalLanguageInterface, i: int) -> None:
    nli.engine.execute(
        f"INSERT INTO ship VALUES ({200_000 + i}, 'Batch {i}', "
        "3, 1, 1, 1, 8000, 600, 30, 1976, 150)"
    )


def _sequential_cold_ms() -> float:
    """One write before every question: each ask pays a delta refresh."""
    nli = _fresh_nli()
    questions = _questions()
    start = time.perf_counter()
    for i, question in enumerate(questions):
        _insert_ship(nli, i)
        response = nli.ask(question)
        assert response.ok, response.diagnostics
    return (time.perf_counter() - start) * 1000.0


def _batch_ms() -> tuple[float, NaturalLanguageInterface]:
    """Same writes, same questions — but batched through ask_many."""
    nli = _fresh_nli()
    questions = _questions()
    start = time.perf_counter()
    for i in range(len(questions)):
        _insert_ship(nli, i)
    responses = nli.ask_many(questions)
    elapsed = (time.perf_counter() - start) * 1000.0
    assert all(r.ok for r in responses)
    assert responses[0].answer.result.scalar() == SHIPS + len(questions)
    return elapsed, nli


def test_f6_batch_vs_sequential(benchmark):
    def sweep():
        sequential = _sequential_cold_ms()
        batch, nli = _batch_ms()
        return sequential, batch, nli

    sequential_ms, batch_ms, nli = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    n = len(_questions())
    emit("F6", format_table(
        ["mode", "total ms", "ms/question"],
        [
            ["sequential (write+ask each)", f"{sequential_ms:.1f}",
             f"{sequential_ms / n:.2f}"],
            ["batch (writes, then ask_many)", f"{batch_ms:.1f}",
             f"{batch_ms / n:.2f}"],
            ["speedup", f"{sequential_ms / batch_ms:.1f}x", ""],
        ],
        title=f"F6: {n} questions interleaved with {n} writes, {SHIPS}-row table",
    ))
    # The batch shares one freshness pass...
    assert nli.stats["delta_refreshes"] == 1, nli.stats
    assert nli.stats["full_rebuilds"] == 1, nli.stats
    # ...and must beat the interleaved sequential path by >= 2x.
    assert batch_ms * 2 <= sequential_ms, (
        f"sequential={sequential_ms:.1f}ms batch={batch_ms:.1f}ms"
    )


def test_f6_concurrent_readers_overlap():
    """Real ask() traffic under the service shows reader concurrency."""
    service = NliService(
        fleet.build_database(seed=11, ships=200), domain=fleet.domain()
    )
    service.ask("how many ships are there")  # prime
    start = threading.Barrier(READER_THREADS)

    def reader() -> None:
        start.wait()
        for question in DISTINCT_QUESTIONS * 3:
            assert service.ask(question).ok

    threads = [threading.Thread(target=reader) for _ in range(READER_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert service.lock_stats["max_concurrent_readers"] > 1, service.lock_stats


def test_f6_rw_lock_scales_vs_exclusive():
    """Lock-bound readers: RW overlaps, one global mutex serializes."""

    def rw_workload() -> float:
        lock = RwLock()
        barrier = threading.Barrier(READER_THREADS)

        def reader() -> None:
            barrier.wait()
            with lock.read_locked():
                time.sleep(SLEEP_S)

        return _run_threads(reader)

    def exclusive_workload() -> float:
        lock = threading.Lock()
        barrier = threading.Barrier(READER_THREADS)

        def reader() -> None:
            barrier.wait()
            with lock:
                time.sleep(SLEEP_S)

        return _run_threads(reader)

    rw_ms = rw_workload()
    exclusive_ms = exclusive_workload()
    emit("F6-LOCK", format_table(
        ["lock", f"wall ms ({READER_THREADS} readers x {SLEEP_S * 1000:.0f}ms)"],
        [
            ["read-write (service)", f"{rw_ms:.1f}"],
            ["single global mutex", f"{exclusive_ms:.1f}"],
            ["speedup", f"{exclusive_ms / rw_ms:.1f}x"],
        ],
        title="F6: reader scaling, RW lock vs global mutex",
    ))
    assert rw_ms * 2 <= exclusive_ms, (
        f"rw={rw_ms:.1f}ms exclusive={exclusive_ms:.1f}ms"
    )


def _run_threads(target) -> float:
    threads = [threading.Thread(target=target) for _ in range(READER_THREADS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return (time.perf_counter() - start) * 1000.0
