"""F7 — the cross-process HTTP service: concurrent askers and durability.

Two claims of the server, measured against a **real** ``repro serve``
subprocess on an ephemeral loopback port:

* **Concurrent askers beat serial round-trips.**  The paper's workload
  is a shared facility: many casual users at terminals, each *thinking*
  between questions (10ms here — generously fast typing).  A serial
  facility answers one round trip at a time, so its wall clock is the
  sum of every user's think time plus every answer.  The asyncio front
  end keeps many connections in flight and serves user B while user A
  thinks, so aggregate throughput scales toward the number of users.
  Acceptance: the same question load issued by concurrent askers
  finishes >= 2x faster than as serial round-trips (observed ~4x with 4
  askers).

* **A pending clarification survives ``kill -9``.**  With ``--state``,
  the server appends every session turn and parked clarification to a
  JSONL log.  We ask an ambiguous question, get 409 + choices +
  ``clarification_id``, SIGKILL the server mid-dialog, restart it on the
  same log, and resolve the *old* id against the new process: the answer
  must be exactly the choice's SQL, and a session follow-up must still
  bind to the clarified reading.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.evalkit import format_table

from benchmarks.conftest import emit

REPO_ROOT = Path(__file__).resolve().parent.parent

QUESTIONS = [
    "how many ships are there",
    "show the carriers",
    "ships commissioned in 1970",
    "how many ships are in the pacific fleet",
]
ASKERS = 4
QUESTIONS_PER_ASKER = 20
THINK_S = 0.010  # per-question user think time (fast typist)


def _server_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _start_server(*extra_args: str) -> tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on an ephemeral port; returns (proc, url)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "fleet", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_server_env(),
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    assert "listening on" in line, f"server failed to start: {line!r}"
    url = line.strip().rsplit("listening on ", 1)[1]
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        try:
            _get(url, "/healthz")
            return proc, url
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.05)
    raise AssertionError("server never became healthy")


def _get(url: str, path: str) -> dict:
    with urllib.request.urlopen(url + path, timeout=10) as response:
        return json.loads(response.read())


def _post(url: str, path: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _asker(url: str, count: int, offset: int) -> None:
    """One user: ``count`` questions, thinking between round trips."""
    for i in range(count):
        question = QUESTIONS[(offset + i) % len(QUESTIONS)]
        code, envelope = _post(url, "/ask", {"question": question})
        assert code == 200, (question, envelope)
        time.sleep(THINK_S)


def test_f7_concurrent_askers_vs_serial_round_trips():
    total = ASKERS * QUESTIONS_PER_ASKER
    proc, url = _start_server()
    try:
        _asker(url, len(QUESTIONS), 0)  # warm grammar paths + response cache

        start = time.perf_counter()
        _asker(url, total, 0)
        serial_s = time.perf_counter() - start

        threads = [
            threading.Thread(target=_asker, args=(url, QUESTIONS_PER_ASKER, k))
            for k in range(ASKERS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_s = time.perf_counter() - start

        stats = _get(url, "/stats")
        assert stats["http"]["requests"] >= 2 * total
    finally:
        proc.kill()
        proc.wait(timeout=10)

    speedup = serial_s / concurrent_s
    emit("F7", format_table(
        ["mode", "total ms", "ms/question"],
        [
            ["serial round-trips", f"{serial_s * 1000:.0f}",
             f"{serial_s * 1000 / total:.2f}"],
            [f"{ASKERS} concurrent askers", f"{concurrent_s * 1000:.0f}",
             f"{concurrent_s * 1000 / total:.2f}"],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
        title=(
            f"F7: {total} questions over HTTP, {THINK_S * 1000:.0f}ms user "
            f"think time, one `repro serve` process"
        ),
    ))
    assert speedup >= 2.0, (
        f"serial={serial_s * 1000:.0f}ms concurrent={concurrent_s * 1000:.0f}ms"
    )


def test_f7_pending_clarification_survives_kill():
    state = Path(tempfile.mkdtemp(prefix="f7-state-")) / "sessions.jsonl"
    serve_args = ("--state", str(state), "--clarify-margin", "10")

    proc, url = _start_server(*serve_args)
    try:
        code, ambiguous = _post(url, "/ask", {
            "question": "ships from norfolk",
            "clarify": True,
            "session": "f7-user",
        })
        assert code == 409, ambiguous
        assert len(ambiguous["choices"]) >= 2
    finally:
        proc.kill()  # SIGKILL: no graceful shutdown, no compaction
        proc.wait(timeout=10)

    proc, url = _start_server(*serve_args)
    try:
        picked = ambiguous["choices"][1]
        code, resolved = _post(url, "/resolve", {
            "clarification_id": ambiguous["clarification_id"],
            "choice": picked["index"],
        })
        assert code == 200, resolved
        assert resolved["status"] == "answered"
        assert resolved["answer"]["sql"] == picked["sql"]

        code, followup = _post(url, "/ask", {
            "question": "how many of them are there",
            "session": "f7-user",
        })
        assert code == 200, followup
        assert followup["answer"]["sql"].lower().startswith("select count")
    finally:
        proc.kill()
        proc.wait(timeout=10)

    emit("F7-RESTART", format_table(
        ["step", "outcome"],
        [
            ["ask (clarify) -> 409 + choices", "ok"],
            ["kill -9, restart on --state log", "ok"],
            ["resolve pre-crash clarification id", resolved["status"]],
            ["session follow-up after restart", followup["status"]],
        ],
        title="F7: durable clarification across a server kill/restart",
    ))
