"""F8 — MVCC snapshot reads vs the RW-lock under sustained writer DML.

The claim of the MVCC redesign, measured end to end through the service
facade: while one writer runs back-to-back **bulk UPDATEs** over the whole
ship table, concurrent ``ask()`` readers

* sustain **>= 2x** the throughput of the PR-3 RW-lock baseline
  (``NliConfig(mvcc_reads=False)``), where every reader queues behind the
  writer-preferring lock for the full write window;
* never observe a **torn or cross-version** result: a consistency probe
  (``COUNT(DISTINCT commissioned)``) interleaved with the asks must see
  exactly one writer generation on every sample, because each SELECT is
  pinned to one committed snapshot;
* never stall longer than **one commit**: the worst reader latency under
  MVCC is bounded by the longest single writer commit (plus scheduler
  noise) — not by the number of commits queued, which is what the RW-lock
  baseline degrades with.

Both modes run the identical workload on identical data; only the config
knob differs.
"""

from __future__ import annotations

import threading
import time

from repro.core.config import NliConfig
from repro.datasets import fleet
from repro.evalkit import format_table
from repro.service import NliService

from benchmarks.conftest import emit

SHIPS = 2_000
READER_THREADS = 4
MEASURE_S = 1.2
QUESTION = "how many ships are there"
PROBE_SQL = "SELECT COUNT(DISTINCT commissioned) AS gens FROM ship"


def _service(mvcc: bool) -> NliService:
    service = NliService(
        fleet.build_database(seed=11, ships=SHIPS),
        domain=fleet.domain(),
        config=NliConfig(mvcc_reads=mvcc),
    )
    # Uniform writer generation 0, primed grammar/plan paths off the clock.
    service.execute("UPDATE ship SET commissioned = 0")
    assert service.ask(QUESTION).ok
    return service


class _Workload:
    """One measured run: a bulk-UPDATE writer vs N ask() readers."""

    def __init__(self, service: NliService) -> None:
        self.service = service
        self.stop = threading.Event()
        self.errors: list[BaseException] = []
        self.commit_durations: list[float] = []
        self.ask_latencies: list[float] = []
        self.asks_done = 0
        self.probes_done = 0
        self._count_lock = threading.Lock()

    def _writer(self) -> None:
        generation = 0
        try:
            while not self.stop.is_set():
                generation += 1
                start = time.perf_counter()
                self.service.execute(
                    f"UPDATE ship SET commissioned = {generation}"
                )
                self.commit_durations.append(time.perf_counter() - start)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            self.errors.append(exc)

    def _reader(self) -> None:
        try:
            latencies = []
            asks = probes = 0
            while not self.stop.is_set():
                start = time.perf_counter()
                response = self.service.ask(QUESTION)
                latencies.append(time.perf_counter() - start)
                assert response.ok, response.diagnostics
                assert response.answer.result.scalar() == SHIPS
                asks += 1
                # Consistency probe: one committed generation per sample —
                # a torn or cross-version read would mix two.
                generations = self.service.execute(PROBE_SQL).scalar()
                assert generations == 1, (
                    f"torn read: saw {generations} writer generations"
                )
                probes += 1
            with self._count_lock:
                self.ask_latencies.extend(latencies)
                self.asks_done += asks
                self.probes_done += probes
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            self.errors.append(exc)

    def run(self) -> "_Workload":
        threads = [threading.Thread(target=self._writer)]
        threads += [
            threading.Thread(target=self._reader) for _ in range(READER_THREADS)
        ]
        for thread in threads:
            thread.start()
        time.sleep(MEASURE_S)
        self.stop.set()
        for thread in threads:
            thread.join()
        assert not self.errors, self.errors
        assert self.commit_durations, "writer never committed"
        assert self.asks_done and self.probes_done
        return self

    @property
    def throughput(self) -> float:
        return self.asks_done / MEASURE_S

    @property
    def max_latency(self) -> float:
        return max(self.ask_latencies)


def test_f8_mvcc_readers_vs_rwlock_baseline():
    rwlock = _Workload(_service(mvcc=False)).run()
    mvcc = _Workload(_service(mvcc=True)).run()

    commit_max = max(mvcc.commit_durations)
    emit("F8", format_table(
        ["mode", "asks/s", "asks", "probes", "max ask ms", "commits",
         "max commit ms"],
        [
            ["rw-lock readers", f"{rwlock.throughput:.0f}",
             str(rwlock.asks_done), str(rwlock.probes_done),
             f"{rwlock.max_latency * 1000:.0f}",
             str(len(rwlock.commit_durations)),
             f"{max(rwlock.commit_durations) * 1000:.0f}"],
            ["mvcc snapshot readers", f"{mvcc.throughput:.0f}",
             str(mvcc.asks_done), str(mvcc.probes_done),
             f"{mvcc.max_latency * 1000:.0f}",
             str(len(mvcc.commit_durations)),
             f"{commit_max * 1000:.0f}"],
            ["reader speedup",
             f"{mvcc.throughput / max(rwlock.throughput, 1e-9):.1f}x",
             "", "", "", "", ""],
        ],
        title=(
            f"F8: {READER_THREADS} ask() readers vs one bulk-UPDATE writer, "
            f"{SHIPS}-row table, {MEASURE_S:.1f}s window"
        ),
    ))

    # Gate 1: snapshot readers sustain >= 2x the RW-lock throughput while
    # the writer commits continuously.
    assert mvcc.throughput >= 2 * rwlock.throughput, (
        f"mvcc={mvcc.throughput:.0f}/s rwlock={rwlock.throughput:.0f}/s"
    )
    # Gate 2: no reader stall longer than one commit (plus scheduler
    # grace): MVCC latency is bounded by a single commit, not the queue
    # of them.
    assert mvcc.max_latency <= commit_max + 0.25, (
        f"reader stalled {mvcc.max_latency * 1000:.0f}ms > one commit "
        f"({commit_max * 1000:.0f}ms)"
    )
    # Gate 3 rode along in every reader loop: each consistency probe saw
    # exactly one committed generation (asserted inline), and nothing
    # leaked a pin.
    assert mvcc.service.database.snapshot_pins == 0
    assert rwlock.service.database.snapshot_pins == 0


def test_f8_writer_liveness_under_mvcc():
    """Writer preference survives: continuous readers cannot starve DML."""
    service = _service(mvcc=True)
    stop = threading.Event()
    errors: list[BaseException] = []

    def reader() -> None:
        try:
            while not stop.is_set():
                assert service.ask(QUESTION).ok
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(READER_THREADS)]
    for thread in threads:
        thread.start()
    start = time.perf_counter()
    commits = 0
    while time.perf_counter() - start < 0.5:
        service.execute(f"UPDATE ship SET commissioned = {commits + 1}")
        commits += 1
    stop.set()
    for thread in threads:
        thread.join()
    assert not errors, errors
    assert commits >= 3, f"writer starved: only {commits} commits in 0.5s"
    probe = service.execute(PROBE_SQL)
    assert probe.scalar() == 1
