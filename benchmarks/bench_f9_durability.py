"""F9 — durable storage: kill -9 loses nothing committed, and costs ~nothing.

Two claims of the storage layer (WAL + snapshot checkpoints, see
``docs/storage.md``), measured against a **real** ``repro serve
--data-dir`` subprocess:

* **SIGKILL during a write storm loses zero acknowledged statements.**
  A client hammers ``POST /sql`` with INSERTs interleaved with
  bulk-UPDATE sweeps (each acknowledged statement is fsync'd to the WAL
  before the 200 comes back, and the storm crosses several checkpoint
  rotations), opens a ``BEGIN`` block with one more INSERT, and then the
  process is killed -9 mid-flight.  On restart every acknowledged write
  must be present, the uncommitted BEGIN-block row must be completely
  absent, and recovery (checkpoint restore + WAL tail replay) must be
  bounded — the whole point of the checkpoint cadence.

* **Steady-state questions don't pay for durability.**  ``ask()`` never
  touches the WAL (reads pin MVCC snapshots; only committed DML appends
  records), so a durable service must answer questions at in-memory
  speed: best-of-trials batch latency within ~10% of a no-``data_dir``
  baseline.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.core.config import NliConfig
from repro.datasets import fleet
from repro.evalkit import format_table
from repro.service import NliService

from benchmarks.conftest import emit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Acked-write storm: each iteration is one INSERT + one bulk UPDATE.
#: Deliberately not a multiple of the checkpoint cadence, so the crash
#: leaves a non-empty WAL tail and recovery demonstrably replays it.
STORM_ROUNDS = 43
#: Small cadence so the storm crosses several checkpoint rotations.
CHECKPOINT_EVERY = 16
#: Recovery must be bounded by the checkpoint cadence, not the WAL size.
RECOVERY_BUDGET_MS = 5_000.0

INSERT = (
    "INSERT INTO ship (id, name, type_id, fleet_id, home_port_id, "
    "commander_id, displacement, length, speed, commissioned, crew) "
    "VALUES ({id}, 'storm{id}', 1, 1, 1, 1, 9000, 500, 30, 2001, 100)"
)
BULK_UPDATE = "UPDATE ship SET crew = crew + 1 WHERE id <= 60"

QUESTIONS = [
    "how many ships are there",
    "show the carriers",
    "ships commissioned in 1970",
    "how many ships are in the pacific fleet",
]
TRIALS = 7
ASKS_PER_TRIAL = 3 * len(QUESTIONS)


def _server_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _start_server(*extra_args: str) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "fleet", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_server_env(),
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    assert "listening on" in line, f"server failed to start: {line!r}"
    url = line.strip().rsplit("listening on ", 1)[1]
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        try:
            _get(url, "/healthz")
            return proc, url
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.05)
    raise AssertionError("server never became healthy")


def _get(url: str, path: str) -> dict:
    with urllib.request.urlopen(url + path, timeout=10) as response:
        return json.loads(response.read())


def _sql(url: str, statement: str) -> dict:
    request = urllib.request.Request(
        url + "/sql",
        data=json.dumps({"sql": statement}).encode("utf-8"),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        payload = json.loads(response.read())
    return payload


def _scalar(url: str, statement: str) -> int:
    return _sql(url, statement)["rows"][0][0]


def test_f9_kill9_during_write_storm_loses_no_acked_rows():
    data_dir = Path(tempfile.mkdtemp(prefix="f9-data-"))
    serve_args = (
        "--data-dir", str(data_dir),
        "--checkpoint-every", str(CHECKPOINT_EVERY),
    )

    proc, url = _start_server(*serve_args)
    acked_inserts = 0
    acked_updates = 0
    try:
        base_count = _scalar(url, "SELECT COUNT(*) FROM ship")
        base_crew = _scalar(url, "SELECT crew FROM ship WHERE id = 1")
        start = time.perf_counter()
        for i in range(STORM_ROUNDS):
            _sql(url, INSERT.format(id=1000 + i))
            acked_inserts += 1
            _sql(url, BULK_UPDATE)
            acked_updates += 1
        storm_s = time.perf_counter() - start
        # One uncommitted transaction in flight when the power goes out.
        _sql(url, "BEGIN")
        _sql(url, INSERT.format(id=9999))
    finally:
        proc.kill()  # SIGKILL: no graceful shutdown, no final checkpoint
        proc.wait(timeout=10)

    proc, url = _start_server(*serve_args)
    try:
        count = _scalar(url, "SELECT COUNT(*) FROM ship")
        crew = _scalar(url, "SELECT crew FROM ship WHERE id = 1")
        ghost = _scalar(url, "SELECT COUNT(*) FROM ship WHERE id = 9999")
        survivors = _scalar(
            url, "SELECT COUNT(*) FROM ship WHERE id >= 1000"
        )
        stats = _get(url, "/stats")["service"]
        recovery_ms = stats["storage_recovery_ms"]
        replayed = stats["storage_replayed_statements"]
        restored = stats["storage_recovered_rows"]
    finally:
        proc.kill()
        proc.wait(timeout=10)

    assert survivors == acked_inserts, "an acknowledged INSERT was lost"
    assert count == base_count + acked_inserts
    assert crew == base_crew + acked_updates, "an acknowledged UPDATE was lost"
    assert ghost == 0, "an uncommitted BEGIN-block row reached disk"
    assert recovery_ms < RECOVERY_BUDGET_MS, f"recovery took {recovery_ms}ms"
    # The cadence bounds the replay tail: far fewer statements than the
    # storm wrote in total.
    assert replayed <= 2 * CHECKPOINT_EVERY, (
        f"checkpoint cadence did not bound replay (replayed={replayed})"
    )

    emit("F9", format_table(
        ["measure", "value"],
        [
            ["acked statements before kill -9",
             f"{acked_inserts + acked_updates}"],
            ["storm wall clock", f"{storm_s * 1000:.0f} ms"],
            ["acked rows lost", "0"],
            ["uncommitted BEGIN-block rows recovered", f"{ghost}"],
            ["checkpoint rows restored", f"{restored}"],
            ["WAL tail statements replayed", f"{replayed}"],
            ["recovery time", f"{recovery_ms:.1f} ms"],
        ],
        title=(
            f"F9: kill -9 during a {STORM_ROUNDS}-round write storm "
            f"(checkpoint every {CHECKPOINT_EVERY} records)"
        ),
    ))


def _best_trial_ms(service: NliService) -> float:
    for question in QUESTIONS:  # warm grammar paths and caches
        response = service.ask(question)
        assert response.ok, response.diagnostics
    best = float("inf")
    for _ in range(TRIALS):
        start = time.perf_counter()
        for i in range(ASKS_PER_TRIAL):
            service.ask(QUESTIONS[i % len(QUESTIONS)])
        best = min(best, time.perf_counter() - start)
    return best * 1000.0 / ASKS_PER_TRIAL


def test_f9_steady_state_asks_at_in_memory_speed():
    baseline = NliService(fleet.build_database(), domain=fleet.domain())
    durable_dir = tempfile.mkdtemp(prefix="f9-steady-")
    durable = NliService(
        fleet.build_database(),
        domain=fleet.domain(),
        config=NliConfig(data_dir=durable_dir, checkpoint_every=64),
    )
    try:
        # Touch the write path so the WAL is demonstrably live, then
        # measure pure question steady state.
        durable.execute(INSERT.format(id=700))
        baseline.execute(INSERT.format(id=700))
        baseline_ms = _best_trial_ms(baseline)
        durable_ms = _best_trial_ms(durable)
    finally:
        baseline.close()
        durable.close()

    ratio = durable_ms / baseline_ms
    emit("F9-STEADY", format_table(
        ["configuration", "ms/question (best of trials)"],
        [
            ["in-memory baseline", f"{baseline_ms:.3f}"],
            ["durable (--data-dir)", f"{durable_ms:.3f}"],
            ["ratio", f"{ratio:.3f}"],
        ],
        title=(
            f"F9: steady-state ask() cost, best of {TRIALS} trials x "
            f"{ASKS_PER_TRIAL} questions"
        ),
    ))
    assert ratio <= 1.10, (
        f"durable asks {ratio:.2f}x slower than in-memory "
        f"({durable_ms:.3f}ms vs {baseline_ms:.3f}ms)"
    )
