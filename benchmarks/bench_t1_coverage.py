"""T1 (Table 1) — grammar coverage per domain.

Columns: questions, % parsed, % interpreted, % executed, % correct;
separate rows for the in-grammar corpora and the unrestricted "wild"
phrasing sets (era systems reported exactly this split).
"""

from __future__ import annotations

from repro.evalkit import evaluate_nli, format_table, pct

from benchmarks.conftest import emit


def _rows(bundles):
    rows = []
    for bundle in bundles:
        for label, examples in (("corpus", bundle.corpus), ("wild", bundle.wild)):
            result = evaluate_nli(bundle, examples=examples)
            stages = result.stages
            rows.append([
                bundle.name, label, stages.total,
                pct(stages.parse_rate), pct(stages.interpret_rate),
                pct(stages.execute_rate), pct(stages.accuracy),
            ])
    return rows


def test_t1_coverage(benchmark, all_bundles):
    rows = benchmark.pedantic(_rows, args=(all_bundles,), rounds=1, iterations=1)
    table = format_table(
        ["domain", "set", "n", "parsed", "interpreted", "executed", "correct"],
        rows,
        title="T1: grammar coverage (tokenise -> parse -> interpret -> execute)",
    )
    emit("T1", table)
    # Reproduction shape: near-total coverage on in-grammar corpora,
    # clearly lower on unrestricted phrasing.
    corpus_rows = [r for r in rows if r[1] == "corpus"]
    wild_rows = [r for r in rows if r[1] == "wild"]
    for row in corpus_rows:
        assert float(row[6].rstrip("%")) >= 90.0
    for row in wild_rows:
        assert float(row[6].rstrip("%")) <= 90.0
