"""T2 (Table 2) — end-to-end answer accuracy vs the two baselines.

The semantic-grammar system must beat keyword lookup and pattern
templates by a wide margin on every domain (the paper generation's core
claim for grammar-based NLIDB).
"""

from __future__ import annotations

from repro.baselines import KeywordBaseline, TemplateBaseline
from repro.evalkit import evaluate_nli, evaluate_system, format_table, pct

from benchmarks.conftest import emit


def _rows(bundles):
    rows = []
    for bundle in bundles:
        nli = evaluate_nli(bundle).stages.accuracy
        keyword = evaluate_system(
            KeywordBaseline(bundle.database, bundle.model), bundle
        ).accuracy
        template = evaluate_system(
            TemplateBaseline(bundle.database, bundle.model), bundle
        ).accuracy
        rows.append([
            bundle.name, len(bundle.corpus), pct(nli), pct(keyword), pct(template),
        ])
    return rows


def test_t2_accuracy(benchmark, all_bundles):
    rows = benchmark.pedantic(_rows, args=(all_bundles,), rounds=1, iterations=1)
    table = format_table(
        ["domain", "n", "semantic-grammar NLI", "keyword lookup", "templates"],
        rows,
        title="T2: answer accuracy, NLI vs baselines",
    )
    emit("T2", table)
    for row in rows:
        nli, keyword, template = (float(row[i].rstrip("%")) for i in (2, 3, 4))
        assert nli > keyword + 20.0
        assert nli > template + 20.0
