"""T3 (Table 3) — accuracy by linguistic/SQL construct, plus the A4
join-inference ablation (Steiner tree vs pairwise shortest paths)."""

from __future__ import annotations

from repro.core.config import NliConfig
from repro.evalkit import evaluate_nli, format_table, pct, per_feature_accuracy

from benchmarks.conftest import emit

FEATURES = [
    "select", "attr", "join", "count", "agg", "group",
    "super", "compare", "negation", "member", "nested", "order",
]


def _construct_rows(bundles):
    per_domain = {b.name: per_feature_accuracy(b) for b in bundles}
    rows = []
    for feature in FEATURES:
        row = [feature]
        for bundle in bundles:
            tally = per_domain[bundle.name].get(feature)
            row.append(str(tally) if tally else "-")
        rows.append(row)
    return rows


def _ablation_rows(bundles):
    rows = []
    for mode in ("steiner", "pairwise"):
        config = NliConfig(join_inference=mode)
        accs = [
            pct(evaluate_nli(b, config=config).stages.accuracy) for b in bundles
        ]
        rows.append([mode, *accs])
    return rows


def test_t3_constructs(benchmark, all_bundles):
    rows = benchmark.pedantic(
        _construct_rows, args=(all_bundles,), rounds=1, iterations=1
    )
    names = [b.name for b in all_bundles]
    emit("T3", format_table(
        ["construct", *names], rows,
        title="T3: accuracy by construct (correct/total)",
    ))


def test_t3_join_ablation(benchmark, all_bundles):
    rows = benchmark.pedantic(
        _ablation_rows, args=(all_bundles,), rounds=1, iterations=1
    )
    names = [b.name for b in all_bundles]
    emit("T3-A4", format_table(
        ["join inference", *names], rows,
        title="T3/A4 ablation: Steiner-tree vs pairwise join inference",
    ))
    # On snowflake/star schemas both connect the same terminals.
    assert rows[0][1:] == rows[1][1:]
