"""T4 (Table 4) — elliptical follow-up resolution in scripted dialogues."""

from __future__ import annotations

from repro.evalkit import evaluate_dialogues, format_table

from benchmarks.conftest import emit


def _rows(bundles):
    rows = []
    for bundle in bundles:
        outcome = evaluate_dialogues(bundle)
        rows.append([
            bundle.name,
            len(bundle.dialogues),
            str(outcome.first_turns),
            str(outcome.followups),
        ])
    return rows


def test_t4_dialogue(benchmark, all_bundles):
    rows = benchmark.pedantic(_rows, args=(all_bundles,), rounds=1, iterations=1)
    table = format_table(
        ["domain", "sessions", "first turns", "follow-ups (ellipsis/pronoun)"],
        rows,
        title="T4: dialogue — scripted sessions, follow-up resolution",
    )
    emit("T4", table)
    for row in rows:
        followup_acc = float(row[3].split("(")[1].rstrip("%)"))
        assert followup_acc >= 80.0
