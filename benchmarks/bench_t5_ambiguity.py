"""T5 (Table 5) — ambiguity handling.

Reports interpretations per question (mean/max), how often several
readings survive, top-1 correctness on a deliberately ambiguous set, and
the A3 ablation (value index off: bare values become unparseable).
"""

from __future__ import annotations

from repro.core.config import NliConfig
from repro.core.pipeline import NaturalLanguageInterface
from repro.evalkit import answers_match, format_table
from repro.sqlengine.executor import Engine

from benchmarks.conftest import emit

#: Questions with a genuine lexical ambiguity in the fleet domain and the
#: reading a cooperative system should prefer.
AMBIGUOUS_FLEET = [
    # "kennedy" is a ship and an officer
    ("what is the displacement of the kennedy",
     "SELECT displacement FROM ship WHERE name = 'Kennedy'"),
    ("ships heavier than the kennedy",
     "SELECT name FROM ship WHERE displacement > "
     "(SELECT displacement FROM ship WHERE name = 'Kennedy')"),
    # "norfolk" is a port and a fleet headquarters
    ("ships from norfolk",
     "SELECT DISTINCT ship.name FROM ship JOIN port ON "
     "ship.home_port_id = port.id WHERE port.name = 'Norfolk'"),
    # "pacific" is a fleet name, a fleet ocean and a deployment ocean
    ("how many ships are in the pacific fleet",
     "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
     "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'"),
    # "largest" could ground in several numeric attributes
    ("the largest ship",
     "SELECT name FROM ship ORDER BY displacement DESC LIMIT 1"),
]


def _ambiguity_stats(bundle):
    nli = NaturalLanguageInterface(bundle.database, domain=bundle.model)
    gold_engine = Engine(bundle.database)
    counts = []
    top1 = 0
    multi = 0
    for question, gold_sql in AMBIGUOUS_FLEET:
        response = nli.ask(question)
        assert response.ok, response.diagnostics
        answer = response.answer
        n_interpretations = 1 + len(answer.alternatives)
        counts.append(n_interpretations)
        if n_interpretations > 1:
            multi += 1
        gold = gold_engine.execute(gold_sql)
        if answers_match(answer.result, gold):
            top1 += 1
    return counts, top1, multi


def _value_index_ablation(bundle):
    """A3: without the value index, value-dependent questions die."""
    outcomes = []
    for use_index in (True, False):
        nli = NaturalLanguageInterface(
            bundle.database, domain=bundle.model,
            config=NliConfig(use_value_index=use_index),
        )
        answered = 0
        for question, _ in AMBIGUOUS_FLEET:
            if nli.ask(question).ok:
                answered += 1
        outcomes.append(answered)
    return outcomes


def test_t5_ambiguity(benchmark, fleet_bundle):
    counts, top1, multi = benchmark.pedantic(
        _ambiguity_stats, args=(fleet_bundle,), rounds=1, iterations=1
    )
    n = len(AMBIGUOUS_FLEET)
    rows = [
        ["questions", n],
        ["mean interpretations", f"{sum(counts) / n:.2f}"],
        ["max interpretations", max(counts)],
        ["questions with >1 reading", f"{multi}/{n}"],
        ["top-1 correct", f"{top1}/{n} ({100 * top1 / n:.0f}%)"],
    ]
    emit("T5", format_table(
        ["metric", "value"], rows,
        title="T5: ambiguity handling (deliberately ambiguous fleet set)",
    ))
    assert top1 >= n - 1  # ranking resolves (nearly) all of these
    assert multi >= 2  # the set IS ambiguous


def test_t5_value_index_ablation(benchmark, fleet_bundle):
    with_index, without_index = benchmark.pedantic(
        _value_index_ablation, args=(fleet_bundle,), rounds=1, iterations=1
    )
    rows = [
        ["value index ON", f"{with_index}/{len(AMBIGUOUS_FLEET)}"],
        ["value index OFF", f"{without_index}/{len(AMBIGUOUS_FLEET)}"],
    ]
    emit("T5-A3", format_table(
        ["configuration", "questions answered"], rows,
        title="T5/A3 ablation: value index on/off",
    ))
    assert with_index > without_index
