"""Shared benchmark fixtures and reporting helpers.

Every benchmark prints its paper-style table through :func:`emit`, which
bypasses pytest's capture (so tables always appear in the console/tee)
and archives a copy under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import load_bundle

RESULTS_DIR = Path(__file__).parent / "results"

_EMITTED: list[tuple[str, str]] = []


def emit(experiment_id: str, text: str) -> None:
    """Queue a report table for the terminal summary and archive it."""
    _EMITTED.append((experiment_id, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{experiment_id}.txt", "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every experiment table after the run (survives fd capture)."""
    if not _EMITTED:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper tables & figures", sep="=")
    for experiment_id, text in _EMITTED:
        terminalreporter.write_line(f"\n### {experiment_id} ###")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def fleet_bundle():
    return load_bundle("fleet")


@pytest.fixture(scope="session")
def company_bundle():
    return load_bundle("company")


@pytest.fixture(scope="session")
def geography_bundle():
    return load_bundle("geography")


@pytest.fixture(scope="session")
def all_bundles(fleet_bundle, company_bundle, geography_bundle):
    return [fleet_bundle, company_bundle, geography_bundle]
