"""A multi-turn "morning briefing" dialogue over the fleet database.

Demonstrates the 1978-style conversational features: elliptical
follow-ups ("what about ..."), pronouns ("how many of them ..."),
constraint refinement ("only the ones ...") and the paraphrase echo.

Run:  python examples/fleet_briefing.py
"""

from repro import build_interface
from repro.core import Session
from repro.datasets import fleet


def main() -> None:
    nli = build_interface(fleet.build_database(), domain=fleet.domain())
    session = Session()

    briefing = [
        "how many ships are in the pacific fleet?",
        "what about the atlantic fleet?",
        "how many of them are submarines?",
        "show the carriers",
        "only the ones commissioned after 1970",
        "what is the total crew of the carriers?",
        "which ship has the largest displacement?",
        "ships heavier than the enterprise",
    ]
    for question in briefing:
        answer = nli.ask(question, session=session).answer
        print(f"\nADMIRAL: {question}")
        print(f"SYSTEM:  {answer.paraphrase}")
        print(answer.result.pretty(max_rows=6))

    print("\n--- session transcript ---")
    for question, paraphrase in session.transcript:
        print(f"  {question}  =>  {paraphrase}")


if __name__ == "__main__":
    main()
