"""GEOBASE-style geography Q&A, plus direct use of the SQL engine.

Demonstrates that the NLI and the underlying from-scratch relational
engine are both public API: the same database answers English questions
and hand-written SQL.

Run:  python examples/geography_explorer.py
"""

from repro import build_interface
from repro.datasets import geography
from repro.sqlengine import Engine


def main() -> None:
    database = geography.build_database()
    nli = build_interface(database, domain=geography.domain())

    print("=== English ===")
    for question in [
        "which country has the largest population?",
        "the longest river",
        "rivers longer than the rhine",
        "how many countries are in each continent?",
        "cities in france or spain",
        "mountains higher than 6000 meters",
        "what is the population of china?",
    ]:
        answer = nli.ask(question).answer
        print(f"\nQ: {question}")
        print(f"   SQL: {answer.sql}")
        print(answer.result.pretty(max_rows=6))

    print("\n=== the same database, raw SQL ===")
    engine = Engine(database)
    result = engine.execute(
        "SELECT continent, COUNT(*) AS countries, SUM(population) AS people "
        "FROM country GROUP BY continent ORDER BY people DESC"
    )
    print(result.pretty())
    print("\nplan for a joined query:")
    print(engine.explain(
        "SELECT city.name FROM city JOIN country ON city.country_id = country.id "
        "WHERE country.name = 'usa' AND city.population > 1000"
    ))


if __name__ == "__main__":
    main()
