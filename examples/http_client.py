"""Talk to a running ``repro serve`` over HTTP — pure stdlib client.

Start a server in one terminal::

    python -m repro.cli serve fleet --port 8977

then run the demo conversation (ask, clarify, resolve, follow-up)::

    python examples/http_client.py --url http://127.0.0.1:8977

The same script doubles as the load generator used by
``benchmarks/bench_f7_http.py``: ``--bench N`` fires N ``/ask`` requests
(a fresh connection per request — honest serial round-trips) and prints
one JSON line of timings, so the benchmark can run several copies as
separate *processes* and measure concurrent throughput against the
single-process server.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

DEMO_QUESTIONS = [
    "how many ships are there",
    "show the carriers",
    "ships commissioned in 1970",
]


def call(url: str, path: str, payload: dict | None = None) -> tuple[int, dict]:
    """One round trip; returns (http code, decoded JSON body)."""
    if payload is None:
        request = urllib.request.Request(url + path)
    else:
        request = urllib.request.Request(
            url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        # 409/422/429 still carry a JSON envelope — that's the protocol,
        # not a transport failure.  Transport errors (400/404/413/503 …)
        # come back as {"error": {"code", "message", "retry_after_s"}}.
        return error.code, json.loads(error.read())


def describe_failure(body: dict) -> str:
    """One line for a non-answered body, either protocol or transport."""
    if "error" in body:  # transport error: the uniform {"error": {...}} shape
        error = body["error"]
        suffix = (f" (retry in {error['retry_after_s']}s)"
                  if error.get("retry_after_s") else "")
        return f"{error['code']}: {error['message']}{suffix}"
    return body["diagnostics"][0]["message"]


def demo(url: str) -> None:
    code, health = call(url, "/v1/healthz")
    print(f"server: {url} -> {health['status']} ({code})")

    for question in DEMO_QUESTIONS:
        code, envelope = call(url, "/v1/ask", {"question": question})
        print(f"\nQ: {question}  [HTTP {code}]")
        if envelope.get("status") == "answered":
            print(f"A: {envelope['answer']['paraphrase']}")
        else:
            print(f"!: {describe_failure(envelope)}")

    # The clarification dialog, cross-process: ask with clarify on, pick a
    # reading by number, then send an elliptical follow-up in the same
    # session — it binds to the clarified reading.
    question = "ships from norfolk"
    code, envelope = call(
        url, "/v1/ask", {"question": question, "clarify": True, "session": "demo"}
    )
    print(f"\nQ: {question}  [HTTP {code}]")
    if envelope["status"] == "ambiguous":
        for choice in envelope["choices"]:
            print(f"   [{choice['index'] + 1}] {choice['paraphrase']}")
        code, resolved = call(
            url, "/v1/resolve",
            {"clarification_id": envelope["clarification_id"], "choice": 0},
        )
        print(f"picked [1] -> [HTTP {code}] {resolved['answer']['paraphrase']}")
        code, followup = call(
            url, "/v1/ask",
            {"question": "what about the carriers", "session": "demo"},
        )
        print(f"follow-up -> [HTTP {code}] {followup['answer']['paraphrase']}")
    elif envelope["status"] == "answered":
        print(f"A: {envelope['answer']['paraphrase']} (not ambiguous at this "
              "margin — start the server with a larger --clarify-margin)")

    code, stats = call(url, "/v1/stats")
    http_stats = stats["http"]
    print(f"\nserver stats: {http_stats['requests']} requests, "
          f"{http_stats['cache_hits']} response-cache hits")


def bench(url: str, count: int, questions: list[str]) -> None:
    """Load-generator mode: N sequential round-trips, one JSON result line."""
    ok = 0
    start = time.perf_counter()
    for i in range(count):
        code, _ = call(url, "/v1/ask", {"question": questions[i % len(questions)]})
        ok += code == 200
    elapsed = time.perf_counter() - start
    print(json.dumps({"requests": count, "ok": ok, "elapsed_s": elapsed}))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default="http://127.0.0.1:8977")
    parser.add_argument(
        "--bench", type=int, default=None, metavar="N",
        help="fire N /ask requests and print JSON timings instead of the demo",
    )
    parser.add_argument(
        "--questions", default=";".join(DEMO_QUESTIONS),
        help="semicolon-separated question mix for --bench",
    )
    args = parser.parse_args()
    try:
        if args.bench is not None:
            bench(args.url, args.bench, args.questions.split(";"))
        else:
            demo(args.url)
    except urllib.error.URLError as error:
        print(f"cannot reach {args.url}: {error.reason}", file=sys.stderr)
        print("start a server first:  python -m repro.cli serve fleet "
              "--port 8977", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
