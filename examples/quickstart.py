"""Quickstart: ask English questions against the bundled navy database.

Uses the service-layer API: every question yields a Response envelope
with an explicit status — failures are values, not exceptions.

Run:  python examples/quickstart.py
"""

from repro import build_service
from repro.service import Status


def main() -> None:
    from repro.datasets import fleet

    service = build_service(fleet.build_database(), domain=fleet.domain())

    questions = [
        "how many ships are there?",
        "show the ships in the pacific fleet",
        "what is the displacement of the enterprise?",
        "which ship has the largest displacement?",
        "ships with crew between 100 and 300",
        "how many shps are in the pacifc fleet",  # typos on purpose
        "ships from ruritania",                   # unknown value on purpose
    ]
    for question, response in zip(questions, service.ask_many(questions)):
        print(f"\nQ: {question}")
        if response.status is not Status.ANSWERED:
            primary = response.diagnostics[0]
            print(f"   [{response.status.value}] {primary.message}")
            continue
        answer = response.answer
        print(f"   {answer.paraphrase}")
        if answer.corrections:
            fixed = ", ".join(f"{a!r}->{b!r}" for a, b in answer.corrections)
            print(f"   (corrected spelling: {fixed})")
        print(f"   SQL: {answer.sql}")
        print(answer.result.pretty(max_rows=5))


if __name__ == "__main__":
    main()
