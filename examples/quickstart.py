"""Quickstart: ask English questions against the bundled navy database.

Run:  python examples/quickstart.py
"""

from repro import build_interface
from repro.datasets import fleet


def main() -> None:
    database = fleet.build_database()
    nli = build_interface(database, domain=fleet.domain())

    questions = [
        "how many ships are there?",
        "show the ships in the pacific fleet",
        "what is the displacement of the enterprise?",
        "which ship has the largest displacement?",
        "ships with crew between 100 and 300",
        "how many shps are in the pacifc fleet",  # typos on purpose
    ]
    for question in questions:
        answer = nli.ask(question)
        print(f"\nQ: {question}")
        print(f"   {answer.paraphrase}")
        if answer.corrections:
            fixed = ", ".join(f"{a!r}->{b!r}" for a, b in answer.corrections)
            print(f"   (corrected spelling: {fixed})")
        print(f"   SQL: {answer.sql}")
        print(answer.result.pretty(max_rows=5))


if __name__ == "__main__":
    main()
