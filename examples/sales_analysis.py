"""Business-analytics questions over the company database.

Shows aggregate/grouping questions (the database community's analytical
use case), ambiguity alternatives, and the explain() pipeline trace.

Run:  python examples/sales_analysis.py
"""

from repro import build_interface
from repro.datasets import company


def main() -> None:
    nli = build_interface(company.build_database(), domain=company.domain())

    print("=== analytical questions ===")
    for question in [
        "what is the average salary of the engineers?",
        "how many employees are in each department?",
        "average salary per department",
        "the 3 highest paid employees",
        "employees with salary above average",
        "how many employees per title",
    ]:
        answer = nli.ask(question).answer
        print(f"\nQ: {question}")
        print(f"   {answer.paraphrase}")
        print(answer.result.pretty(max_rows=8))

    print("\n=== pipeline trace for one question ===")
    print(nli.explain("total salary of the employees in the sales department"))

    print("\n=== surviving alternatives (ambiguity) ===")
    answer = nli.ask("show the employees in chicago").answer
    print(f"chosen: {answer.paraphrase}")
    for paraphrase, sql in answer.alternatives:
        print(f"  also considered: {paraphrase}\n    {sql}")


if __name__ == "__main__":
    main()
