"""repro — a 1978-era natural language interface to databases (NLIDB).

The package reproduces the first generation of NLIDB systems (LADDER,
ROBOT, RENDEZVOUS era): a semantic-grammar front end with a lexicon
auto-generated from the database, spelling correction, join-path
inference, elliptical dialogue, paraphrase echo — and a from-scratch
relational engine underneath.

Quickstart::

    from repro import build_interface
    from repro.datasets import fleet

    db = fleet.build_database()
    nli = build_interface(db, domain=fleet.domain())
    answer = nli.ask("how many ships are in the pacific fleet?")
    print(answer.paraphrase)
    print(answer.result.pretty())
"""

from repro.errors import (
    AmbiguityError,
    EngineError,
    InterpretationError,
    NliError,
    ParseFailure,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "AmbiguityError",
    "EngineError",
    "InterpretationError",
    "NliError",
    "ParseFailure",
    "ReproError",
    "build_interface",
    "__version__",
]


def build_interface(database, domain=None, config=None):
    """Construct a ready-to-ask :class:`repro.core.pipeline.NaturalLanguageInterface`.

    Imported lazily so that ``repro.sqlengine`` stays usable on its own.
    """
    from repro.core.pipeline import NaturalLanguageInterface

    return NaturalLanguageInterface(database, domain=domain, config=config)
