"""repro — a 1978-era natural language interface to databases (NLIDB).

The package reproduces the first generation of NLIDB systems (LADDER,
ROBOT, RENDEZVOUS era): a semantic-grammar front end with a lexicon
auto-generated from the database, spelling correction, join-path
inference, elliptical dialogue, paraphrase echo — and a from-scratch
relational engine underneath.

Quickstart::

    from repro import build_interface
    from repro.datasets import fleet

    db = fleet.build_database()
    nli = build_interface(db, domain=fleet.domain())
    response = nli.ask("how many ships are in the pacific fleet?")
    if response.ok:
        print(response.answer.paraphrase)
        print(response.answer.result.pretty())
    else:
        print(response.status, response.diagnostics)

For concurrent callers use ``build_service`` (a thread-safe facade with
MVCC snapshot reads, id-managed sessions and a clarification protocol);
see ``docs/api.md`` for the Response envelope reference and
``docs/concurrency.md`` for the snapshot/commit model.
"""

from repro.errors import (
    AmbiguityError,
    ClarificationError,
    EngineError,
    InterpretationError,
    NliError,
    ParseFailure,
    ReproError,
)

__version__ = "1.2.0"

__all__ = [
    "AmbiguityError",
    "ClarificationError",
    "EngineError",
    "InterpretationError",
    "NliError",
    "ParseFailure",
    "ReproError",
    "build_interface",
    "build_service",
    "__version__",
]


def build_interface(database, domain=None, config=None):
    """Construct a ready-to-ask :class:`repro.core.pipeline.NaturalLanguageInterface`.

    Imported lazily so that ``repro.sqlengine`` stays usable on its own.
    """
    from repro.core.pipeline import NaturalLanguageInterface

    return NaturalLanguageInterface(database, domain=domain, config=config)


def build_service(database, domain=None, config=None):
    """Construct a thread-safe :class:`repro.service.NliService` facade.

    Askers run lock-free against pinned MVCC snapshots; refresh/DML
    writers serialize at a commit point.  Dialogue sessions are managed
    by id.
    """
    from repro.service import NliService

    return NliService(database, domain=domain, config=config)
