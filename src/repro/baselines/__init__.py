"""Baseline systems: keyword lookup and pattern templates."""

from repro.baselines.keyword_search import KeywordBaseline
from repro.baselines.template_nli import TemplateBaseline

__all__ = ["KeywordBaseline", "TemplateBaseline"]
