"""Keyword-lookup baseline — the pre-semantic-grammar state of the art.

Models the early keyword systems (BANKS/SQAK ancestry): strip stopwords,
bind each remaining keyword to a schema element or a data value via the
value index, pick the entity table, AND the value constraints together,
and return the display column.  No grammar, no aggregates beyond a
"how many" special case, no comparisons, no negation — which is exactly
why the semantic-grammar system beats it (Table 2).
"""

from __future__ import annotations

from repro.baselines.protocol import ResponseProtocolMixin
from repro.errors import InterpretationError
from repro.lexicon.builder import build_lexicon
from repro.lexicon.domain import DomainModel
from repro.lexicon.entries import CategoricalEntity, Category
from repro.logical.forms import EntityRef, LogicalQuery, Aggregate, ValueCondition
from repro.core.sqlgen import SqlGenerator
from repro.nlp.stemmer import stem
from repro.nlp.stopwords import STOPWORDS
from repro.nlp.tokenizer import tokenize
from repro.schemagraph.graph import SchemaGraph
from repro.sqlengine.database import Database
from repro.sqlengine.executor import Engine
from repro.sqlengine.result import ResultSet
from repro.valueindex.index import ValueIndex


class KeywordBaseline(ResponseProtocolMixin):
    """Keyword matcher over schema terms and data values.

    ``answer()`` returns raw rows (raising on failure, the legacy
    surface); ``ask()`` — from the mixin — speaks the Response protocol
    the evalkit compares every system through.
    """

    name = "keyword lookup"

    def __init__(self, database: Database, domain: DomainModel | None = None) -> None:
        self.database = database
        self.domain = domain
        self.engine = Engine(database)
        self.lexicon = build_lexicon(database, domain)
        self.value_index = ValueIndex(database)
        self.graph = SchemaGraph(database)
        self.sqlgen = SqlGenerator(database, self.graph, domain)

    def answer(self, question: str) -> ResultSet:
        words = [t.text for t in tokenize(question).tokens]
        count_mode = "how" in words and "many" in words
        content = [w for w in words if w not in STOPWORDS]
        stems = [stem(w) for w in content]

        entity: EntityRef | None = None
        conditions: list[ValueCondition] = []
        i = 0
        while i < len(content):
            matched = False
            # longest-first lexicon lookup for the entity noun
            for length, entry in self.lexicon.prefix_matches(stems, i):
                if entry.category is Category.ENTITY:
                    payload = entry.payload
                    if isinstance(payload, CategoricalEntity):
                        if entity is None:
                            entity = payload.entity
                        conditions.append(payload.condition)
                    elif entity is None:
                        entity = payload
                    i += length
                    matched = True
                    break
            if matched:
                continue
            hits = self.value_index.lookup_prefix(content[i:])
            if hits:
                length, hit = hits[0]
                conditions.append(
                    ValueCondition(
                        _value_ref(hit.table, hit.column, hit.value)
                    )
                )
                i += length
                continue
            i += 1

        if entity is None and conditions:
            entity = EntityRef(conditions[0].value.table)
        if entity is None:
            raise InterpretationError("keyword baseline found no entity")

        # Deduplicate conditions on the same column (keep the first).
        seen: set[tuple[str, str]] = set()
        unique = []
        for condition in conditions:
            key = (condition.value.table, condition.value.column)
            if key in seen:
                continue
            seen.add(key)
            unique.append(condition)

        query = LogicalQuery(
            target=entity,
            aggregate=Aggregate("count") if count_mode else None,
            conditions=tuple(unique),
        )
        return self.engine.execute(self.sqlgen.generate(query))


def _value_ref(table: str, column: str, value):
    from repro.logical.forms import ValueRef

    return ValueRef(table, column, value)
