"""Response-protocol adapter shared by the baseline systems.

The baselines predate structured envelopes (they model 1970s systems
whose only vocabulary was "here are rows" or an error), but the evalkit
compares every system through the same :class:`~repro.service.Response`
protocol.  This mixin wraps the legacy ``answer() -> ResultSet`` /
raise-on-failure surface into envelopes: the failure diagnostics carry
the whole-question token span, and the payload is a wire-form
:class:`~repro.core.answer.Answer` (no interpretation object — these
systems never build one).
"""

from __future__ import annotations

from repro.core.answer import Answer
from repro.errors import ReproError
from repro.nlp.tokenizer import tokenize
from repro.service.response import Response
from repro.sqlengine.result import ResultSet


class ResponseProtocolMixin:
    """Adds ``ask() -> Response`` on top of a legacy ``answer()`` method."""

    name = "baseline"

    def answer(self, question: str) -> ResultSet:  # pragma: no cover - override
        raise NotImplementedError

    def ask(self, question: str) -> Response:
        words = tuple(t.text for t in tokenize(question).tokens)
        try:
            result = self.answer(question)
        except ReproError as exc:
            # ReproError, not just NliError: the baselines execute their
            # generated SQL, so engine-level failures must also become
            # envelopes — one bad question must not abort an eval run.
            return Response.from_error(question, exc, tokens=words)
        payload = Answer(
            question=question,
            normalized_words=list(words),
            corrections=[],
            interpretation=None,
            sql="",
            result=result,
            paraphrase=f"{self.name}: {len(result)} row(s)",
        )
        return Response.answered(question, payload)
