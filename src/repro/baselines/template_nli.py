"""Pattern-template baseline — fixed sentence patterns, no grammar.

Models the template NLIDBs that predated semantic grammars: a handful of
regex-like patterns ("how many E are there", "what is the A of V",
"show the E in V") each mapped to a query skeleton.  Anything that does
not literally match a pattern fails — the brittleness the 1978 systems
were designed to overcome.
"""

from __future__ import annotations

from repro.baselines.protocol import ResponseProtocolMixin
from repro.errors import ParseFailure
from repro.core.sqlgen import SqlGenerator
from repro.lexicon.builder import build_lexicon
from repro.lexicon.domain import DomainModel
from repro.lexicon.entries import CategoricalEntity, Category
from repro.logical.forms import (
    Aggregate,
    AttrRef,
    EntityRef,
    LogicalQuery,
    ValueCondition,
    ValueRef,
)
from repro.nlp.stemmer import stem
from repro.nlp.tokenizer import tokenize
from repro.schemagraph.graph import SchemaGraph
from repro.sqlengine.database import Database
from repro.sqlengine.executor import Engine
from repro.sqlengine.result import ResultSet
from repro.valueindex.index import ValueIndex


class TemplateBaseline(ResponseProtocolMixin):
    """Five fixed patterns; everything else is a parse failure.

    ``answer()`` returns raw rows (raising on failure, the legacy
    surface); ``ask()`` — from the mixin — speaks the Response protocol
    the evalkit compares every system through.
    """

    name = "pattern templates"

    def __init__(self, database: Database, domain: DomainModel | None = None) -> None:
        self.database = database
        self.engine = Engine(database)
        self.lexicon = build_lexicon(database, domain)
        self.value_index = ValueIndex(database)
        self.graph = SchemaGraph(database)
        self.sqlgen = SqlGenerator(database, self.graph, domain)

    # -- slot matchers ------------------------------------------------------

    def _entity_at(self, words: list[str], i: int) -> tuple[int, EntityRef, list] | None:
        stems = [stem(w) for w in words]
        for length, entry in self.lexicon.prefix_matches(stems, i):
            if entry.category is Category.ENTITY:
                payload = entry.payload
                if isinstance(payload, CategoricalEntity):
                    return length, payload.entity, [payload.condition]
                return length, payload, []
        return None

    def _attr_at(self, words: list[str], i: int) -> tuple[int, AttrRef] | None:
        stems = [stem(w) for w in words]
        for length, entry in self.lexicon.prefix_matches(stems, i):
            if entry.category is Category.ATTR:
                return length, entry.payload
        return None

    def _value_at(self, words: list[str], i: int) -> tuple[int, ValueRef] | None:
        hits = self.value_index.lookup_prefix(words[i:])
        if hits:
            length, hit = hits[0]
            return length, ValueRef(hit.table, hit.column, hit.value)
        stems = [stem(w) for w in words]
        for length, entry in self.lexicon.prefix_matches(stems, i):
            if entry.category is Category.VALUE:
                return length, entry.payload
        return None

    @staticmethod
    def _drop_articles(words: list[str]) -> list[str]:
        return [w for w in words if w not in ("the", "a", "an", "all", "me")]

    # -- the patterns ----------------------------------------------------------

    def answer(self, question: str) -> ResultSet:
        words = self._drop_articles([t.text for t in tokenize(question).tokens])

        query = (
            self._pattern_how_many(words)
            or self._pattern_attr_of_value(words)
            or self._pattern_show_entity_in_value(words)
            or self._pattern_show_entity(words)
            or self._pattern_list_value(words)
        )
        if query is None:
            raise ParseFailure(f"no template matches: {question!r}")
        return self.engine.execute(self.sqlgen.generate(query))

    def _pattern_how_many(self, words: list[str]) -> LogicalQuery | None:
        """how many E [in V] [are there]"""
        if words[:2] != ["how", "many"]:
            return None
        rest = [w for w in words[2:] if w not in ("are", "there", "is", "in", "of", "does", "have")]
        entity_match = self._entity_at(rest, 0)
        if entity_match is None:
            return None
        length, entity, conditions = entity_match
        i = length
        while i < len(rest):
            value_match = self._value_at(rest, i)
            if value_match is None:
                return None  # unbindable word -> template fails
            vlen, ref = value_match
            conditions.append(ValueCondition(ref))
            i += vlen
        return LogicalQuery(
            target=entity, aggregate=Aggregate("count"), conditions=tuple(conditions)
        )

    def _pattern_attr_of_value(self, words: list[str]) -> LogicalQuery | None:
        """what is A of V"""
        if words[:2] == ["what", "is"]:
            words = words[2:]
        attr_match = self._attr_at(words, 0)
        if attr_match is None:
            return None
        alen, attr = attr_match
        if words[alen : alen + 1] != ["of"]:
            return None
        value_match = self._value_at(words, alen + 1)
        if value_match is None:
            return None
        _, ref = value_match
        return LogicalQuery(
            target=EntityRef(attr.table),
            projections=(attr,),
            conditions=(ValueCondition(ref),),
        )

    def _pattern_show_entity_in_value(self, words: list[str]) -> LogicalQuery | None:
        """show E in V"""
        if not words or words[0] not in ("show", "list", "display", "find", "which", "what"):
            return None
        rest = words[1:]
        entity_match = self._entity_at(rest, 0)
        if entity_match is None:
            return None
        length, entity, conditions = entity_match
        rest = rest[length:]
        if not rest or rest[0] not in ("in", "from", "at", "of"):
            return None
        value_match = self._value_at(rest, 1)
        if value_match is None or 1 + value_match[0] != len(rest):
            return None
        conditions.append(ValueCondition(value_match[1]))
        return LogicalQuery(target=entity, conditions=tuple(conditions))

    def _pattern_show_entity(self, words: list[str]) -> LogicalQuery | None:
        """show E"""
        if not words or words[0] not in ("show", "list", "display", "find"):
            return None
        entity_match = self._entity_at(words, 1)
        if entity_match is None:
            return None
        length, entity, conditions = entity_match
        if 1 + length != len(words):
            return None
        return LogicalQuery(target=entity, conditions=tuple(conditions))

    def _pattern_list_value(self, words: list[str]) -> LogicalQuery | None:
        """bare 'E' or 'V E' noun phrases"""
        entity_match = self._entity_at(words, 0)
        if entity_match is not None and entity_match[0] == len(words):
            _, entity, conditions = entity_match
            return LogicalQuery(target=entity, conditions=tuple(conditions))
        value_match = self._value_at(words, 0)
        if value_match is not None:
            vlen, ref = value_match
            entity_match = self._entity_at(words, vlen)
            if entity_match is not None and vlen + entity_match[0] == len(words):
                _, entity, conditions = entity_match
                conditions.append(ValueCondition(ref))
                return LogicalQuery(target=entity, conditions=tuple(conditions))
        return None
