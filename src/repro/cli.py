"""Interactive console for the NLIDB — the 1978 terminal experience.

Run one of the bundled domains::

    python -m repro.cli fleet
    python -m repro.cli geography --explain

Commands inside the session: ``\\q`` quit, ``\\reset`` clear dialogue
context, ``\\explain <question>`` show the pipeline trace, ``\\sql
<statement>`` run raw SQL, ``\\schema`` print the catalog.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.dialogue import Session
from repro.core.pipeline import NaturalLanguageInterface
from repro.datasets import ALL_DOMAINS, load_bundle
from repro.errors import ReproError
from repro.sqlengine.executor import Engine


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Ask English questions against a bundled database.",
    )
    parser.add_argument(
        "domain", choices=ALL_DOMAINS, nargs="?", default="fleet",
        help="which bundled domain to load (default: fleet)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the pipeline trace for every question",
    )
    parser.add_argument(
        "--max-rows", type=int, default=15,
        help="result rows displayed per answer (default: 15)",
    )
    return parser


def answer_one(
    nli: NaturalLanguageInterface,
    engine: Engine,
    session: Session,
    line: str,
    explain: bool,
    max_rows: int,
    out,
) -> None:
    """Process one console line (question or backslash command)."""
    if line.startswith("\\sql "):
        try:
            print(engine.execute(line[5:]).pretty(max_rows=max_rows), file=out)
        except ReproError as exc:
            print(f"SQL error: {exc}", file=out)
        return
    if line.startswith("\\explain "):
        print(nli.explain(line[9:], session=session), file=out)
        return
    if line == "\\schema":
        print(nli.database.summary(), file=out)
        return
    if line == "\\reset":
        session.reset()
        print("(context cleared)", file=out)
        return
    try:
        answer = nli.ask(line, session=session)
    except ReproError as exc:
        print(f"Sorry — {exc}", file=out)
        return
    if explain:
        print(nli.explain(line), file=out)
    print(answer.paraphrase, file=out)
    if answer.corrections:
        fixes = ", ".join(f"{a!r}->{b!r}" for a, b in answer.corrections)
        print(f"(spelling: {fixes})", file=out)
    print(answer.result.pretty(max_rows=max_rows), file=out)
    if answer.alternatives:
        print(f"(other readings considered: {len(answer.alternatives)})", file=out)


def main(argv: list[str] | None = None, stdin=None, stdout=None) -> int:
    args = build_parser().parse_args(argv)
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout

    bundle = load_bundle(args.domain)
    nli = NaturalLanguageInterface(bundle.database, domain=bundle.model)
    engine = Engine(bundle.database)
    session = Session()

    print(f"repro NLIDB — domain: {args.domain}", file=stdout)
    print(bundle.database.summary(), file=stdout)
    print('Type an English question, or "\\q" to quit.', file=stdout)

    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        if line in ("\\q", "quit", "exit"):
            break
        answer_one(nli, engine, session, line, args.explain, args.max_rows, stdout)
        print("", file=stdout)
    print("goodbye.", file=stdout)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
