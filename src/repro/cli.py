"""Interactive console for the NLIDB — the 1978 terminal experience,
wired to the modern service API.

Run one of the bundled domains::

    python -m repro.cli fleet
    python -m repro.cli geography --explain
    echo "which rivers are in the usa" | python -m repro.cli geography --json

Or serve one over HTTP (see ``docs/http.md``), durably — ``--data-dir``
holds the WAL, snapshot checkpoints and the session log, and a restart
recovers to the last committed statement (``docs/storage.md``)::

    python -m repro.cli serve fleet --port 8977 --data-dir /var/lib/repro

Follow a standing question against a running server (one JSON frame
per line as committed writes change the answer — ``docs/streaming.md``)::

    python -m repro.cli subscribe "how many ships are there" --url http://127.0.0.1:8977

Commands inside the session: ``\\q`` quit, ``\\reset`` clear dialogue
context, ``\\explain <question>`` show the pipeline trace, ``\\sql
<statement>`` run raw SQL, ``\\schema`` print the catalog.  When a
question comes back ambiguous the choices are numbered — reply with the
bare number to resolve it.

``--json`` turns the console into a line protocol for scripting: every
input line is a question and every output line is one
``Response.to_dict()`` JSON object.  The exit code reflects the *last*
response's status: 0 answered, 2 failed, 3 ambiguous / needs
clarification.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.config import NliConfig
from repro.core.dialogue import Session
from repro.datasets import ALL_DOMAINS, load_bundle
from repro.errors import ClarificationError, ReproError
from repro.service import NliService, Response, Status

#: Score margin used by --clarify: readings within half a scoring point
#: are presented as a numbered clarification dialog instead of silently
#: picking the best.
CLARIFY_MARGIN = 0.5

#: ``Response.status`` -> process exit code (for --json scripting).
EXIT_CODES = {
    Status.ANSWERED: 0,
    Status.FAILED: 2,
    Status.AMBIGUOUS: 3,
    Status.NEEDS_CLARIFICATION: 3,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Ask English questions against a bundled database.",
    )
    parser.add_argument(
        "domain", choices=ALL_DOMAINS, nargs="?", default="fleet",
        help="which bundled domain to load (default: fleet)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the pipeline trace for every question",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_mode",
        help="emit one Response.to_dict() JSON object per input line "
             "(no banner, no prompt text; exit code reflects last status)",
    )
    parser.add_argument(
        "--clarify", action="store_true",
        help="report ties between readings as AMBIGUOUS with numbered "
             "choices instead of silently picking the best",
    )
    parser.add_argument(
        "--max-rows", type=int, default=15,
        help="result rows displayed per answer (default: 15)",
    )
    return parser


def _resolve_by_number(
    service: NliService, session: Session, line: str
) -> Response | None:
    """Turn a bare-digit reply to a pending clarification into a resolve.

    Returns None when the line is not a clarification reply; otherwise a
    Response — on a ClarificationError (e.g. number out of range) a FAILED
    envelope, so both render paths stay uniform. A bad number leaves the
    clarification pending: the user can just pick again.
    """
    if not line.isdigit() or session.pending_clarification is None:
        return None
    try:
        return service.resolve(session.pending_clarification, int(line) - 1)
    except ClarificationError as exc:
        return Response.from_error(line, exc)


def _print_response(response: Response, max_rows: int, out) -> None:
    """Human rendering of one envelope."""
    if response.status is Status.ANSWERED:
        answer = response.answer
        print(answer.paraphrase, file=out)
        if answer.corrections:
            fixes = ", ".join(f"{a!r}->{b!r}" for a, b in answer.corrections)
            print(f"(spelling: {fixes})", file=out)
        print(answer.result.pretty(max_rows=max_rows), file=out)
        if answer.alternatives:
            print(
                f"(other readings considered: {len(answer.alternatives)})", file=out
            )
        return
    if response.status is Status.AMBIGUOUS:
        print("That question is ambiguous — did you mean:", file=out)
        for choice in response.choices:
            print(f"  [{choice.index + 1}] {choice.paraphrase}", file=out)
        print("(reply with the number to choose)", file=out)
        return
    # FAILED / NEEDS_CLARIFICATION: lead with the primary diagnostic and
    # surface any per-token suggestions.
    primary = response.diagnostics[0] if response.diagnostics else None
    reason = primary.message if primary else response.status.value
    print(f"Sorry — {reason}", file=out)
    for diagnostic in response.diagnostics[1:]:
        if diagnostic.suggestions:
            word = " ".join(
                response.tokens[diagnostic.span[0] : diagnostic.span[1]]
            ) if diagnostic.span else "?"
            print(
                f"  ({word!r}: did you mean {', '.join(diagnostic.suggestions)}?)",
                file=out,
            )


def answer_one(
    service: NliService,
    session: Session,
    line: str,
    explain: bool,
    clarify: bool,
    max_rows: int,
    out,
) -> Response | None:
    """Process one console line; returns the Response for questions."""
    if line.startswith("\\sql "):
        try:
            print(service.execute(line[5:]).pretty(max_rows=max_rows), file=out)
        except ReproError as exc:
            print(f"SQL error: {exc}", file=out)
        return None
    if line.startswith("\\explain "):
        print(service.explain(line[9:], session=session), file=out)
        return None
    if line == "\\schema":
        print(service.database.summary(), file=out)
        return None
    if line == "\\reset":
        session.reset()
        print("(context cleared)", file=out)
        return None
    resolved = _resolve_by_number(service, session, line)
    if resolved is not None:
        _print_response(resolved, max_rows, out)
        return resolved
    response = service.ask(line, session=session, clarify=clarify)
    if explain and response.status is Status.ANSWERED:
        print(service.explain(line), file=out)
    _print_response(response, max_rows, out)
    return response


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve a bundled domain over HTTP (stdlib asyncio; "
        "see docs/http.md for the endpoint reference).",
    )
    parser.add_argument(
        "domain", choices=ALL_DOMAINS, nargs="?", default="fleet",
        help="the default bundled domain to serve (default: fleet); "
             "--data-dir is its durable directory",
    )
    parser.add_argument(
        "--domain", action="append", default=None, dest="extra_domains",
        metavar="NAME[=DIR]",
        help="host an additional bundled domain on the same server, "
             "optionally durable under DIR; repeatable.  Routed by path "
             "(/d/NAME/ask) or a 'domain' request field; the positional "
             "domain stays the default for bare paths",
    )
    parser.add_argument(
        "--procs", type=int, default=1, metavar="N",
        help="worker processes (default: 1 = classic in-process serving). "
             "With N > 1 the corpus is loaded once and forked N ways: "
             "DML goes to one writer and replicates synchronously, asks "
             "and SELECTs fan out round-robin, sessions stick to one "
             "worker and are handed off if it crashes (docs/cluster.md)",
    )
    parser.add_argument(
        "--respawn-delay", type=float, default=0.0, metavar="SECONDS",
        help="pause before respawning a crashed worker (default: 0); "
             "while any worker is down, DML answers 503 + Retry-After",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=60.0, metavar="SECONDS",
        help="with --procs > 1: a worker that holds one request longer "
             "than this is treated as wedged — killed and respawned like "
             "a crash — instead of hanging clients forever (0 disables; "
             "default: 60)",
    )
    parser.add_argument(
        "--domain-qps", type=float, default=None, metavar="RATE",
        help="per-domain rate limit, requests/second, layered on top of "
             "the per-session --qps limit (default: unlimited)",
    )
    parser.add_argument(
        "--domain-burst", type=int, default=8,
        help="per-domain rate-limit burst size (tokens; default: 8)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8977,
        help="bind port (0 picks an ephemeral port; default: 8977)",
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable data directory: WAL + snapshot checkpoints for the "
             "database (crash recovery to the last committed statement) "
             "plus the session log at DIR/sessions.jsonl "
             "(default: in-memory only)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=512, metavar="N",
        help="committed WAL records between snapshot checkpoints; 0 "
             "checkpoints only at startup and graceful shutdown "
             "(default: 512)",
    )
    parser.add_argument(
        "--state", default=None, metavar="PATH",
        help="deprecated alias: JSONL session log only, no database "
             "durability (use --data-dir, which also persists the data)",
    )
    parser.add_argument(
        "--qps", type=float, default=None, metavar="RATE",
        help="per-session rate limit, questions/second (default: unlimited)",
    )
    parser.add_argument(
        "--burst", type=int, default=8,
        help="rate-limit burst size (tokens; default: 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="worker *threads* answering questions — per process when "
             "--procs > 1 (default: 8).  --procs scales across cores; "
             "--workers scales concurrent snapshot readers within each "
             "process",
    )
    parser.add_argument(
        "--clarify-margin", type=float, default=CLARIFY_MARGIN,
        help="score margin within which readings are reported as AMBIGUOUS "
             f"when a request sets clarify (default: {CLARIFY_MARGIN})",
    )
    return parser


def _serve_specs(parser, args) -> list:
    """The positional domain (+ --data-dir) and every --domain flag as
    DomainSpecs, first one the default; duplicates are an error."""
    from repro.cluster import DomainSpec

    specs = [DomainSpec(args.domain, args.data_dir)]
    for text in args.extra_domains or []:
        try:
            spec = DomainSpec.parse(text)
        except ValueError as exc:
            parser.error(str(exc))
        if any(existing.name == spec.name for existing in specs):
            parser.error(f"--domain {spec.name}: domain listed twice")
        specs.append(spec)
    return specs


def _serve_banner(args, specs, url: str) -> str:
    """The startup banner.  The URL stays last on the line (tools parse
    it with ``rsplit("listening on ", 1)``), and the classic
    single-domain single-process banner is unchanged."""
    if len(specs) == 1:
        parts = [f"domain: {args.domain}"]
    else:
        parts = [f"domains: {', '.join(spec.name for spec in specs)}"]
    if args.procs > 1:
        parts.append(f"procs: {args.procs}")
    return f"repro NLIDB — {' — '.join(parts)} — listening on {url}"


def serve_main(argv: list[str] | None = None, stdout=None) -> int:
    """``repro serve``: run the asyncio HTTP front end until SIGINT/SIGTERM."""
    import asyncio
    import contextlib
    import signal

    from repro.server import NliHttpServer, ServiceBackend

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.qps is not None and args.qps <= 0:
        parser.error("--qps must be positive (omit it to disable rate limiting)")
    if args.burst < 1:
        parser.error("--burst must be >= 1")
    if args.domain_qps is not None and args.domain_qps <= 0:
        parser.error("--domain-qps must be positive (omit it to disable)")
    if args.domain_burst < 1:
        parser.error("--domain-burst must be >= 1")
    if args.checkpoint_every < 0:
        parser.error("--checkpoint-every must be >= 0")
    if args.procs < 1:
        parser.error("--procs must be >= 1")
    if args.respawn_delay < 0:
        parser.error("--respawn-delay must be >= 0")
    if args.request_timeout < 0:
        parser.error("--request-timeout must be >= 0 (0 disables it)")
    if args.data_dir is not None and args.state is not None:
        parser.error(
            "--state is a deprecated alias superseded by --data-dir; "
            "pass only --data-dir (the session log moves to "
            "DIR/sessions.jsonl)"
        )
    if args.procs > 1 and args.state is not None:
        parser.error("--state (sessions-only persistence) predates cluster "
                     "mode; use --data-dir with --procs")
    stdout = stdout or sys.stdout
    specs = _serve_specs(parser, args)
    config = NliConfig(
        clarification_margin=args.clarify_margin,
        rate_limit_qps=args.qps,
        rate_limit_burst=args.burst,
        service_workers=args.workers,
        data_dir=args.data_dir,
        checkpoint_every=args.checkpoint_every,
    )
    if args.procs > 1:
        return _serve_cluster(args, specs, config, stdout)

    # -- single-process path (--procs 1), one service per domain ----------
    from repro.cluster import build_local_service

    # --data-dir consolidates everything durable under one directory:
    # WAL + checkpoints (via config.data_dir) and the session log beside
    # them.  --state keeps the old sessions-only layout working.
    persistence = args.state
    if args.data_dir is not None:
        import os

        persistence = os.path.join(args.data_dir, "sessions.jsonl")
    bundle = load_bundle(args.domain)
    services = {
        args.domain: NliService(
            bundle.database, domain=bundle.model, config=config,
            persistence=persistence,
        )
    }
    for spec in specs[1:]:
        services[spec.name] = build_local_service(spec, config)
    backend = ServiceBackend(services, default_domain=args.domain)

    async def run() -> None:
        server = NliHttpServer(
            host=args.host, port=args.port, backend=backend,
            domain_qps=args.domain_qps, domain_burst=args.domain_burst,
        )
        await server.start()
        print(_serve_banner(args, specs, server.url), file=stdout, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # non-unix loops
                loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        await server.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - non-unix fallback
        pass
    # Graceful exit: shrink the session log to live state, write a final
    # snapshot checkpoint (collapsing the WAL), and release the worker
    # pool.  A kill -9 skips all of this, which is exactly what the
    # append logs are for.
    for service in services.values():
        service.compact_log()
        service.close()
    print("goodbye.", file=stdout)
    return 0


def _serve_cluster(args, specs, config, stdout) -> int:
    """The --procs > 1 path: fork the pool before asyncio starts (a fork
    must never cross a live event loop), then wire router + HTTP server
    into the loop.  See docs/cluster.md."""
    import asyncio
    import contextlib
    import signal

    from repro.cluster import build_cluster, start_router
    from repro.server import NliHttpServer

    supervisor = build_cluster(
        specs, args.procs, config, respawn_delay_s=args.respawn_delay,
        request_timeout_s=args.request_timeout or None,
    )

    async def run() -> None:
        router = await start_router(
            supervisor, specs,
            default_domain=args.domain, qps=args.qps, burst=args.burst,
        )
        server = NliHttpServer(
            host=args.host, port=args.port, backend=router,
            domain_qps=args.domain_qps, domain_burst=args.domain_burst,
        )
        await server.start()
        print(_serve_banner(args, specs, server.url), file=stdout, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # non-unix loops
                loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        await server.aclose()
        # Workers compact their session logs and write a final checkpoint
        # inside the shutdown op before the supervisor reaps them.
        await router.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - non-unix fallback
        pass
    # The parent's pre-fork service images never served requests and own
    # no storage; close just releases their thread pools.
    for service in supervisor.services.values():
        service.close()
    print("goodbye.", file=stdout)
    return 0


def build_subscribe_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro subscribe",
        description=(
            "Follow one standing question against a running server: "
            "GET /v1/subscribe and print one JSON frame per line as "
            "committed writes change the answer (docs/streaming.md)."
        ),
    )
    parser.add_argument("question", help="the English question to keep live")
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8977",
        help="base URL of a `repro serve` instance (default %(default)s)",
    )
    parser.add_argument("--domain", default=None, help="domain to ask against")
    parser.add_argument(
        "--session", default=None, help="session id for dialogue context"
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=0,
        help="close after N answer/error frames (0 = run until interrupted)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=10.0,
        help="idle keep-alive interval in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="print every frame including heartbeats (default: answers only)",
    )
    return parser


def subscribe_main(argv: list[str] | None = None, stdout=None) -> int:
    """``repro subscribe`` — a streaming HTTP client over /v1/subscribe."""
    import http.client
    import urllib.parse

    stdout = stdout or sys.stdout
    args = build_subscribe_parser().parse_args(argv)
    parts = urllib.parse.urlsplit(args.url)
    if parts.scheme not in ("http", ""):
        print(f"unsupported URL scheme: {parts.scheme}", file=sys.stderr)
        return 2
    query: dict[str, str] = {
        "question": args.question,
        "heartbeat": str(args.heartbeat),
    }
    if args.domain:
        query["domain"] = args.domain
    if args.session:
        query["session"] = args.session
    if args.frames > 0:
        query["frames"] = str(args.frames)
    target = "/v1/subscribe?" + urllib.parse.urlencode(query)
    connection = http.client.HTTPConnection(parts.netloc or args.url)
    try:
        connection.request("GET", target)
        response = connection.getresponse()
        if response.status != 200:
            print(response.read().decode("utf-8", "replace"), file=stdout)
            return 2
        # http.client undoes the chunked framing: each readline() is one
        # NDJSON frame, arriving as the server pushes it.
        while True:
            line = response.readline()
            if not line:
                return 0  # stream terminated cleanly
            frame = json.loads(line)
            if not args.raw and frame.get("type") == "heartbeat":
                continue
            print(json.dumps(frame), file=stdout, flush=True)
            if frame.get("type") == "closed":
                return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        return 0
    except (ConnectionError, OSError) as exc:
        print(f"connection failed: {exc}", file=sys.stderr)
        return 2
    finally:
        connection.close()


def main(argv: list[str] | None = None, stdin=None, stdout=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:], stdout=stdout)
    if argv and argv[0] == "subscribe":
        return subscribe_main(argv[1:], stdout=stdout)
    args = build_parser().parse_args(argv)
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout

    bundle = load_bundle(args.domain)
    config = NliConfig(clarification_margin=CLARIFY_MARGIN) if args.clarify else None
    service = NliService(bundle.database, domain=bundle.model, config=config)
    session = Session()
    exit_code = 0

    if args.json_mode:
        # Line protocol: every input line is a question, every output line
        # one JSON envelope.  Clarifications resolve statefully: a bare
        # digit after an ambiguous response picks that choice.
        for raw in stdin:
            line = raw.strip()
            if not line:
                continue
            if line in ("\\q", "quit", "exit"):
                break
            response = _resolve_by_number(service, session, line)
            if response is None:
                response = service.ask(line, session=session, clarify=args.clarify)
            print(json.dumps(response.to_dict()), file=stdout)
            exit_code = EXIT_CODES[response.status]
        return exit_code

    print(f"repro NLIDB — domain: {args.domain}", file=stdout)
    print(service.database.summary(), file=stdout)
    print('Type an English question, or "\\q" to quit.', file=stdout)

    for raw in stdin:
        line = raw.strip()
        if not line:
            continue
        if line in ("\\q", "quit", "exit"):
            break
        answer_one(
            service, session, line, args.explain, args.clarify, args.max_rows, stdout
        )
        print("", file=stdout)
    print("goodbye.", file=stdout)
    # Status exit codes are a --json (scripting) feature; the interactive
    # console keeps its historical always-0 exit.
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
