"""Multi-process worker pool + multi-domain routing (``repro serve --procs``).

One process, one GIL was the scaling ceiling: every ask, however
read-only and snapshot-isolated, still shared a single interpreter.
This package runs N **worker processes** behind the existing asyncio
HTTP front end, and lets one server host many **domains** (databases):

* :mod:`repro.cluster.registry` — what is hosted where
  (``--domain NAME[=DIR]``), and the fork-after-load service builders;
* :mod:`repro.cluster.ipc` — the length-prefixed JSON frame protocol
  both sides of each worker socketpair speak;
* :mod:`repro.cluster.worker` — the forked child: blocking frame loop
  over copy-on-write-shared services;
* :mod:`repro.cluster.supervisor` — forks, monitors, reaps, respawns;
* :mod:`repro.cluster.router` — routing policy: single writer +
  synchronous replication, round-robin reads, session affinity with
  crash handoff, per-domain state.  Speaks the HTTP server's backend
  protocol.

Boot order matters (a fork must never cross a live event loop):
:func:`build_cluster` loads everything and forks **before** asyncio
starts; :func:`start_router` then wires the pool into the running loop.
See ``docs/cluster.md`` for the architecture and failure matrix.
"""

from __future__ import annotations

from repro.cluster.registry import (
    DomainSpec,
    build_local_service,
    build_parent_service,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ClusterSupervisor, WorkerDied, WorkerHandle
from repro.core.config import NliConfig

__all__ = [
    "ClusterRouter",
    "ClusterSupervisor",
    "DomainSpec",
    "WorkerDied",
    "WorkerHandle",
    "build_cluster",
    "build_local_service",
    "build_parent_service",
    "start_router",
]


def build_cluster(
    specs: list[DomainSpec],
    procs: int,
    config: NliConfig,
    *,
    respawn_delay_s: float = 0.0,
    request_timeout_s: float | None = 60.0,
) -> ClusterSupervisor:
    """Load every domain, restore durable state, and fork the pool.

    Must run **before** any asyncio event loop exists in the process.
    Returns the supervisor with all workers forked but not yet wired to
    a loop — pass it to :func:`start_router` from inside the loop.
    """
    services = {spec.name: build_parent_service(spec, config) for spec in specs}
    supervisor = ClusterSupervisor(
        services,
        {spec.name: spec for spec in specs},
        procs,
        threads=config.service_workers,
        checkpoint_every=config.checkpoint_every,
        wal_fsync=config.wal_fsync,
        respawn_delay_s=respawn_delay_s,
        request_timeout_s=request_timeout_s,
    )
    supervisor.fork_initial()
    return supervisor


async def start_router(
    supervisor: ClusterSupervisor,
    specs: list[DomainSpec],
    *,
    default_domain: str | None = None,
    qps: float | None = None,
    burst: int = 8,
) -> ClusterRouter:
    """Wire a forked pool into the running loop; returns the live router
    (sessions from any durable session log are already distributed)."""
    router = ClusterRouter(
        supervisor,
        specs,
        default_domain=default_domain,
        qps=qps,
        burst=burst,
    )
    await supervisor.start()
    await router.start()
    return router
