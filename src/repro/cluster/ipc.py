"""Frame protocol for supervisor <-> worker sockets.

One frame = a 4-byte big-endian length prefix + a UTF-8 JSON object.
The same framing is spoken from both sides of a ``socket.socketpair()``:

* the **worker child** runs a blocking loop (:func:`recv_frame` /
  :func:`send_frame` on the raw socket) — no event loop in the child,
  every request is handed to a thread pool and the response frame is
  written under a lock whenever it completes;
* the **supervisor parent** wraps its end in asyncio streams
  (:func:`read_frame` / :func:`write_frame`) so the HTTP event loop can
  multiplex many in-flight requests per worker.

Requests and responses are correlated by an ``id`` field (the parent
mints it, the child echoes it); frames are otherwise free-form dicts —
the op vocabulary lives in :mod:`repro.cluster.worker` (the serving
side) and :mod:`repro.cluster.router` (the dispatching side).  JSON
keeps the protocol debuggable with ``strace``/``socat`` and avoids
pickle's arbitrary-code-on-load hazard across the privilege-identical
but crash-isolated process boundary.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
]

#: Refuse frames larger than this (a corrupt length prefix would
#: otherwise ask for gigabytes); generous vs the HTTP body cap (1 MiB)
#: because stats aggregation and session-adoption batches ride here too.
MAX_FRAME_BYTES = 32 << 20

_LEN = struct.Struct(">I")


class FrameError(Exception):
    """The stream is unframeable (oversized or torn length prefix)."""


def _encode(payload: dict[str, Any]) -> bytes:
    blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(blob)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(blob)) + blob


def _decode(blob: bytes) -> dict[str, Any]:
    payload = json.loads(blob.decode("utf-8"))
    if not isinstance(payload, dict):
        raise FrameError("frame payload must be a JSON object")
    return payload


# -- blocking side (worker child) ------------------------------------------


def send_frame(sock: socket.socket, payload: dict[str, Any]) -> None:
    """Write one frame; the caller serializes concurrent senders."""
    sock.sendall(_encode(payload))


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF (peer closed between frames)."""
    head = _recv_exact(sock, _LEN.size)
    if head is None:
        return None
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"incoming frame of {length} bytes exceeds cap")
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("peer hung up mid-frame")
    return _decode(body)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- asyncio side (supervisor parent) --------------------------------------


def write_frame(writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
    """Queue one frame on the stream (await ``writer.drain()`` after)."""
    writer.write(_encode(payload))


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF (the worker died or closed)."""
    try:
        head = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"incoming frame of {length} bytes exceeds cap")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    return _decode(body)
