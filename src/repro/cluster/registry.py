"""Domain registry: which databases one server hosts, and where.

A **domain** is one (database, domain model, corpus) bundle served under
a route name: ``POST /d/fleet/ask`` or ``{"domain": "fleet", ...}`` in
the request body.  The registry is the single place the CLI's
``--domain NAME[=DIR]`` flags, the local multi-domain backend and the
cluster supervisor agree on what exists:

* :class:`DomainSpec` — parsed flag: bundled dataset name + optional
  durable data directory;
* :func:`build_local_service` — the one-process path (``--procs 1``):
  the service owns its own storage manager and session log, exactly as
  single-domain serving always has;
* :func:`build_parent_service` — the cluster path: the parent process
  builds the language stack and restores durable state *read-only*
  before forking, so every worker inherits the loaded corpus
  copy-on-write; storage is attached later, by the one writer child
  (see :mod:`repro.cluster.worker`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace as dc_replace

from repro.core.config import NliConfig
from repro.datasets import ALL_DOMAINS, load_bundle
from repro.service import NliService
from repro.storage import restore_database

__all__ = ["DomainSpec", "build_local_service", "build_parent_service"]


@dataclass(frozen=True)
class DomainSpec:
    """One hosted domain: bundled dataset ``name``, optional ``data_dir``."""

    name: str
    data_dir: str | None = None

    @classmethod
    def parse(cls, text: str) -> "DomainSpec":
        """Parse one ``--domain`` value: ``NAME`` or ``NAME=DATADIR``."""
        name, sep, data_dir = text.partition("=")
        name = name.strip()
        if name not in ALL_DOMAINS:
            raise ValueError(
                f"unknown domain {name!r} (available: {', '.join(ALL_DOMAINS)})"
            )
        if sep and not data_dir.strip():
            raise ValueError(f"--domain {text!r}: empty data directory")
        return cls(name, data_dir.strip() if sep else None)

    @property
    def durable(self) -> bool:
        return self.data_dir is not None

    @property
    def session_log_path(self) -> str | None:
        """The conversation log lives beside the WAL, one per domain."""
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, "sessions.jsonl")


def build_local_service(spec: DomainSpec, config: NliConfig) -> NliService:
    """One in-process service for ``spec``: storage + session log attached
    the classic way (the service recovers and persists itself)."""
    bundle = load_bundle(spec.name)
    return NliService(
        bundle.database,
        domain=bundle.model,
        config=dc_replace(config, data_dir=spec.data_dir),
        persistence=spec.session_log_path,
    )


def build_parent_service(spec: DomainSpec, config: NliConfig) -> NliService:
    """The pre-fork service for ``spec``: corpus + language layers loaded
    (the expensive part — shared copy-on-write with every worker), durable
    state restored read-only, but **no** storage manager and **no** rate
    limiter — the writer child attaches storage after the fork, and rate
    limiting is the router's job so it is charged exactly once per
    request, not once per worker."""
    bundle = load_bundle(spec.name)
    service = NliService(
        bundle.database,
        domain=bundle.model,
        config=dc_replace(config, data_dir=None, rate_limit_qps=None),
    )
    if spec.durable:
        report = restore_database(service.nli.engine, spec.data_dir)
        if report.recovered:
            service.refresh(full=True)
    return service
