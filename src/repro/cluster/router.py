"""The cluster router: the HTTP front end's backend, spread over workers.

This is where routing *policy* lives (the supervisor only keeps N
workers alive):

* **Single writer, fan-out readers.**  All DML and transaction control
  goes to worker 0, whose storage manager WALs every committed
  statement (the ack durability point, same as single-process serving).
  After the writer acks, the statement is **synchronously replicated**
  to every other worker before the client sees 200 — so a read routed
  to any sibling observes the write (read-your-writes), at the cost of
  write latency scaling with the pool.  A replica that fails to apply
  has diverged and is evicted (killed and respawned into catch-up)
  instead of staying in rotation with stale rows.  Reads (``ask``,
  ``SELECT``) fan out round-robin across *all* workers, writer
  included.
* **Session affinity.**  Dialogue state (history, pending
  clarifications) lives in exactly one worker's memory: a session is
  assigned a worker on first sight and sticks.  The router mirrors
  every state-changing event (open/turn/park/resolve) into its own
  record list — the same replay-based records the durable session log
  uses — so when a worker dies, the dead worker's sessions are
  *adopted* by a sibling via
  :meth:`~repro.service.service.NliService.adopt_records`, and a
  clarification id handed out before the crash keeps resolving.
* **Degraded mode.**  While any worker is down or respawning, DML
  answers ``503 + Retry-After`` (the respawn catches up from the
  checkpoint + WAL chain — pausing writes is what makes that race-free)
  and reads keep flowing on the survivors.  ``/healthz`` reports the
  same state.
* **Transactions.**  ``BEGIN`` takes a per-domain transaction lock held
  across requests until ``COMMIT``/``ROLLBACK`` (exactly the
  single-process gate, made async).  Buffered statements replicate as
  one batch at COMMIT; a writer crash mid-transaction discards the
  buffer — the WAL never saw the group, so recovery and replicas agree
  the transaction never happened.
* **Standing subscriptions.**  ``subscribe`` pins the question to one
  reader (the session's owner when a session rides along, round-robin
  otherwise); that worker's in-process registry re-evaluates on
  relevant commits — which every worker sees, because replicated DML is
  applied everywhere — and pushes frames back as unsolicited ``event``
  frames the supervisor routes here.  The router keeps its own bounded
  drop-oldest queue per subscription (the second backpressure stage,
  guarding against slow HTTP clients) and, when the owning worker dies,
  re-registers the subscription on the adopting sibling so the stream
  survives a SIGKILL with at most a duplicate answer frame.

The router speaks the backend protocol of
:class:`repro.server.http.NliHttpServer` — the HTTP layer cannot tell
it from a local in-process service.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
from typing import Any, Iterator

from repro.cluster.ipc import MAX_FRAME_BYTES
from repro.cluster.registry import DomainSpec
from repro.cluster.supervisor import ClusterSupervisor, WorkerDied, WorkerHandle
from repro.server.http import ApiError
from repro.service.persistence import SessionLog
from repro.service.ratelimit import RateLimiter
from repro.service.response import Response
from repro.service.subscriptions import DEFAULT_QUEUE_FRAMES

__all__ = ["ClusterRouter"]

#: Statement heads that route to any reader when no transaction is open.
_READ_WORDS = ("select", "explain")

#: Byte budget for one ``apply`` frame's statements.  Well under the
#: frame cap so a transaction of many 1 MiB ``/sql`` bodies replicates
#: as several frames instead of one unframeable monster.
_APPLY_BUDGET = MAX_FRAME_BYTES // 4


class _ReplicaApplyFailed(Exception):
    """A live replica answered ``ok: false`` to a replicated statement."""


def _statement_word(sql: str) -> str:
    head = sql.lstrip().lower()
    return head.split(None, 1)[0].rstrip(";") if head else ""


def _statement_chunks(
    statements: list[str], budget: int = _APPLY_BUDGET
) -> Iterator[list[str]]:
    """Split a statement batch into sublists whose JSON-encoded size
    stays under ``budget`` (a single oversized statement still ships
    alone — the HTTP body cap keeps it far below the frame cap)."""
    chunk: list[str] = []
    size = 0
    for sql in statements:
        cost = len(json.dumps(sql)) + 1
        if chunk and size + cost > budget:
            yield chunk
            chunk, size = [], 0
        chunk.append(sql)
        size += cost
    if chunk:
        yield chunk


def _records_for(
    events: list[dict[str, Any]],
    sids: set[str],
    loose_clars: set[str],
) -> list[dict[str, Any]]:
    """The chronological slice of ``events`` a sibling must replay to
    adopt the given sessions (plus any session-less parked
    clarifications), in original order.

    ``resolve`` records carry no sid, so park ids are tracked as records
    are selected: a resolve whose id belongs to a moved park moves too.
    """
    moved_parks: set[str] = set(loose_clars)
    out: list[dict[str, Any]] = []
    for record in events:
        op = record.get("op")
        sid = record.get("sid")
        if sid is not None and sid in sids:
            out.append(record)
            if op == "park":
                moved_parks.add(record["id"])
            continue
        if op == "park" and sid is None and record.get("id") in loose_clars:
            out.append(record)
            continue
        if op == "resolve" and record.get("id") in moved_parks:
            out.append(record)
    return out


class _DomainState:
    """Router-side bookkeeping for one hosted domain."""

    def __init__(self, spec: DomainSpec) -> None:
        self.spec = spec
        #: Monotonic committed-write counter: the cluster's data stamp.
        #: Every acked DML/DDL statement or committed transaction bumps
        #: it, so the HTTP response cache can never serve across writes.
        self.write_count = 0
        #: Serializes /sql dispatch + replication bookkeeping.
        self.sql_lock = asyncio.Lock()
        #: Held from BEGIN to COMMIT/ROLLBACK (across HTTP requests).
        self.txn_lock = asyncio.Lock()
        #: Buffered statements of the open transaction (None = no txn).
        self.txn_buffer: list[str] | None = None
        #: Every committed statement since boot, for catching respawned
        #: workers of *in-memory* domains up (durable domains catch up
        #: from the checkpoint + WAL chain instead and skip this list).
        self.dml_history: list[str] = []
        #: Replay-based session event records (the handoff substrate).
        self.events: list[dict[str, Any]] = []
        self.session_log: SessionLog | None = (
            SessionLog(spec.session_log_path) if spec.durable else None
        )
        #: sid -> worker index (sticky affinity).
        self.session_owner: dict[str, int] = {}
        #: clarification id (as the client knows it) -> worker index.
        self.clar_owner: dict[str, int] = {}
        self.counters = {
            "asks": 0,
            "dml_statements": 0,
            "transactions": 0,
            "replicated_statements": 0,
            "replication_errors": 0,
            "handoffs": 0,
            "retried_reads": 0,
            "subscriptions_opened": 0,
            "subscription_handoffs": 0,
        }

    def record(self, event: dict[str, Any]) -> None:
        self.events.append(event)
        if self.session_log is not None:
            self.session_log.append(event)


class _ClusterSubscription:
    """Router-side record of one standing subscription.

    Holds the id the HTTP client knows (``rsub-N``), which worker
    currently owns the service-level subscription, and a bounded
    drop-oldest frame queue the connection loop drains.  Speaks the
    same stream interface as the local backend's
    ``_LocalSubscriptionStream`` (``id`` / ``question`` / ``tables`` /
    ``queue_frames`` / ``next_frame`` / ``aclose``), so the HTTP layer
    cannot tell cluster streams from in-process ones.
    """

    def __init__(
        self,
        router: "ClusterRouter",
        domain: str,
        rsub_id: str,
        question: str,
        sid: str | None,
        queue_frames: int,
    ) -> None:
        self._router = router
        self.domain = domain
        self.id = rsub_id
        self.question = question
        self.sid = sid
        self.queue_frames = max(1, queue_frames)
        self.tables: list[str] = []
        #: Index of the worker whose registry evaluates this question.
        self.owner: int | None = None
        self.closed = False
        self.dropped = 0
        self._queue: asyncio.Queue[dict[str, Any]] = asyncio.Queue()

    def enqueue(self, frame: dict[str, Any]) -> None:
        """Buffer one worker-pushed frame (event-loop thread only).

        The worker already bounds its service-level queue; this queue is
        the second stage, protecting the router from an HTTP client that
        reads slower than the worker pushes.  Frames are rewritten to
        carry the router id — the only subscription id the client knows.
        """
        if self.closed:
            return
        frame = dict(frame, subscription=self.id)
        while self._queue.qsize() >= self.queue_frames:
            try:
                self._queue.get_nowait()
                self.dropped += 1
            except asyncio.QueueEmpty:  # pragma: no cover - single thread
                break
        self._queue.put_nowait(frame)

    async def next_frame(self, timeout: float) -> dict[str, Any] | None:
        try:
            frame = await asyncio.wait_for(self._queue.get(), timeout)
        except asyncio.TimeoutError:
            return None
        if frame.get("type") == "closed":
            self.closed = True
        return frame

    async def aclose(self) -> None:
        await self._router._unsubscribe(self)


class ClusterRouter:
    """Backend protocol implementation over a :class:`ClusterSupervisor`."""

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        specs: list[DomainSpec],
        *,
        default_domain: str | None = None,
        qps: float | None = None,
        burst: int = 8,
    ) -> None:
        self.supervisor = supervisor
        self._domains = {spec.name: _DomainState(spec) for spec in specs}
        self.default_domain = default_domain or specs[0].name
        #: Per-key (session / client address) limiter — workers run with
        #: limiting off, so the charge happens exactly once, here.
        self._limiter = RateLimiter(qps, burst) if qps is not None else None
        self._rr = 0
        self._handoff_lock = asyncio.Lock()
        #: Router subscription id ("rsub-N") -> live subscription record.
        self._subs: dict[str, _ClusterSubscription] = {}
        self._sub_ids = itertools.count(1)
        supervisor.on_worker_death = self._on_worker_death
        supervisor.on_worker_ready = self._on_worker_ready
        supervisor.on_worker_event = self._on_worker_event

    # -- backend protocol: introspection -----------------------------------

    def domains(self) -> list[str]:
        return list(self._domains)

    def has_session(self, domain: str, sid: str) -> bool:
        state = self._domains.get(domain)
        return state is not None and sid in state.session_owner

    def check_limit(self, domain: str, key: str, tokens: float = 1.0) -> float:
        if self._limiter is None:
            return 0.0
        return self._limiter.check(key, tokens)

    def data_stamp(self, domain: str) -> Any:
        return ("cluster", self._state(domain).write_count)

    # -- boot / shutdown ---------------------------------------------------

    async def start(self) -> None:
        """Distribute any persisted sessions across the live pool."""
        for state in self._domains.values():
            if state.session_log is None:
                continue
            records = state.session_log.load()
            if records:
                await self._distribute_records(state, records)
                state.events.extend(records)

    async def _distribute_records(
        self, state: _DomainState, records: list[dict[str, Any]]
    ) -> None:
        """Boot-time adoption: partition a restored session log by sid
        (round-robin over workers) so affinity holds from the first
        request after a restart."""
        handles = self.supervisor.live_handles()
        if not handles:
            return
        assignment: dict[str | None, WorkerHandle] = {}
        buckets: dict[int, list[dict[str, Any]]] = {}
        park_sids: dict[str, str | None] = {}
        counter = 0
        for record in records:
            sid = record.get("sid")
            if record.get("op") == "park":
                park_sids[record.get("id")] = sid
            if record.get("op") == "resolve":
                sid = park_sids.get(record.get("id"))
            key = sid
            if key not in assignment:
                assignment[key] = handles[counter % len(handles)]
                counter += 1
            handle = assignment[key]
            buckets.setdefault(handle.index, []).append(record)
            if sid is not None:
                state.session_owner[sid] = handle.index
            if record.get("op") == "park":
                state.clar_owner[record["id"]] = handle.index
        for handle in handles:
            bucket = buckets.get(handle.index)
            if not bucket:
                continue
            try:
                await self.supervisor.request(
                    handle,
                    {"op": "adopt", "domain": state.spec.name, "records": bucket},
                )
            except WorkerDied:
                continue

    async def aclose(self) -> None:
        await self.supervisor.aclose()

    # -- helpers -----------------------------------------------------------

    def _state(self, domain: str) -> _DomainState:
        state = self._domains.get(domain)
        if state is None:
            raise ApiError(404, f"no such domain: {domain}", "unknown_domain")
        return state

    def _live_or_503(self) -> list[WorkerHandle]:
        handles = self.supervisor.live_handles()
        if not handles:
            raise self._degraded_error("no worker is available")
        return handles

    def _degraded_error(self, message: str) -> ApiError:
        error = ApiError(503, message, "cluster_degraded")
        error.headers["Retry-After"] = str(
            max(1, math.ceil(self.supervisor.respawn_delay_s or 1))
        )
        return error

    def _require_all_live(self) -> None:
        if not self.supervisor.all_live:
            raise self._degraded_error(
                "a worker is respawning; writes are paused until the pool "
                "is whole (reads keep flowing)"
            )

    def _next_reader(self, handles: list[WorkerHandle]) -> WorkerHandle:
        self._rr += 1
        return handles[self._rr % len(handles)]

    def _owner_handle(self, index: int | None) -> WorkerHandle | None:
        if index is None:
            return None
        handle = self.supervisor.handles[index]
        return handle if handle.live else None

    def _assign_session(self, state: _DomainState, sid: str) -> WorkerHandle:
        handle = self._owner_handle(state.session_owner.get(sid))
        if handle is not None:
            return handle
        handle = self._next_reader(self._live_or_503())
        if sid not in state.session_owner:
            state.record({"op": "open", "sid": sid})
        state.session_owner[sid] = handle.index
        return handle

    def _limited_envelope(self, question: str, retry_after: float) -> dict[str, Any]:
        return Response.rate_limited(question, retry_after).to_dict()

    def _note_response(
        self,
        state: _DomainState,
        worker_index: int,
        question: str,
        sid: str | None,
        clarify: bool,
        envelope: dict[str, Any],
    ) -> None:
        """Mirror the service's own event logging from the envelope."""
        status = envelope.get("status")
        clar_id = envelope.get("clarification_id")
        if status == "ambiguous" and clar_id:
            state.clar_owner[clar_id] = worker_index
            state.record(
                {
                    "op": "park",
                    "sid": sid,
                    "question": question,
                    "id": clar_id,
                    "choices": envelope.get("choices") or [],
                }
            )
        elif status == "answered" and sid is not None:
            state.record(
                {
                    "op": "turn",
                    "sid": sid,
                    "question": question,
                    "clarify": clarify,
                    "choice": None,
                }
            )

    # -- backend protocol: asking ------------------------------------------

    async def ask(
        self,
        domain: str,
        question: str,
        sid: str | None,
        clarify: bool,
        client: str,
    ) -> dict[str, Any]:
        state = self._state(domain)
        if self._limiter is not None:
            retry_after = self._limiter.check(client)
            if retry_after:
                return self._limited_envelope(question, retry_after)
        state.counters["asks"] += 1
        payload = {
            "op": "ask",
            "domain": domain,
            "question": question,
            "session": sid,
            "clarify": clarify,
        }
        envelope, handle = await self._dispatch_sticky(state, sid, payload)
        self._note_response(state, handle.index, question, sid, clarify, envelope)
        return envelope

    async def ask_many(
        self,
        domain: str,
        questions: list[str],
        sid: str | None,
        clarify: bool,
        client: str,
    ) -> list[dict[str, Any]]:
        state = self._state(domain)
        if self._limiter is not None:
            retry_after = self._limiter.check(client, float(len(questions)))
            if retry_after:
                return [
                    self._limited_envelope(question, retry_after)
                    for question in questions
                ]
        state.counters["asks"] += len(questions)
        payload = {
            "op": "ask_many",
            "domain": domain,
            "questions": questions,
            "session": sid,
            "clarify": clarify,
        }
        result, handle = await self._dispatch_sticky(
            state, sid, payload, key="envelopes"
        )
        for question, envelope in zip(questions, result):
            self._note_response(
                state, handle.index, question, sid, clarify, envelope
            )
        return result

    async def _dispatch_sticky(
        self,
        state: _DomainState,
        sid: str | None,
        payload: dict[str, Any],
        key: str = "envelope",
    ) -> tuple[Any, WorkerHandle]:
        """Route to the session's owner (or round-robin when stateless),
        retrying on a sibling — after session handoff — if the worker
        dies mid-request.  Asks are pure reads, so a retry can never
        double-apply anything."""
        for attempt in range(max(2, self.supervisor.procs)):
            if sid is not None:
                handle = self._assign_session(state, sid)
            else:
                handle = self._next_reader(self._live_or_503())
            try:
                frame = await self.supervisor.request(handle, payload)
            except WorkerDied:
                state.counters["retried_reads"] += 1
                await self._handoff_index(handle.index)
                continue
            if not frame.get("ok", False):
                raise ApiError(
                    422, frame.get("error", "worker error"), frame.get("code", "")
                )
            return frame[key], handle
        raise self._degraded_error("no worker survived the request")

    # -- backend protocol: clarifications ----------------------------------

    async def resolve(
        self, domain: str, clarification_id: str, choice: int, client: str
    ) -> dict[str, Any]:
        state = self._state(domain)
        if self._limiter is not None:
            retry_after = self._limiter.check(client)
            if retry_after:
                return self._limited_envelope(clarification_id, retry_after)
        payload = {
            "op": "resolve",
            "domain": domain,
            "clarification_id": clarification_id,
            "choice": choice,
        }
        for _ in range(max(2, self.supervisor.procs)):
            handle = self._owner_handle(state.clar_owner.get(clarification_id))
            if handle is None:
                handle = self._next_reader(self._live_or_503())
            try:
                frame = await self.supervisor.request(handle, payload)
            except WorkerDied:
                await self._handoff_index(handle.index)
                continue
            if frame.get("ok", False):
                state.record(
                    {"op": "resolve", "id": clarification_id, "choice": choice}
                )
                state.clar_owner.pop(clarification_id, None)
                return frame["envelope"]
            if frame.get("code") == "clarification":
                if frame.get("live"):
                    raise ApiError(400, frame.get("error", ""), "bad_choice")
                raise ApiError(
                    404, frame.get("error", ""), "unknown_clarification"
                )
            raise ApiError(
                422, frame.get("error", "worker error"), frame.get("code", "")
            )
        raise self._degraded_error("no worker survived the request")

    # -- backend protocol: SQL ---------------------------------------------

    async def execute(self, domain: str, sql: str) -> dict[str, Any]:
        state = self._state(domain)
        word = _statement_word(sql)
        if word in _READ_WORDS and state.txn_buffer is None:
            return await self._execute_read(state, sql)
        return await self._execute_write(state, sql, word)

    async def _execute_read(
        self, state: _DomainState, sql: str
    ) -> dict[str, Any]:
        payload = {"op": "execute", "domain": state.spec.name, "sql": sql}
        for _ in range(max(2, self.supervisor.procs)):
            handle = self._next_reader(self._live_or_503())
            try:
                frame = await self.supervisor.request(handle, payload)
            except WorkerDied:
                state.counters["retried_reads"] += 1
                continue
            return self._sql_result(frame)
        raise self._degraded_error("no worker survived the request")

    async def _execute_write(
        self, state: _DomainState, sql: str, word: str
    ) -> dict[str, Any]:
        """The write path: writer-only dispatch + synchronous replication.

        Mirrors the single-process transaction gate: BEGIN takes the
        domain's transaction lock and *keeps* it until the closing
        statement (possibly a different HTTP request); everything else
        serializes on the short sql lock.  DML requires the whole pool
        live — that is what makes a respawning worker's catch-up
        race-free — and is acked only after the writer (durability) and
        every reader (read-your-writes) have applied it.
        """
        began = False
        if word == "begin" and state.txn_buffer is None:
            await state.txn_lock.acquire()
            began = True
        try:
            async with state.sql_lock:
                self._require_all_live()
                writer = self.supervisor.handles[0]
                payload = {
                    "op": "execute",
                    "domain": state.spec.name,
                    "sql": sql,
                }
                try:
                    frame = await self.supervisor.request(writer, payload)
                except WorkerDied:
                    self._abort_txn(state)
                    raise self._degraded_error(
                        "the writer died mid-statement; retry once the "
                        "pool recovers (unacknowledged work was rolled back)"
                    ) from None
                try:
                    result = self._sql_result(frame)
                except ApiError:
                    if began:
                        # BEGIN itself failed: nothing opened.
                        state.txn_lock.release()
                        began = False
                    raise
                if began:
                    state.txn_buffer = []
                    state.counters["transactions"] += 1
                    return result
                if state.txn_buffer is not None:
                    if word == "commit":
                        statements = state.txn_buffer
                        state.txn_buffer = None
                        # The writer has durably committed: move the
                        # data stamp *now* so the response cache can
                        # never serve pre-commit rows, and release the
                        # transaction gate no matter how replication
                        # goes — a replica failure degrades the pool, it
                        # must not wedge every future BEGIN.
                        state.write_count += 1
                        try:
                            await self._replicate(state, statements)
                        finally:
                            state.txn_lock.release()
                    elif word == "rollback":
                        state.txn_buffer = None
                        state.txn_lock.release()
                    elif word not in _READ_WORDS:
                        state.txn_buffer.append(sql)
                    return result
                if word not in _READ_WORDS:
                    state.counters["dml_statements"] += 1
                    state.write_count += 1
                    await self._replicate(state, [sql])
                return result
        except BaseException:
            if began and state.txn_buffer is None:
                # The lock was taken for a BEGIN that never opened.
                if state.txn_lock.locked():
                    state.txn_lock.release()
            raise

    def _abort_txn(self, state: _DomainState) -> None:
        """Writer death: the open transaction (if any) evaporates — its
        commit group never reached the WAL, so recovery agrees."""
        if state.txn_buffer is not None:
            state.txn_buffer = None
            if state.txn_lock.locked():
                state.txn_lock.release()

    def _sql_result(self, frame: dict[str, Any]) -> dict[str, Any]:
        if not frame.get("ok", False):
            raise ApiError(
                422,
                frame.get("error", "SQL failed"),
                frame.get("code") or "engine_error",
            )
        return {"columns": frame["columns"], "rows": frame["rows"]}

    async def _replicate(
        self, state: _DomainState, statements: list[str]
    ) -> None:
        """Apply acked statements on every non-writer worker before the
        client sees the ack (synchronous, read-your-writes).

        Never raises — the writer already committed, so the ack stands
        whatever the replicas do.  A replica dying mid-apply is fine (it
        catches up on respawn); a live replica that *fails* to apply has
        diverged from the writer and is evicted — SIGKILLed into the
        normal death → respawn → catch-up path — rather than left in
        read rotation serving rows that are missing the write.  The
        eviction surfaces in ``/healthz`` as degraded until the respawn
        rejoins.  Statements ship in size-bounded chunks so a large
        transaction can never exceed the IPC frame cap."""
        if not statements:
            return
        if not state.spec.durable:
            state.dml_history.extend(statements)
        chunks = list(_statement_chunks(statements))
        replicas = [h for h in self.supervisor.handles if h.live and h.index != 0]
        results = await asyncio.gather(
            *(self._apply_on(handle, state, chunks) for handle in replicas),
            return_exceptions=True,
        )
        for handle, result in zip(replicas, results):
            if isinstance(result, WorkerDied):
                continue  # catches up from the chain / history on respawn
            if isinstance(result, BaseException):
                state.counters["replication_errors"] += 1
                self.supervisor.evict(handle)
            else:
                state.counters["replicated_statements"] += len(statements)

    async def _apply_on(
        self,
        handle: WorkerHandle,
        state: _DomainState,
        chunks: list[list[str]],
    ) -> None:
        for chunk in chunks:
            frame = await self.supervisor.request(
                handle,
                {
                    "op": "apply",
                    "domain": state.spec.name,
                    "statements": chunk,
                },
            )
            if not frame.get("ok", False):
                raise _ReplicaApplyFailed(frame.get("error", "apply failed"))

    # -- backend protocol: standing subscriptions --------------------------

    async def subscribe(
        self,
        domain: str,
        question: str,
        sid: str | None,
        client: str,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
    ) -> _ClusterSubscription:
        """Pin a standing subscription to one reader and return its
        stream.  A session rides with its sticky owner (dialogue state
        and the subscription must live in the same worker's memory);
        session-less subscriptions round-robin like any read."""
        state = self._state(domain)
        record = _ClusterSubscription(
            self, domain, f"rsub-{next(self._sub_ids)}", question, sid, queue_frames
        )
        for _ in range(max(2, self.supervisor.procs)):
            if sid is not None:
                handle = self._assign_session(state, sid)
            else:
                handle = self._next_reader(self._live_or_503())
            # Visible to the event hook *before* the worker answers: the
            # initial answer frame can arrive ahead of the subscribe ack.
            self._subs[record.id] = record
            try:
                await self._register_subscription(record, handle)
            except WorkerDied:
                self._subs.pop(record.id, None)
                record._queue = asyncio.Queue()  # drop pre-crash frames
                await self._handoff_index(handle.index)
                continue
            except ApiError:
                self._subs.pop(record.id, None)
                raise
            state.counters["subscriptions_opened"] += 1
            return record
        raise self._degraded_error("no worker survived the request")

    async def _register_subscription(
        self, record: _ClusterSubscription, handle: WorkerHandle
    ) -> None:
        record.owner = handle.index
        frame = await self.supervisor.request(
            handle,
            {
                "op": "subscribe",
                "domain": record.domain,
                "question": record.question,
                "session": record.sid,
                "sub": record.id,
                "queue": record.queue_frames,
            },
        )
        if not frame.get("ok", False):
            raise ApiError(
                422,
                frame.get("error", "subscribe failed"),
                "subscription_failed",
            )
        record.tables = [str(table) for table in frame.get("tables", [])]
        record.queue_frames = int(frame.get("queue_frames", record.queue_frames))

    async def _unsubscribe(self, record: _ClusterSubscription) -> None:
        self._subs.pop(record.id, None)
        if record.closed:
            return
        record.closed = True
        handle = self._owner_handle(record.owner)
        if handle is None:
            return
        try:
            await self.supervisor.request(
                handle,
                {"op": "unsubscribe", "domain": record.domain, "sub": record.id},
            )
        except WorkerDied:
            pass  # the owner died with the subscription; nothing to undo

    def _on_worker_event(self, handle: WorkerHandle, frame: dict[str, Any]) -> None:
        """Supervisor hook: route one unsolicited worker push.  Frames
        from a worker that no longer owns the subscription (it was
        re-registered elsewhere after an eviction) are dropped."""
        record = self._subs.get(frame.get("sub", ""))
        if record is None or record.owner != handle.index:
            return
        inner = frame.get("frame")
        if isinstance(inner, dict):
            record.enqueue(inner)

    async def _handoff_subscriptions(
        self, state: _DomainState, index: int, target: WorkerHandle
    ) -> None:
        """Re-register every subscription worker ``index`` owned on
        ``target`` (the same sibling that adopted its sessions).  The
        fresh registration re-evaluates, so the client sees at most one
        duplicate answer frame across the failover — never a gap.  A
        subscription the target rejects (or that dies with it) is closed
        so its stream ends instead of silently idling forever."""
        for record in list(self._subs.values()):
            if (
                record.domain != state.spec.name
                or record.owner != index
                or record.closed
            ):
                continue
            try:
                await self._register_subscription(record, target)
            except (WorkerDied, ApiError):
                self._subs.pop(record.id, None)
                record.enqueue({"type": "closed", "subscription": record.id})
                continue
            state.counters["subscription_handoffs"] += 1

    # -- failure handling --------------------------------------------------

    async def _on_worker_death(self, handle: WorkerHandle) -> None:
        for state in self._domains.values():
            if handle.index == 0:
                self._abort_txn(state)
        await self._handoff_index(handle.index)

    async def _handoff_index(self, index: int) -> None:
        """Move every session (and loose clarification) owned by worker
        ``index`` to a live sibling by replaying its recorded events.
        Idempotent: only state still pointing at ``index`` moves, so the
        death hook and a concurrent request retry can both call it."""
        async with self._handoff_lock:
            if self.supervisor.handles[index].live:
                return  # it came back before we got here
            targets = [
                h for h in self.supervisor.live_handles() if h.index != index
            ]
            if not targets:
                return  # nobody to adopt; respawn-time adoption covers it
            for state in self._domains.values():
                await self._handoff_domain(state, index, targets[0])
                await self._handoff_subscriptions(state, index, targets[0])

    async def _handoff_domain(
        self, state: _DomainState, index: int, target: WorkerHandle
    ) -> None:
        sids = {
            sid for sid, owner in state.session_owner.items() if owner == index
        }
        loose = {
            cid for cid, owner in state.clar_owner.items() if owner == index
        }
        if not sids and not loose:
            return
        records = _records_for(state.events, sids, loose)
        try:
            await self.supervisor.request(
                target,
                {"op": "adopt", "domain": state.spec.name, "records": records},
            )
        except WorkerDied:
            return  # the target died too; the next death/retry re-runs us
        for sid in sids:
            state.session_owner[sid] = target.index
        for cid, owner in list(state.clar_owner.items()):
            if owner == index:
                state.clar_owner[cid] = target.index
        state.counters["handoffs"] += 1

    async def _on_worker_ready(self, handle: WorkerHandle) -> None:
        """A respawned worker said hello: catch it up before it serves.

        Durable domains already restored the checkpoint + WAL chain in
        the child; in-memory domains replay the router's recorded DML
        history here.  Sessions still owned by this index (possible when
        it was the *only* worker, so nobody could adopt them) are
        re-adopted from the event records.
        """
        for state in self._domains.values():
            if not state.spec.durable and state.dml_history:
                for chunk in _statement_chunks(list(state.dml_history)):
                    await self.supervisor.request(
                        handle,
                        {
                            "op": "apply",
                            "domain": state.spec.name,
                            "statements": chunk,
                        },
                    )
            sids = {
                sid
                for sid, owner in state.session_owner.items()
                if owner == handle.index
            }
            loose = {
                cid
                for cid, owner in state.clar_owner.items()
                if owner == handle.index
            }
            if sids or loose:
                records = _records_for(state.events, sids, loose)
                await self.supervisor.request(
                    handle,
                    {
                        "op": "adopt",
                        "domain": state.spec.name,
                        "records": records,
                    },
                )
            # Subscriptions still pointing at this index never found a
            # sibling (it was the only worker): re-register them on the
            # respawn so their streams resume instead of starving.
            await self._handoff_subscriptions(state, handle.index, handle)

    # -- backend protocol: observability -----------------------------------

    async def stats(self, domain: str | None = None) -> dict[str, Any]:
        await self.supervisor.sweep()
        worker_stats: dict[int, dict[str, Any]] = {}
        for handle in self.supervisor.live_handles():
            try:
                frame = await self.supervisor.request(handle, {"op": "stats"})
            except WorkerDied:
                continue
            if frame.get("ok", False):
                worker_stats[handle.index] = frame
        names = [domain] if domain is not None else list(self._domains)
        for name in names:
            self._state(name)  # 404 on unknown domain
        domains_payload = {
            name: self._domain_stats(name, worker_stats) for name in names
        }
        workers_payload = [
            {
                "index": handle.index,
                "pid": handle.pid,
                "live": handle.live,
                "state": handle.state,
                "restarts": handle.restarts,
                "writer": handle.is_writer,
                "domains": worker_stats.get(handle.index, {}).get("domains", {}),
            }
            for handle in self.supervisor.handles
        ]
        service_view = domains_payload[names[0] if domain else self.default_domain]
        return {
            "service": service_view["service"],
            "cluster": {
                "procs": self.supervisor.procs,
                "all_live": self.supervisor.all_live,
                "workers": workers_payload,
                "domains": domains_payload,
            },
        }

    def _domain_stats(
        self, name: str, worker_stats: dict[int, dict[str, Any]]
    ) -> dict[str, Any]:
        state = self._domains[name]
        merged: dict[str, Any] = {}
        for frame in worker_stats.values():
            for key, value in frame.get("domains", {}).get(name, {}).items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    merged.setdefault(key, value)
                else:
                    merged[key] = merged.get(key, 0) + value
        return {
            "service": merged,
            "router": dict(state.counters),
            "write_count": state.write_count,
            "sessions": len(state.session_owner),
            "session_owners": dict(state.session_owner),
            "clarification_owners": dict(state.clar_owner),
            "subscription_owners": {
                record.id: record.owner
                for record in self._subs.values()
                if record.domain == name and not record.closed
            },
            "durable": state.spec.durable,
        }

    async def healthz(self) -> tuple[int, dict[str, Any], dict[str, str]]:
        # Reap-before-report: a worker that is already a zombie must not
        # show as live for the instant before its socket EOF lands.
        await self.supervisor.sweep()
        workers = [
            {
                "index": handle.index,
                "pid": handle.pid,
                "live": handle.live,
                "restarts": handle.restarts,
            }
            for handle in self.supervisor.handles
        ]
        if self.supervisor.all_live:
            return 200, {"status": "ok", "workers": workers}, {}
        retry = str(max(1, math.ceil(self.supervisor.respawn_delay_s or 1)))
        return (
            503,
            {"status": "degraded", "workers": workers},
            {"Retry-After": retry},
        )
