"""The supervisor: forks, watches, and respawns the worker pool.

Fork-after-load is the whole point: the parent builds every domain's
language stack and restores durable state *once*, then ``os.fork()``
gives each worker the loaded corpus for free — copy-on-write pages, no
serialization, no per-worker load time.  The initial pool is forked
**before** the asyncio event loop exists (a loop must never cross a
fork); respawns fork from inside the running loop, which is safe only
because the child's first acts are to close every foreign descriptor
and enter a plain blocking frame loop (see
:mod:`repro.cluster.worker`) — it never touches the inherited loop.

Each worker is reached over its half of a ``socket.socketpair()``.  The
parent side is wrapped in asyncio streams; a per-worker pump task reads
response frames and resolves the matching in-flight future, so any
number of requests can be outstanding against one worker.  EOF on the
pump *is* the death signal — faster and more reliable than polling —
with a ``waitpid`` sweep to reap the zombie and a delayed re-fork to
bring the pool back to strength.  Routing policy (who owns which
session, where DML goes, what happens to orphaned state) lives one
level up, in :mod:`repro.cluster.router`; the supervisor only promises
"N workers, numbered, worker 0 may attach storage, dead ones come
back".
"""

from __future__ import annotations

import asyncio
import os
import socket
from typing import Any, Awaitable, Callable

from repro.cluster.ipc import read_frame, write_frame
from repro.cluster.registry import DomainSpec
from repro.cluster.worker import worker_main
from repro.service import NliService

__all__ = ["ClusterSupervisor", "WorkerDied", "WorkerHandle"]


class WorkerDied(Exception):
    """The worker holding this request died before answering."""

    def __init__(self, index: int) -> None:
        super().__init__(f"worker {index} died")
        self.index = index


class WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.pid: int | None = None
        self.sock: socket.socket | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.state = "starting"  # starting -> live -> dead -> starting ...
        self.restarts = 0
        self.respawning = False
        self.pending: dict[int, asyncio.Future] = {}
        self.pump_task: asyncio.Task | None = None

    @property
    def live(self) -> bool:
        return self.state == "live"

    @property
    def is_writer(self) -> bool:
        return self.index == 0

    def fail_pending(self) -> None:
        pending, self.pending = self.pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(WorkerDied(self.index))


class ClusterSupervisor:
    """Owns the pool: fork, connect, pump, reap, respawn, shut down."""

    def __init__(
        self,
        services: dict[str, NliService],
        specs: dict[str, DomainSpec],
        procs: int,
        *,
        threads: int = 8,
        checkpoint_every: int = 512,
        wal_fsync: bool = True,
        respawn_delay_s: float = 0.0,
        request_timeout_s: float | None = 60.0,
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if not hasattr(os, "fork"):  # pragma: no cover - non-unix
            raise RuntimeError("cluster mode needs os.fork()")
        self.services = services
        self.specs = specs
        self.procs = procs
        self.threads = threads
        self.checkpoint_every = checkpoint_every
        self.wal_fsync = wal_fsync
        self.respawn_delay_s = respawn_delay_s
        #: A worker that takes longer than this to answer one request is
        #: considered wedged and evicted (SIGKILL -> respawn); ``None``
        #: disables the watchdog.
        self.request_timeout_s = request_timeout_s
        self.handles = [WorkerHandle(index) for index in range(procs)]
        #: pids we forked and have not yet reaped.  Signalling anything
        #: outside this set is forbidden: a reaped pid may already have
        #: been recycled by the OS for an unrelated process.
        self._children: set[int] = set()
        #: Router hooks.  ``on_worker_ready(handle)`` runs after a
        #: respawned worker says hello and before it is marked live (the
        #: router replays missed in-memory DML there); ``on_worker_death``
        #: runs as soon as EOF lands (the router hands sessions off);
        #: ``on_worker_event`` receives unsolicited ``op: "event"``
        #: frames (subscription pushes — they carry no request id, so
        #: they bypass reply correlation entirely).
        self.on_worker_ready: Callable[[WorkerHandle], Awaitable[None]] | None = None
        self.on_worker_death: Callable[[WorkerHandle], Awaitable[None]] | None = None
        self.on_worker_event: (
            Callable[[WorkerHandle, dict[str, Any]], None] | None
        ) = None
        self._request_counter = 0
        self._reap_task: asyncio.Task | None = None
        self._closing = False

    # -- forking -----------------------------------------------------------

    def fork_initial(self) -> None:
        """Fork the whole pool; call before any event loop starts."""
        for handle in self.handles:
            self._fork(handle, catch_up=False)

    def _fork(self, handle: WorkerHandle, *, catch_up: bool) -> None:
        parent_sock, child_sock = socket.socketpair()
        pid = os.fork()
        if pid == 0:
            parent_sock.close()
            worker_main(  # never returns
                child_sock,
                self.services,
                self.specs,
                index=handle.index,
                writer=handle.is_writer,
                threads=self.threads,
                checkpoint_every=self.checkpoint_every,
                wal_fsync=self.wal_fsync,
                catch_up=catch_up,
            )
        child_sock.close()
        handle.pid = pid
        self._children.add(pid)
        handle.sock = parent_sock
        handle.state = "starting"

    # -- asyncio integration -----------------------------------------------

    async def start(self) -> None:
        """Wrap every forked worker in streams and wait until all are live."""
        await asyncio.gather(*(self._connect(handle) for handle in self.handles))
        self._reap_task = asyncio.create_task(self._reap_loop())

    async def _connect(self, handle: WorkerHandle) -> None:
        assert handle.sock is not None
        reader, writer = await asyncio.open_connection(sock=handle.sock)
        handle.reader, handle.writer = reader, writer
        hello = await read_frame(reader)
        if hello is None or hello.get("op") != "hello":
            raise RuntimeError(f"worker {handle.index} failed to start")
        # The pump must run *before* the ready hook: the hook catches the
        # worker up over request(), which needs responses resolved.  The
        # worker stays out of routing (state "starting") until caught up.
        handle.pump_task = asyncio.create_task(self._pump(handle))
        if self.on_worker_ready is not None:
            await self.on_worker_ready(handle)
        if handle.state == "dead":  # died while catching up
            raise WorkerDied(handle.index)
        handle.state = "live"

    async def _pump(self, handle: WorkerHandle) -> None:
        """Resolve response frames until EOF, then run the death path."""
        assert handle.reader is not None
        while True:
            try:
                frame = await read_frame(handle.reader)
            except Exception:  # noqa: BLE001 - treat any stream wreck as death
                frame = None
            if frame is None:
                break
            if frame.get("op") == "event":
                # A worker-initiated push (standing subscription frame),
                # not a reply: hand it to the router synchronously — the
                # hook only enqueues, so it cannot stall the pump.
                if self.on_worker_event is not None:
                    self.on_worker_event(handle, frame)
                continue
            future = handle.pending.pop(frame.get("id"), None)
            if future is not None and not future.done():
                future.set_result(frame)
        await self._worker_died(handle)

    async def _worker_died(self, handle: WorkerHandle) -> None:
        if handle.state == "dead" or self._closing:
            return
        handle.state = "dead"
        # The pid now names an exiting (soon reaped, eventually recycled)
        # process: forget it so no later signal can hit a stranger.
        handle.pid = None
        handle.fail_pending()
        if handle.writer is not None:
            handle.writer.close()
        handle.reader = handle.writer = handle.sock = None
        if self.on_worker_death is not None:
            await self.on_worker_death(handle)
        if not self._closing and not handle.respawning:
            handle.respawning = True
            asyncio.create_task(self._respawn(handle))

    async def _respawn(self, handle: WorkerHandle, attempts: int = 5) -> None:
        try:
            if self.respawn_delay_s > 0:
                await asyncio.sleep(self.respawn_delay_s)
            for attempt in range(attempts):
                if self._closing:
                    return
                handle.restarts += 1
                handle.pending = {}
                try:
                    self._fork(handle, catch_up=True)
                    await self._connect(handle)
                    return
                except (RuntimeError, OSError, WorkerDied):
                    # The replacement died during startup (possibly while
                    # the ready hook was catching it up); back off, refork.
                    await asyncio.sleep(0.2 * (attempt + 1))
            # Give up: the slot stays dead (reads keep flowing on siblings,
            # DML stays paused) rather than fork-bombing the box.
        finally:
            handle.respawning = False

    async def _reap_loop(self) -> None:
        """Collect exited children so the process table stays clean."""
        while True:
            await asyncio.sleep(0.2)
            await self.sweep()

    async def sweep(self) -> None:
        """Synchronously notice already-exited children.

        Death detection is normally EOF-driven, which is fast but
        *asynchronous*: for an instant after a SIGKILL the handle still
        says "live".  The sweep reaps zombies non-blockingly and runs
        the death path for any handle whose process is gone before its
        pump saw EOF — ``/healthz`` calls it first, so a 200 never
        reports a zombie as a live worker.  Idempotent against the pump:
        whoever gets there second sees state "dead" and backs off.
        """
        reaped: set[int] = set()
        try:
            while True:
                pid, _ = os.waitpid(-1, os.WNOHANG)
                if pid == 0:
                    break
                self._children.discard(pid)
                reaped.add(pid)
        except ChildProcessError:
            pass
        for handle in self.handles:
            if handle.live and handle.pid in reaped:
                await self._worker_died(handle)

    def evict(self, handle: WorkerHandle) -> None:
        """Forcibly retire a worker that is wedged (no answer within the
        request timeout) or diverged (failed to apply a replicated
        statement the writer committed).  SIGKILL makes its socket EOF,
        which runs the ordinary death path: pending requests fail fast,
        sessions hand off, and the respawn catches the replacement up
        from the checkpoint + WAL chain / DML history before it rejoins
        routing."""
        if handle.state == "dead" or handle.pid is None:
            return
        if handle.pid not in self._children:
            return  # already reaped: the pid may belong to a stranger
        try:
            os.kill(handle.pid, 9)
        except OSError:
            pass

    # -- requests ----------------------------------------------------------

    def live_handles(self) -> list[WorkerHandle]:
        return [handle for handle in self.handles if handle.live]

    @property
    def all_live(self) -> bool:
        return all(handle.live for handle in self.handles)

    async def request(
        self, handle: WorkerHandle, payload: dict[str, Any]
    ) -> dict[str, Any]:
        """Send one op frame to ``handle`` and await its response.

        Raises :class:`WorkerDied` if the worker is dead or dies before
        answering — the router decides whether the op is safe to retry
        elsewhere.  Workers in state "starting" are reachable: the ready
        hook uses this to catch a respawn up before it joins routing.
        A worker that holds the request past ``request_timeout_s`` is
        evicted (it wedged without crashing: a stuck thread pool cannot
        be told apart from a dead process by its caller) and the request
        fails with :class:`WorkerDied` — the respawn machinery takes it
        from there.
        """
        if handle.state == "dead" or handle.writer is None:
            raise WorkerDied(handle.index)
        self._request_counter += 1
        request_id = self._request_counter
        payload = dict(payload, id=request_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        handle.pending[request_id] = future
        try:
            write_frame(handle.writer, payload)
            await handle.writer.drain()
        except (ConnectionError, OSError) as exc:
            handle.pending.pop(request_id, None)
            raise WorkerDied(handle.index) from exc
        except BaseException:
            # e.g. FrameError on an oversized payload: the worker is
            # fine, the frame never went out — don't leak the future.
            handle.pending.pop(request_id, None)
            raise
        if not self.request_timeout_s:
            return await future
        try:
            return await asyncio.wait_for(future, self.request_timeout_s)
        except asyncio.TimeoutError:
            handle.pending.pop(request_id, None)
            if not self._closing:
                self.evict(handle)
            raise WorkerDied(handle.index) from None

    # -- shutdown ----------------------------------------------------------

    async def aclose(self) -> None:
        """Graceful stop: every worker compacts + checkpoints, then exits."""
        self._closing = True
        if self._reap_task is not None:
            self._reap_task.cancel()
        for handle in self.live_handles():
            try:
                await asyncio.wait_for(
                    self.request(handle, {"op": "shutdown"}), timeout=15
                )
            except (WorkerDied, asyncio.TimeoutError):
                pass
            handle.state = "dead"
            if handle.pump_task is not None:
                handle.pump_task.cancel()
            if handle.writer is not None:
                handle.writer.close()
        # Anything still running already answered (or never will):
        # forcible kill is safe, workers reply only after cleanup.  Only
        # pids still in the un-reaped children set are signalled — a pid
        # the reap loop already collected (a worker that died earlier, or
        # a respawn that gave up) may have been recycled by the OS.
        for pid in list(self._children):
            try:
                os.kill(pid, 9)
            except OSError:
                pass
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
            self._children.discard(pid)
