"""The worker child: one forked process serving NLI requests over IPC.

A worker is forked from the supervisor *after* the corpus and language
layers are loaded, so the expensive immutable state — grammars, lexicon,
value indexes, the restored database — is shared copy-on-write with
every sibling.  The child never touches the parent's sockets, event
loop or HTTP clients: it closes every inherited descriptor except its
own IPC socket, ignores the terminal's signals (the supervisor
coordinates shutdown), and leaves only via ``os._exit`` so a crash in
one worker can never run the parent's cleanup handlers.

Request handling is a blocking frame loop feeding a thread pool
(``--workers`` threads, same knob as single-process serving): frames
are tagged with an ``id`` the response echoes, so many requests stream
through one socket concurrently and complete out of order.

Op vocabulary (all frames are JSON objects; errors come back as
``{"id", "ok": false, "error", "code", ...}``):

==========  =============================================================
op          behaviour
==========  =============================================================
ask         one question -> ``Response.to_dict()`` envelope
ask_many    a batch -> list of envelopes
resolve     pick a clarification choice (``live`` rides on errors so the
            router can tell a bad index from a vanished id)
execute     raw SQL -> ``{"columns", "rows"}`` (the writer's DML path)
apply       replicated DML statements from the writer, applied in order
adopt       another worker's session records -> alias map (handoff)
subscribe   register a standing subscription under a router-chosen id;
            its frames come back as unsolicited ``op: "event"`` frames
unsubscribe close a standing subscription and stop its pump thread
stats       per-domain service counters + pid
ping        liveness probe
shutdown    compact + close every service, then exit 0
==========  =============================================================

``subscribe`` is the one op that makes a worker *push*: a per-
subscription pump thread drains the service-level frame queue and sends
``{"op": "event", "sub": <id>, "frame": {...}}`` frames (no ``id`` key,
so the supervisor's reply correlation ignores them and routes them to
its event hook instead).  Sends are serialized on the worker's send
lock, so events interleave safely with in-flight replies.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, NoReturn

from repro.cluster.ipc import FrameError, recv_frame, send_frame
from repro.cluster.registry import DomainSpec
from repro.errors import ClarificationError, EngineError, ReproError
from repro.service import NliService
from repro.service.subscriptions import Subscription, SubscriptionFailed
from repro.storage import StorageManager, restore_database

__all__ = ["worker_main"]


def _close_foreign_fds(keep: set[int]) -> None:
    """Close every inherited descriptor except ``keep`` + stdio.

    The child inherits whatever the parent had open at fork time — the
    HTTP listening socket, sibling IPC sockets, client connections.
    Holding any of them would keep dead connections half-alive (a
    crashed sibling's socket never reads EOF) and let a worker bind the
    service port past the supervisor's death.
    """
    keep = keep | {0, 1, 2}
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except OSError:  # pragma: no cover - non-procfs platforms
        fds = list(range(3, 4096))
    for fd in fds:
        if fd not in keep:
            try:
                os.close(fd)
            except OSError:
                pass


class _Worker:
    def __init__(
        self,
        sock: socket.socket,
        services: dict[str, NliService],
        specs: dict[str, DomainSpec],
        *,
        index: int,
        writer: bool,
        threads: int,
        checkpoint_every: int,
        wal_fsync: bool,
    ) -> None:
        self.sock = sock
        self.services = services
        self.specs = specs
        self.index = index
        self.writer = writer
        self.threads = max(1, threads)
        self.checkpoint_every = checkpoint_every
        self.wal_fsync = wal_fsync
        self._send_lock = threading.Lock()
        #: Router subscription id -> (service subscription, pump thread).
        self._subs: dict[str, Subscription] = {}
        self._subs_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def activate(self, *, catch_up: bool) -> None:
        """Bring the inherited services to serving state.

        A *respawned* worker forked from the parent's boot-time image,
        which never sees post-fork commits — durable domains catch up by
        restoring the writer's checkpoint + WAL chain read-only
        (``catch_up=True``; the router pauses DML while we do, so the
        chain cannot move underfoot).  The writer then attaches a fresh
        storage manager whose ``recover(replay=False)`` collapses the
        chain into a new segment for its own commits to land in.
        """
        for name, service in self.services.items():
            spec = self.specs[name]
            if not spec.durable:
                continue
            if catch_up:
                report = restore_database(service.nli.engine, spec.data_dir)
                if report.recovered:
                    service.refresh(full=True)
            if self.writer:
                storage = StorageManager(
                    service.nli.engine,
                    spec.data_dir,
                    checkpoint_every=self.checkpoint_every,
                    fsync=self.wal_fsync,
                )
                storage.recover(replay=False)
                service.attach_storage(storage)

    def run(self) -> int:
        executor = ThreadPoolExecutor(
            max_workers=self.threads, thread_name_prefix=f"worker-{self.index}"
        )
        self._reply(
            {"op": "hello", "worker": self.index, "pid": os.getpid(), "ok": True}
        )
        try:
            while True:
                try:
                    request = recv_frame(self.sock)
                except (FrameError, OSError):
                    return 1
                if request is None:
                    # Supervisor hung up (parent died): nothing to serve.
                    return 0
                if request.get("op") == "shutdown":
                    executor.shutdown(wait=True)
                    self._close_services()
                    self._reply({"id": request.get("id"), "ok": True})
                    return 0
                executor.submit(self._serve, request)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _close_services(self) -> None:
        for service in self.services.values():
            service.compact_log()
            service.close()

    # -- request handling --------------------------------------------------

    def _reply(self, payload: dict[str, Any]) -> None:
        with self._send_lock:
            try:
                send_frame(self.sock, payload)
            except OSError:  # supervisor died mid-reply; exit via loop EOF
                pass

    def _serve(self, request: dict[str, Any]) -> None:
        out: dict[str, Any] = {"id": request.get("id")}
        try:
            out.update(self._dispatch(request))
            out.setdefault("ok", True)
        except ClarificationError as exc:
            out.update(ok=False, error=str(exc), code="clarification")
            service = self._service_or_none(request)
            clar_id = request.get("clarification_id")
            out["live"] = bool(
                service is not None
                and isinstance(clar_id, str)
                and service.has_clarification(clar_id)
            )
        except EngineError as exc:
            out.update(ok=False, error=str(exc), code="engine_error")
        except ReproError as exc:
            out.update(ok=False, error=str(exc), code=type(exc).__name__)
        except Exception as exc:  # noqa: BLE001 - the frame must be answered
            out.update(ok=False, error=str(exc), code="internal_error")
        self._reply(out)

    def _service(self, request: dict[str, Any]) -> NliService:
        service = self.services.get(request.get("domain", ""))
        if service is None:
            raise ReproError(f"worker hosts no domain {request.get('domain')!r}")
        return service

    def _service_or_none(self, request: dict[str, Any]) -> NliService | None:
        return self.services.get(request.get("domain", ""))

    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if op == "ask":
            service = self._service(request)
            sid = request.get("session")
            if sid is not None:
                service.ensure_session(sid)
            response = service.ask(
                request["question"],
                session=sid,
                clarify=bool(request.get("clarify", False)),
            )
            return {"envelope": response.to_dict()}
        if op == "ask_many":
            service = self._service(request)
            sid = request.get("session")
            if sid is not None:
                service.ensure_session(sid)
            responses = service.ask_many(
                request["questions"],
                session=sid,
                clarify=bool(request.get("clarify", False)),
            )
            return {"envelopes": [response.to_dict() for response in responses]}
        if op == "resolve":
            service = self._service(request)
            response = service.resolve(
                request["clarification_id"], request["choice"]
            )
            return {"envelope": response.to_dict()}
        if op == "execute":
            result = self._service(request).execute(request["sql"])
            return {
                "columns": list(result.columns),
                "rows": [list(row) for row in result.rows],
            }
        if op == "apply":
            service = self._service(request)
            applied = 0
            for sql in request["statements"]:
                service.execute(sql)
                applied += 1
            return {"applied": applied}
        if op == "adopt":
            aliases = self._service(request).adopt_records(request["records"])
            return {"aliases": aliases}
        if op == "subscribe":
            return self._subscribe(request)
        if op == "unsubscribe":
            sub_id = request.get("sub", "")
            with self._subs_lock:
                subscription = self._subs.pop(sub_id, None)
            if subscription is not None:
                # unsubscribe() closes the queue; the pump thread drains
                # the "closed" sentinel and exits.
                self._service(request).unsubscribe(subscription.id)
            return {"removed": subscription is not None}
        if op == "stats":
            return {
                "pid": os.getpid(),
                "domains": {
                    name: _jsonable_stats(service.stats)
                    for name, service in self.services.items()
                },
            }
        if op == "ping":
            return {"pid": os.getpid()}
        raise ReproError(f"unknown cluster op {op!r}")

    # -- standing subscriptions --------------------------------------------

    def _subscribe(self, request: dict[str, Any]) -> dict[str, Any]:
        """Register a subscription under the router's id and start its
        pump thread (frames flow back as unsolicited events)."""
        service = self._service(request)
        sub_id = request["sub"]
        sid = request.get("session")
        if sid is not None:
            service.ensure_session(sid)
        try:
            subscription = service.subscribe(
                request["question"],
                sid,
                queue_frames=int(request.get("queue", 64)),
            )
        except SubscriptionFailed as exc:
            raise ReproError(str(exc)) from None
        with self._subs_lock:
            self._subs[sub_id] = subscription
        pump = threading.Thread(
            target=self._pump_subscription,
            args=(sub_id, subscription),
            name=f"sub-pump-{sub_id}",
            daemon=True,
        )
        pump.start()
        return {
            "sub": sub_id,
            "tables": sorted(subscription.tables),
            "queue_frames": subscription.queue_frames,
        }

    def _pump_subscription(self, sub_id: str, subscription: Subscription) -> None:
        """Drain one subscription's queue into unsolicited event frames."""
        while True:
            frame = subscription.next_frame(timeout=1.0)
            if frame is None:
                continue  # heartbeats are the router's job, not ours
            self._reply({"op": "event", "sub": sub_id, "frame": frame})
            if frame.get("type") == "closed":
                with self._subs_lock:
                    self._subs.pop(sub_id, None)
                return


def _jsonable_stats(stats: dict[str, Any]) -> dict[str, Any]:
    """Service stats with non-JSON values (paths, tuples) stringified."""
    out: dict[str, Any] = {}
    for key, value in stats.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


def worker_main(
    sock: socket.socket,
    services: dict[str, NliService],
    specs: dict[str, DomainSpec],
    *,
    index: int,
    writer: bool,
    threads: int,
    checkpoint_every: int,
    wal_fsync: bool = True,
    catch_up: bool = False,
) -> NoReturn:
    """Child-process entry point; never returns (``os._exit``).

    Runs directly after ``os.fork()`` in the child.  Everything here
    must stay fork-safe: no inherited event loop, no inherited threads
    (they do not survive the fork), no foreign file descriptors.
    """
    exit_code = 1
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        _close_foreign_fds({sock.fileno()})
        worker = _Worker(
            sock,
            services,
            specs,
            index=index,
            writer=writer,
            threads=threads,
            checkpoint_every=checkpoint_every,
            wal_fsync=wal_fsync,
        )
        worker.activate(catch_up=catch_up)
        exit_code = worker.run()
    except BaseException:  # noqa: BLE001 - nothing above us to handle it
        exit_code = 1
    finally:
        # Never unwind into the parent's stack: no atexit, no finally
        # blocks from before the fork, no flushing of shared handles.
        os._exit(exit_code)
