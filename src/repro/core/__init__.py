"""The core NLI pipeline: tagger, interpreter, SQL generation, dialogue."""

from repro.core.answer import Answer
from repro.core.config import NliConfig
from repro.core.dialogue import Session, merge_fragment
from repro.core.interpret import Interpretation, Interpreter
from repro.core.paraphrase import paraphrase
from repro.core.pipeline import NaturalLanguageInterface
from repro.core.sqlgen import SqlGenerator
from repro.core.tagger import QuestionTagger

__all__ = [
    "Answer",
    "Interpretation",
    "Interpreter",
    "NaturalLanguageInterface",
    "NliConfig",
    "QuestionTagger",
    "Session",
    "SqlGenerator",
    "merge_fragment",
    "paraphrase",
]
