"""The Answer object returned by the interface."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interpret import Interpretation
from repro.logical.forms import LogicalQuery
from repro.sqlengine.result import ResultSet


@dataclass
class Answer:
    """Everything the system produced for one question.

    ``alternatives`` lists other surviving interpretations (paraphrase +
    SQL), so a caller can build a clarification menu.

    ``interpretation`` is ``None`` only for *wire-form* answers — ones
    rebuilt from JSON by ``Response.from_dict`` (the in-process object
    graph does not serialize) or produced by grammar-less baselines.
    """

    question: str
    normalized_words: list[str]
    corrections: list[tuple[str, str]]  # (typed, corrected)
    interpretation: Interpretation | None
    sql: str
    result: ResultSet
    paraphrase: str
    alternatives: list[tuple[str, str]] = field(default_factory=list)
    was_fragment: bool = False

    @property
    def query(self) -> LogicalQuery | None:
        return None if self.interpretation is None else self.interpretation.query

    @property
    def is_ambiguous(self) -> bool:
        return bool(self.alternatives)

    def render(self, max_rows: int = 20) -> str:
        """Full console rendering: paraphrase + table."""
        lines = [self.paraphrase]
        if self.corrections:
            fixes = ", ".join(f"{a!r} -> {b!r}" for a, b in self.corrections)
            lines.append(f"(spelling: {fixes})")
        lines.append(self.result.pretty(max_rows=max_rows))
        return "\n".join(lines)
