"""Pipeline configuration (all the ablation knobs in one place)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NliConfig:
    """Knobs for the NL pipeline.

    Every field maps to an ablation documented in DESIGN.md:

    * ``spelling_correction`` — A1 (figure F3)
    * ``synonym_fraction`` — A2 (figure F2)
    * ``use_value_index`` — A3
    * ``join_inference`` — A4 ("steiner" or "pairwise")
    """

    spelling_correction: bool = True
    synonym_fraction: float = 1.0
    use_value_index: bool = True
    join_inference: str = "steiner"  # steiner | pairwise
    max_parses: int = 24
    max_interpretations: int = 8
    max_values_per_column: int | None = None
    #: When more than one interpretation remains and the best two scores are
    #: within this margin, the interface reports ambiguity instead of
    #: silently picking one.
    clarification_margin: float = 0.0
    #: Maximum rows echoed in Answer.paraphrase result summaries.
    answer_rows: int = 25
