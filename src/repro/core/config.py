"""Pipeline configuration (all the ablation knobs in one place)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NliConfig:
    """Knobs for the NL pipeline.

    Every field maps to an ablation documented in DESIGN.md:

    * ``spelling_correction`` — A1 (figure F3)
    * ``synonym_fraction`` — A2 (figure F2)
    * ``use_value_index`` — A3
    * ``join_inference`` — A4 ("steiner" or "pairwise")
    """

    spelling_correction: bool = True
    synonym_fraction: float = 1.0
    use_value_index: bool = True
    join_inference: str = "steiner"  # steiner | pairwise
    max_parses: int = 24
    max_interpretations: int = 8
    max_values_per_column: int | None = None
    #: When more than one interpretation remains and the best two scores are
    #: within this margin, the interface reports ambiguity instead of
    #: silently picking one.
    clarification_margin: float = 0.0
    #: Maximum rows echoed in Answer.paraphrase result summaries.
    answer_rows: int = 25

    # -- cache sizing / refresh knobs ---------------------------------------
    #: Capacity of the prepared-question LRU (normalize/parse results per
    #: question string).  Sized for an interactive session's working set;
    #: raise it for batch evaluation over large question corpora.
    prepared_cache_size: int = 256
    #: Time-to-live (seconds) for prepared-question entries; ``None`` (the
    #: default) keeps entries until LRU pressure evicts them.  A service
    #: with a long-tail question stream sets this so one-off questions age
    #: out instead of squatting in the LRU; expirations are counted in
    #: ``nli.stats["prepared_ttl_evictions"]``.
    prepared_cache_ttl_s: float | None = None
    #: Capacity of the engine's statement-plan cache (AST + optimized plan
    #: + materialized result per statement text).  Entries are stamped with
    #: per-table versions, so a write to one table leaves entries for other
    #: tables valid — the cache only needs to hold the distinct statement
    #: texts of the workload.
    plan_cache_size: int = 256
    #: Per-entry row bound for the plan cache's materialized-result layer;
    #: larger results are executed but not cached, so a handful of
    #: ``SELECT *`` statements cannot pin copies of the database in memory.
    max_cached_result_rows: int = 10_000
    #: When this many row-level deltas pile up before the next question, a
    #: full language-layer rebuild is cheaper than replaying them one by
    #: one (bulk loads); below it, the value index updates incrementally.
    max_pending_deltas: int = 10_000
