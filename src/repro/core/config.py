"""Pipeline configuration (all the ablation knobs in one place)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NliConfig:
    """Knobs for the NL pipeline.

    Every field maps to an ablation documented in DESIGN.md:

    * ``spelling_correction`` — A1 (figure F3)
    * ``synonym_fraction`` — A2 (figure F2)
    * ``use_value_index`` — A3
    * ``join_inference`` — A4 ("steiner" or "pairwise")
    """

    spelling_correction: bool = True
    synonym_fraction: float = 1.0
    use_value_index: bool = True
    join_inference: str = "steiner"  # steiner | pairwise
    max_parses: int = 24
    max_interpretations: int = 8
    max_values_per_column: int | None = None
    #: When more than one interpretation remains and the best two scores are
    #: within this margin, the interface reports ambiguity instead of
    #: silently picking one.
    clarification_margin: float = 0.0
    #: Maximum rows echoed in Answer.paraphrase result summaries.
    answer_rows: int = 25

    # -- cache sizing / refresh knobs ---------------------------------------
    #: Capacity of the prepared-question LRU (normalize/parse results per
    #: question string).  Sized for an interactive session's working set;
    #: raise it for batch evaluation over large question corpora.
    prepared_cache_size: int = 256
    #: Time-to-live (seconds) for prepared-question entries; ``None`` (the
    #: default) keeps entries until LRU pressure evicts them.  A service
    #: with a long-tail question stream sets this so one-off questions age
    #: out instead of squatting in the LRU; expirations are counted in
    #: ``nli.stats["prepared_ttl_evictions"]``.
    prepared_cache_ttl_s: float | None = None
    #: Capacity of the engine's statement-plan cache (AST + optimized plan
    #: + materialized result per statement text).  Entries are stamped with
    #: per-table versions, so a write to one table leaves entries for other
    #: tables valid — the cache only needs to hold the distinct statement
    #: texts of the workload.
    plan_cache_size: int = 256
    #: Per-entry row bound for the plan cache's materialized-result layer;
    #: larger results are executed but not cached, so a handful of
    #: ``SELECT *`` statements cannot pin copies of the database in memory.
    max_cached_result_rows: int = 10_000
    #: Columnar batch execution for the hot SELECT path: covered plan
    #: nodes run compiled batch kernels (selection vectors + tight
    #: per-column loops) instead of the per-row interpreter; uncovered
    #: constructs fall back per node.  Set False to force the row path —
    #: the comparison baseline for ``benchmarks/bench_f12_columnar.py``
    #: and the differential tests.
    use_columnar: bool = True
    #: When this many row-level deltas pile up before the next question, a
    #: full language-layer rebuild is cheaper than replaying them one by
    #: one (bulk loads); below it, the value index updates incrementally.
    max_pending_deltas: int = 10_000

    # -- service / server knobs ---------------------------------------------
    #: MVCC snapshot reads (the default).  Every ``NliService`` question
    #: pins an immutable database snapshot + language-layer bundle and
    #: runs lock-free against them, so readers never queue behind a bulk
    #: DML writer and never observe a torn statement; the service's RW
    #: lock shrinks to guarding the write/refresh commit point, where the
    #: writer itself absorbs its deltas before releasing.  Set False to
    #: restore the PR-3 behaviour (readers hold the RW read lock for the
    #: whole question; writers exclude them) — kept as the comparison
    #: baseline for ``benchmarks/bench_f8_mvcc.py``.
    mvcc_reads: bool = True
    #: Sustained questions-per-second allowed per rate-limit key (a session
    #: id, or whatever client key the HTTP layer passes).  ``None`` (the
    #: default) disables rate limiting entirely; the token bucket refills
    #: at this rate up to ``rate_limit_burst`` tokens.  A limited request
    #: costs nothing and comes back as a structured ``rate_limited``
    #: Diagnostic (HTTP 429 at the server), never an exception.
    rate_limit_qps: float | None = None
    #: Bucket capacity for the per-key token bucket: how many questions a
    #: key may burst through before the sustained ``rate_limit_qps`` rate
    #: applies.
    rate_limit_burst: int = 8
    #: Worker threads behind the async face (``ask_async`` and friends).
    #: This bounds how many questions make progress concurrently under the
    #: service's read lock; HTTP requests beyond it queue in the executor.
    service_workers: int = 8
    #: Bound on id-managed sessions held by the service.  Session ids are
    #: client-chosen over HTTP, so without a cap any client could grow
    #: server memory (and the durability log) one fresh id at a time;
    #: beyond the cap the least-recently-used session is closed.
    max_sessions: int = 1024

    # -- durable storage knobs ----------------------------------------------
    #: Data directory for the durable storage layer.  When set, the service
    #: attaches a :class:`~repro.storage.StorageManager`: startup recovery
    #: restores the newest checkpoint and replays the WAL tail, and every
    #: committed DML/DDL statement is fsync'd to the write-ahead log before
    #: the call returns.  ``None`` (the default) keeps the database purely
    #: in memory, exactly as before.
    data_dir: str | None = None
    #: Committed WAL records between snapshot checkpoints.  Smaller values
    #: bound recovery replay tighter at the cost of more frequent
    #: serialization pauses on the writer path; 0 disables the cadence
    #: (checkpoints then happen only at recovery and graceful shutdown).
    checkpoint_every: int = 512
    #: fsync every WAL append (the durability guarantee).  Disable only for
    #: tests/benchmarks that simulate storage without paying for the disk.
    wal_fsync: bool = True
