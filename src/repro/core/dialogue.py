"""Dialogue context: elliptical follow-ups and pronoun references.

LADDER accepted fragments like "what about the atlantic fleet?" after a
full question, re-running the previous query with the new constraint
substituted.  The merge rules here implement that behaviour:

* a fragment **condition on the same column** replaces the old condition
  on that column ("the pacific fleet" -> "the atlantic fleet");
* a condition on a **new column** is added ("built after 1970?");
* a fragment **entity** switches what is being asked about, keeping the
  surviving constraints ("what about the carriers?");
* a fragment **superlative** replaces the previous superlative;
* pronouns ("them", "those", "it") simply re-use the previous result's
  constraints, so "how many of them ..." works.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import DialogueError
from repro.grammar.sketch import Sketch
from repro.logical.forms import (
    BetweenCondition,
    CompareCondition,
    CompareToAggregate,
    CompareToInstance,
    Condition,
    LogicalQuery,
    MembershipCondition,
    NullCondition,
    ValueCondition,
)

PRONOUNS = frozenset({"them", "those", "these", "they", "it", "ones", "one"})


def condition_column(condition: Condition) -> tuple[str, str]:
    """The (table, column) a condition constrains — the substitution key."""
    if isinstance(condition, ValueCondition):
        return (condition.value.table, condition.value.column)
    if isinstance(condition, MembershipCondition):
        first = condition.values[0]
        return (first.table, first.column)
    if isinstance(
        condition,
        (CompareCondition, BetweenCondition, NullCondition,
         CompareToAggregate, CompareToInstance),
    ):
        return (condition.attr.table, condition.attr.column)
    raise DialogueError(f"unknown condition type {type(condition).__name__}")


def merge_fragment(previous: LogicalQuery, fragment: Sketch) -> Sketch:
    """Merge an elliptical fragment sketch with the previous logical query.

    Returns a *full* sketch (fragment=False) ready for interpretation.
    """
    entity = fragment.entity or previous.target
    penalty = fragment.penalty
    if fragment.entity is not None and fragment.entity.table != previous.target.table:
        # Switching what is being asked about is possible but dispreferred;
        # a fragment is usually a constraint on the same question.
        penalty += 3.5

    conditions: list[Condition] = list(previous.conditions)
    for new_condition in fragment.conditions:
        key = condition_column(new_condition)
        survivors = [c for c in conditions if condition_column(c) != key]
        if len(survivors) < len(conditions):
            # Replacing an existing constraint on the same column is the
            # classic "what about X instead" move — reward that reading.
            penalty -= 2.0
        conditions = survivors
        conditions.append(new_condition)

    superlative = fragment.superlative or previous.superlative
    if fragment.superlative is not None:
        superlative = fragment.superlative

    agg_function = fragment.agg_function
    agg_attr = fragment.agg_attr
    qtype = fragment.qtype if fragment.agg_function or fragment.projections else "inherit"
    if qtype == "inherit":
        if previous.aggregate is not None:
            agg_function = previous.aggregate.function
            agg_attr = previous.aggregate.attr
            qtype = "count" if agg_function == "count" else "agg"
        else:
            qtype = "attr" if previous.projections else "list"

    projections = fragment.projections or previous.projections

    # Switching entity invalidates projections/superlatives bound to the
    # old entity's table when they no longer apply.
    if fragment.entity is not None and fragment.entity.table != previous.target.table:
        projections = tuple(
            p for p in projections if p.table != previous.target.table
        )
        if superlative is not None and superlative.attr.table == previous.target.table:
            superlative = fragment.superlative
        if agg_attr is not None and agg_attr.table == previous.target.table:
            agg_attr = None
            if agg_function not in (None, "count"):
                agg_function = None
                qtype = "list"

    return Sketch(
        qtype=qtype,
        entity=entity,
        projections=projections,
        agg_function=agg_function,
        agg_attr=agg_attr,
        conditions=tuple(conditions),
        superlative=superlative,
        group_by=fragment.group_by or previous.group_by,
        order_by=fragment.order_by or previous.order_by,
        limit=fragment.limit if fragment.limit is not None else previous.limit,
        fragment=False,
        penalty=penalty,
    )


@dataclass
class Session:
    """Multi-turn dialogue state.

    A session is single-conversation state: share it across turns, not
    across threads (the service facade keeps one per conversation id).
    """

    history: list[LogicalQuery] = field(default_factory=list)
    transcript: list[tuple[str, str]] = field(default_factory=list)  # (q, paraphrase)
    #: Set when the last turn came back AMBIGUOUS: the clarification id a
    #: frontend should pass to ``resolve()`` if the user picks a choice
    #: (the CLI turns a bare digit reply into exactly that call).  Cleared
    #: by the resolution, by ``remember`` (the user moved on) and by
    #: ``reset``.
    pending_clarification: str | None = None
    #: The question text behind :attr:`pending_clarification`, kept so a
    #: durable service can re-park the clarification after a restart by
    #: re-asking it (see ``repro.service.persistence``).
    pending_question: str | None = None
    #: Replay log: one record per state-changing turn, JSON-serializable.
    #: ``history`` holds live :class:`LogicalQuery` object graphs that do
    #: not serialize; replaying these events through a deterministic
    #: pipeline rebuilds it exactly.  ``choice`` is set when the turn was
    #: answered by resolving a clarification (the picked index).
    events: list[dict] = field(default_factory=list)

    @property
    def last_query(self) -> LogicalQuery | None:
        return self.history[-1] if self.history else None

    def remember(
        self,
        question: str,
        query: LogicalQuery,
        paraphrase: str,
        *,
        clarify: bool = False,
        choice: int | None = None,
    ) -> None:
        self.history.append(query)
        self.transcript.append((question, paraphrase))
        self.events.append(
            {"question": question, "clarify": bool(clarify or choice is not None),
             "choice": choice}
        )
        self.pending_clarification = None
        self.pending_question = None

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (replay ``events`` to rebuild
        ``history``; the object graph itself stays in-process)."""
        return {
            "transcript": [list(pair) for pair in self.transcript],
            "events": [dict(event) for event in self.events],
            "pending_question": self.pending_question,
            "pending_clarification": self.pending_clarification,
        }

    def resolve_fragment(self, fragment: Sketch) -> Sketch:
        """Complete a fragment against the previous turn (or raise)."""
        if self.last_query is None:
            raise DialogueError(
                "that looks like a follow-up, but there is no previous question"
            )
        return merge_fragment(self.last_query, fragment)

    def resolve_pronoun_sketch(self, sketch: Sketch) -> Sketch:
        """Inject the previous constraints when the sketch's entity was
        reached via a pronoun ("how many of them ...")."""
        if self.last_query is None:
            raise DialogueError("pronoun with no antecedent")
        previous = self.last_query
        conditions = list(previous.conditions)
        for condition in sketch.conditions:
            key = condition_column(condition)
            conditions = [c for c in conditions if condition_column(c) != key]
            conditions.append(condition)
        return replace(
            sketch,
            entity=sketch.entity or previous.target,
            conditions=tuple(conditions),
        )

    def reset(self) -> None:
        self.history.clear()
        self.transcript.clear()
        self.events.clear()
        self.pending_clarification = None
        self.pending_question = None
