"""Interpretation: sketches -> ranked logical queries.

The grammar's sketches are already schema-grounded (payloads are refs),
so interpretation validates them, resolves defaults (display columns,
group-by targets), checks join connectivity and scores each candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InterpretationError
from repro.grammar.sketch import Sketch
from repro.lexicon.domain import DomainModel
from repro.logical.forms import (
    Aggregate,
    AttrRef,
    EntityRef,
    LogicalQuery,
    MembershipCondition,
)
from repro.schemagraph.graph import SchemaGraph
from repro.schemagraph.steiner import pairwise_join_paths, steiner_join_tree
from repro.sqlengine.database import Database


@dataclass(frozen=True)
class Interpretation:
    """One resolved reading of the question."""

    query: LogicalQuery
    score: float
    join_hops: int

    def describe(self) -> str:
        return self.query.describe()


def display_attr(
    database: Database, domain: DomainModel | None, table: str
) -> AttrRef:
    """The attribute shown when a user asks for an entity by name."""
    if domain is not None:
        columns = domain.display_columns_for(table)
        if columns:
            return AttrRef(table, columns[0], phrase=columns[0].replace("_", " "))
    schema = database.table(table).schema
    if schema.has_column("name"):
        return AttrRef(table, "name", phrase="name")
    if schema.primary_key:
        return AttrRef(table, schema.primary_key, phrase=schema.primary_key)
    first = schema.columns[0].name
    return AttrRef(table, first, phrase=first)


def display_attrs(
    database: Database, domain: DomainModel | None, table: str
) -> tuple[AttrRef, ...]:
    """All display attributes for list answers."""
    if domain is not None:
        columns = domain.display_columns_for(table)
        if columns:
            return tuple(
                AttrRef(table, column, phrase=column.replace("_", " "))
                for column in columns
            )
    return (display_attr(database, domain, table),)


class Interpreter:
    """Validates and scores sketches against one database."""

    def __init__(
        self,
        database: Database,
        graph: SchemaGraph,
        domain: DomainModel | None = None,
        join_inference: str = "steiner",
    ) -> None:
        self.database = database
        self.graph = graph
        self.domain = domain
        self.join_inference = join_inference

    # -- public ---------------------------------------------------------------

    def interpret(self, sketches: list[Sketch]) -> list[Interpretation]:
        """All valid interpretations, best first.

        Sketches that fail validation are silently dropped; if *all* fail,
        the most informative error is raised.
        """
        interpretations: list[Interpretation] = []
        seen: set[str] = set()
        last_error: InterpretationError | None = None
        for sketch in sketches:
            try:
                interpretation = self._interpret_one(sketch)
            except InterpretationError as exc:
                last_error = exc
                continue
            key = repr(interpretation.query)
            if key not in seen:
                seen.add(key)
                interpretations.append(interpretation)
        if not interpretations:
            raise last_error or InterpretationError("no valid interpretation")
        interpretations.sort(key=lambda i: (-i.score, i.join_hops, repr(i.query)))
        return interpretations

    # -- internals ---------------------------------------------------------------

    def _interpret_one(self, sketch: Sketch) -> Interpretation:
        if sketch.fragment:
            raise InterpretationError(
                "elliptical fragment needs dialogue context"
            )
        query = self.resolve(sketch)
        interpretation = self.score(query)
        if sketch.penalty:
            interpretation = replace(
                interpretation, score=interpretation.score - sketch.penalty
            )
        return interpretation

    def resolve(self, sketch: Sketch, default_entity: EntityRef | None = None) -> LogicalQuery:
        """Turn a sketch into a LogicalQuery (schema-validated)."""
        entity = sketch.entity or default_entity
        if entity is None:
            entity = self._infer_entity(sketch)
        if not self.database.has_table(entity.table):
            raise InterpretationError(f"unknown entity table {entity.table!r}")

        aggregate = None
        if sketch.agg_function:
            if sketch.agg_function != "count" and sketch.agg_attr is None:
                raise InterpretationError(
                    f"aggregate {sketch.agg_function!r} needs an attribute"
                )
            aggregate = Aggregate(sketch.agg_function, sketch.agg_attr)

        group_by = None
        if sketch.group_by is not None:
            group_by = self._resolve_group_target(sketch.group_by)

        self._validate_conditions(sketch)

        projections = tuple(sketch.projections)
        query = LogicalQuery(
            target=entity,
            projections=projections,
            aggregate=aggregate,
            conditions=tuple(sketch.conditions),
            superlative=sketch.superlative,
            group_by=group_by,
            order_by=sketch.order_by,
            limit=sketch.limit,
        )
        # Join connectivity check (raises when tables cannot be connected).
        self.join_tree(query)
        return query

    def _infer_entity(self, sketch: Sketch) -> EntityRef:
        """Pick a target entity for entity-less sketches (attr lookups)."""
        if sketch.projections:
            table = sketch.projections[0].table
            return EntityRef(table, phrase=table)
        if sketch.agg_attr is not None:
            return EntityRef(sketch.agg_attr.table, phrase=sketch.agg_attr.table)
        for condition in sketch.conditions:
            tables = LogicalQuery(
                target=EntityRef("x"), conditions=(condition,)
            ).condition_tables() - {"x"}
            if tables:
                table = sorted(tables)[0]
                return EntityRef(table, phrase=table)
        raise InterpretationError("cannot determine what the question is about")

    def _resolve_group_target(self, target) -> AttrRef:
        if isinstance(target, AttrRef):
            return target
        if isinstance(target, EntityRef):
            return display_attr(self.database, self.domain, target.table)
        raise InterpretationError(f"cannot group by {target!r}")

    def _validate_conditions(self, sketch: Sketch) -> None:
        for condition in sketch.conditions:
            if isinstance(condition, MembershipCondition):
                columns = {(v.table, v.column) for v in condition.values}
                if len(columns) > 1:
                    raise InterpretationError(
                        "values in an or-list must come from one column: "
                        + ", ".join(sorted(f"{t}.{c}" for t, c in columns))
                    )

    # -- joins & scoring ---------------------------------------------------------

    def join_tree(self, query: LogicalQuery):
        terminals = query.condition_tables()
        if self.join_inference == "pairwise":
            return pairwise_join_paths(self.graph, terminals)
        return steiner_join_tree(self.graph, terminals)

    def score(self, query: LogicalQuery) -> Interpretation:
        """Scoring follows the era's heuristics: prefer compact join trees,
        conditions close to the target entity, and typed agreement."""
        edges = self.join_tree(query)
        hops = len(edges)
        score = 10.0
        score -= 1.5 * hops
        score += 1.0 * len(query.conditions)
        # Value conditions on the target's own table are the most direct
        # reading ("kennedy" as a ship name beats "kennedy" as an officer).
        from repro.logical.forms import MembershipCondition, ValueCondition

        for condition in query.conditions:
            tables = LogicalQuery(
                target=query.target, conditions=(condition,)
            ).condition_tables()
            if tables == {query.target.table}:
                score += 0.5
            # Identity columns ("name") are likelier referents than
            # descriptive columns ("headquarters") for a bare value.
            refs = []
            if isinstance(condition, ValueCondition):
                refs = [condition.value]
            elif isinstance(condition, MembershipCondition):
                refs = list(condition.values)
            if refs and all(ref.column == "name" for ref in refs):
                score += 0.3
            # Stem-approximate value matches lose to exact ones.
            score -= 1.0 * sum(1 for ref in refs if ref.approx)
        if query.aggregate is not None:
            score += 0.25
        if query.superlative is not None:
            score += 0.25
            # A superlative grounded in another entity's attribute is a
            # stretch ("largest" meaning population when asking for rivers).
            if query.superlative.attr.table != query.target.table:
                score -= 2.0
        if (
            query.aggregate is not None
            and query.aggregate.attr is not None
            and query.aggregate.attr.table != query.target.table
        ):
            score -= 0.5
        # Numeric comparisons on non-numeric columns are suspicious.
        from repro.logical.forms import CompareCondition
        from repro.sqlengine.types import is_numeric

        for condition in query.conditions:
            if isinstance(condition, CompareCondition) and isinstance(
                condition.operand, (int, float)
            ):
                column = self.database.table(condition.attr.table).schema.column(
                    condition.attr.column
                )
                if not is_numeric(column.sql_type):
                    score -= 3.0
        # "heavier than the kennedy": prefer reading 'kennedy' as an
        # instance of the compared attribute's own table.
        from repro.logical.forms import CompareToInstance

        for condition in query.conditions:
            if isinstance(condition, CompareToInstance):
                if condition.instance.table == condition.attr.table:
                    score += 1.0
        return Interpretation(query, score, hops)
