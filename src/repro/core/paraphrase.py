"""Paraphrase generation: echo the interpretation back in English.

RENDEZVOUS made this famous: before (or along with) answering, restate
the system's reading of the question so the user can verify it.  The
paraphraser is template-based, deterministic and covers every logical
form the grammar can produce.
"""

from __future__ import annotations

from repro.logical.forms import (
    BetweenCondition,
    CompareCondition,
    CompareToAggregate,
    CompareToInstance,
    Condition,
    LogicalQuery,
    MembershipCondition,
    NullCondition,
    ValueCondition,
)
from repro.nlg.realize import join_words, op_phrase, pluralize


def _condition_phrase(condition: Condition) -> str:
    if isinstance(condition, ValueCondition):
        ref = condition.value
        verb = "is not" if condition.negated else "is"
        return f"whose {ref.column.replace('_', ' ')} {verb} '{ref.value}'"
    if isinstance(condition, MembershipCondition):
        column = condition.values[0].column.replace("_", " ")
        names = join_words([f"'{v.value}'" for v in condition.values], "or")
        verb = "is not one of" if condition.negated else "is one of"
        return f"whose {column} {verb} {names}"
    if isinstance(condition, CompareCondition):
        attr = condition.attr.describe()
        phrase = f"whose {attr} is {op_phrase(condition.op)} {condition.operand}"
        return f"not ({phrase[6:]})" if condition.negated else phrase
    if isinstance(condition, BetweenCondition):
        attr = condition.attr.describe()
        middle = "is not between" if condition.negated else "is between"
        return f"whose {attr} {middle} {condition.low} and {condition.high}"
    if isinstance(condition, NullCondition):
        attr = condition.attr.describe()
        state = "is known" if condition.negated else "is not recorded"
        return f"whose {attr} {state}"
    if isinstance(condition, CompareToAggregate):
        attr = condition.attr.describe()
        return (
            f"whose {attr} is {op_phrase(condition.op)} the "
            f"{condition.aggregate} {condition.agg_attr.describe()}"
        )
    if isinstance(condition, CompareToInstance):
        attr = condition.attr.describe()
        return (
            f"whose {attr} is {op_phrase(condition.op)} that of "
            f"'{condition.instance.value}'"
        )
    return str(condition)  # pragma: no cover - defensive


def paraphrase(query: LogicalQuery) -> str:
    """One English sentence describing the interpretation.

    >>> # "I am listing the ships whose fleet is 'Pacific'."
    """
    entity = query.target.phrase or query.target.table
    noun = pluralize(entity)

    if query.aggregate is not None and query.aggregate.function == "count":
        head = f"counting the {noun}"
    elif query.aggregate is not None:
        agg_word = {
            "avg": "average",
            "sum": "total",
            "min": "minimum",
            "max": "maximum",
        }[query.aggregate.function]
        attr = query.aggregate.attr.describe() if query.aggregate.attr else ""
        head = f"finding the {agg_word} {attr} of the {noun}"
    elif query.projections:
        attrs = join_words([p.describe() for p in query.projections])
        head = f"finding the {attrs} of the {noun}"
    else:
        head = f"listing the {noun}"

    clauses = [_condition_phrase(c) for c in query.conditions]
    sentence = f"I am {head}"
    if clauses:
        sentence += " " + join_words(clauses)

    if query.superlative is not None:
        sup = query.superlative
        direction = "highest" if sup.direction == "max" else "lowest"
        which = f"the {sup.k} with the {direction}" if sup.k != 1 else f"the one with the {direction}"
        sentence += f", keeping {which} {sup.attr.describe()}"

    if query.group_by is not None:
        sentence += f", for each {query.group_by.describe()}"

    if query.order_by is not None:
        direction = "descending" if query.order_by.descending else "ascending"
        sentence += f", ordered by {query.order_by.attr.describe()} {direction}"

    if query.limit is not None and query.superlative is None:
        sentence += f", showing at most {query.limit}"

    return sentence + "."
