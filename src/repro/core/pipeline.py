"""The end-to-end natural language interface.

Pipeline per question::

    tokenize -> spell-correct -> tag (lexicon + value index)
             -> Earley parse (semantic grammar) -> interpret + rank
             -> SQL generation -> execute -> paraphrase

Dialogue: pass a :class:`~repro.core.dialogue.Session` to :meth:`ask` and
elliptical follow-ups / pronouns resolve against the previous turn.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.answer import Answer
from repro.core.config import NliConfig
from repro.core.dialogue import PRONOUNS, Session
from repro.core.interpret import Interpretation, Interpreter
from repro.core.paraphrase import paraphrase as make_paraphrase
from repro.core.sqlgen import SqlGenerator
from repro.core.tagger import QuestionTagger
from repro.errors import (
    AmbiguityError,
    DialogueError,
    InterpretationError,
    ParseFailure,
)
from repro.grammar.earley import EarleyParser, TerminalMatch
from repro.grammar.english import build_english_grammar, grammar_literal_words
from repro.grammar.sketch import Sketch
from repro.lexicon.builder import build_lexicon, data_dependent_columns
from repro.lexicon.domain import DomainModel
from repro.logical.forms import EntityRef
from repro.nlp.stopwords import PROTECTED_WORDS
from repro.nlp.tokenizer import Token, tokenize
from repro.schemagraph.graph import SchemaGraph
from repro.sqlengine.database import Database
from repro.sqlengine.executor import Engine
from repro.sqlengine.plancache import LruCache
from repro.sqlengine.table import TableDelta
from repro.valueindex.index import ValueIndex


class _SessionTagger:
    """Wraps the tagger, adding pronoun -> previous-entity matches."""

    def __init__(self, tagger: QuestionTagger, pronoun_entity: EntityRef | None):
        self._tagger = tagger
        self._pronoun_entity = pronoun_entity

    def matches_at(self, position: int):
        matches = list(self._tagger.matches_at(position))
        if self._pronoun_entity is not None and position < len(self._tagger.tokens):
            token = self._tagger.tokens[position]
            if token.text in PRONOUNS:
                matches.append(
                    TerminalMatch(
                        "ENTITY", position, position + 1, self._pronoun_entity, 1.0
                    )
                )
        return matches


class NaturalLanguageInterface:
    """The public NLIDB API.

    >>> from repro.datasets import fleet                     # doctest: +SKIP
    >>> nli = NaturalLanguageInterface(fleet.build_database(),
    ...                                domain=fleet.domain())  # doctest: +SKIP
    >>> nli.ask("how many ships are there").result.scalar()   # doctest: +SKIP
    """

    def __init__(
        self,
        database: Database,
        domain: DomainModel | None = None,
        config: NliConfig | None = None,
    ) -> None:
        self.database = database
        self.domain = domain
        self.config = config or NliConfig()
        self.engine = Engine(
            database,
            plan_cache_size=self.config.plan_cache_size,
            max_cached_result_rows=self.config.max_cached_result_rows,
        )
        self.grammar = build_english_grammar()
        self.parser = EarleyParser(self.grammar)
        self._literal_words = grammar_literal_words(self.grammar)
        self._protected = frozenset(PROTECTED_WORDS | self._literal_words | PRONOUNS)
        #: Prepared-pipeline cache: question string -> normalize/parse
        #: results.  Cleared whenever the language layers change (a full
        #: rebuild or an applied delta), because cached parses may embed
        #: value references resolved against the old index.
        self._prepared: LruCache = LruCache(capacity=self.config.prepared_cache_size)
        #: (table, column) pairs whose live data feeds lexicon entries;
        #: deltas touching them force a lexicon rebuild (still cheap —
        #: O(schema + domain), not O(rows)).
        self._lexicon_data_columns = data_dependent_columns(domain)
        #: Row-level deltas received since the last refresh, drained by
        #: _ensure_fresh on the next question.
        self._pending_deltas: list[TableDelta] = []
        #: Refresh accounting, asserted by tests and benchmarks: the
        #: interleaved-DML story is "delta_refreshes go up, full_rebuilds
        #: do not".
        self.stats = {
            "full_rebuilds": 0,
            "delta_refreshes": 0,
            "deltas_applied": 0,
        }
        self._build_language_layers()
        # Subscribe to row-level deltas (held weakly by the database, so a
        # dropped NLI does not linger as a listener).
        database.add_delta_listener(self._on_delta)

    def _build_language_layers(self) -> None:
        """(Re)build everything derived from the database contents."""
        self.graph = SchemaGraph(self.database)
        self.lexicon = build_lexicon(
            self.database, self.domain, synonym_fraction=self.config.synonym_fraction
        )
        self.value_index = (
            ValueIndex(self.database, self.config.max_values_per_column)
            if self.config.use_value_index
            else None
        )
        self.interpreter = Interpreter(
            self.database, self.graph, self.domain, self.config.join_inference
        )
        self.sqlgen = SqlGenerator(
            self.database, self.graph, self.domain, self.config.join_inference
        )
        self._prepared.clear()
        self._pending_deltas.clear()
        self._catalog_version = self.database.catalog_version
        self.stats["full_rebuilds"] += 1

    def _on_delta(self, delta: TableDelta) -> None:
        """Database mutation callback: buffer the delta for the next ask."""
        self._pending_deltas.append(delta)

    def refresh(self, *, full: bool = False) -> None:
        """Bring the language layers up to date after DML/DDL.

        Called automatically (lazily) before each question.  DML is
        absorbed *incrementally*: each table mutation emits a row-level
        delta of string values, and the value index adds/removes exactly
        those phrases — O(changed rows), not O(database).  The lexicon is
        only rebuilt when a delta touches a column that feeds data-derived
        entries (categorical entity nouns).  A full rebuild happens on
        catalog DDL (create/drop table), when deltas piled up past
        ``config.max_pending_deltas`` (bulk load), or on ``full=True``.
        """
        if (
            full
            or self.database.catalog_version != self._catalog_version
            or len(self._pending_deltas) > self.config.max_pending_deltas
        ):
            self._build_language_layers()
            return
        if not self._pending_deltas:
            return
        deltas, self._pending_deltas = self._pending_deltas, []
        # Only string values feed the language layers; numeric-only DML and
        # index DDL produce valueless deltas and must not cost a prepared-
        # cache flush (the engine's plan cache handles result freshness).
        deltas = [d for d in deltas if d.added or d.removed]
        if not deltas:
            return
        rebuild_lexicon = False
        for delta in deltas:
            if self.value_index is not None:
                self.value_index.apply_delta(delta)
            if not rebuild_lexicon and self._lexicon_data_columns:
                changed = delta.added + delta.removed
                rebuild_lexicon = any(
                    (delta.table, column) in self._lexicon_data_columns
                    for column, _ in changed
                )
        if rebuild_lexicon:
            self.lexicon = build_lexicon(
                self.database,
                self.domain,
                synonym_fraction=self.config.synonym_fraction,
            )
        # Cached parses may hold ValueRefs into the old index state.
        self._prepared.clear()
        self.stats["delta_refreshes"] += 1
        self.stats["deltas_applied"] += len(deltas)

    def _ensure_fresh(self) -> None:
        if (
            self._pending_deltas
            or self.database.catalog_version != self._catalog_version
        ):
            self.refresh()

    # -- pipeline stages (public for tests/diagnostics) -------------------------

    def normalize(self, question: str) -> tuple[list[Token], list[tuple[str, str]]]:
        """Tokenize + spelling-correct; returns tokens and corrections."""
        self._ensure_fresh()
        # Config knobs are live-mutable, so they participate in the key.
        norm_key = ("normalize", question, self.config.spelling_correction)
        cached = self._prepared.get(norm_key)
        if cached is not None:
            tokens, corrections = cached
            return list(tokens), list(corrections)
        tokens = list(tokenize(question).tokens)
        corrections: list[tuple[str, str]] = []
        if self.config.spelling_correction:
            for i, token in enumerate(tokens):
                word = token.text
                if token.is_number or word in self._protected:
                    continue
                if self.lexicon.knows_word(word):
                    continue
                if self.value_index is not None and self.value_index.contains_word(word):
                    continue
                corrected = self.lexicon.correct_word(word)
                if corrected is None and self.value_index is not None:
                    corrected = self.value_index.fuzzy_word(word)
                if corrected is not None and corrected != word:
                    corrections.append((word, corrected))
                    tokens[i] = replace(token, text=corrected, corrected_from=word)
        self._prepared.put(norm_key, (tuple(tokens), tuple(corrections)))
        return tokens, corrections

    def tag(self, tokens: list[Token]) -> QuestionTagger:
        self._ensure_fresh()
        return QuestionTagger(tokens, self.lexicon, self.value_index, self._protected)

    def parse(self, question: str, session: Session | None = None) -> list[Sketch]:
        """Tokenize/correct/tag/parse; returns all sketches."""
        tokens, _ = self.normalize(question)
        return self._parse_tokens(tokens, session, cache_key=question)

    def _parse_tokens(
        self,
        tokens: list[Token],
        session: Session | None,
        cache_key: str | None = None,
    ) -> list[Sketch]:
        pronoun_entity = None
        if session is not None and session.last_query is not None:
            if any(t.text in PRONOUNS for t in tokens):
                pronoun_entity = session.last_query.target
        # Without dialogue state the parse is a pure function of the
        # question (given fresh language layers), so it can be reused.
        cacheable = pronoun_entity is None and cache_key is not None
        parse_key = (
            "parse",
            cache_key,
            self.config.spelling_correction,
            self.config.max_parses,
        )
        if cacheable:
            cached = self._prepared.get(parse_key)
            if cached is not None:
                return list(cached)
        tagger = self.tag(tokens)
        matcher = _SessionTagger(tagger, pronoun_entity)
        words = [t.text for t in tokens]
        results = self.parser.parse(words, matcher, max_parses=self.config.max_parses)
        sketches = [r.value for r in results if isinstance(r.value, Sketch)]
        if cacheable:
            self._prepared.put(parse_key, tuple(sketches))
        return sketches

    # -- the main entry point ------------------------------------------------------

    def ask(
        self,
        question: str,
        session: Session | None = None,
        clarify: bool = False,
    ) -> Answer:
        """Answer an English question.

        Raises :class:`ParseFailure`, :class:`InterpretationError` or
        :class:`DialogueError` on failure; with ``clarify=True`` raises
        :class:`AmbiguityError` when several readings tie instead of
        picking the best.
        """
        tokens, corrections = self.normalize(question)
        if not tokens:
            raise ParseFailure("empty question")
        sketches = self._parse_tokens(tokens, session, cache_key=question)

        full = [s for s in sketches if not s.fragment]
        fragments = [s for s in sketches if s.fragment]
        used_fragment = False

        candidates: list[Sketch] = []
        pronoun_used = session is not None and session.last_query is not None and any(
            t.text in PRONOUNS for t in tokens
        )
        if full:
            if pronoun_used:
                candidates = [session.resolve_pronoun_sketch(s) for s in full]
            else:
                candidates = full
        elif fragments:
            if session is None or session.last_query is None:
                raise DialogueError(
                    "this looks like a follow-up fragment, but there is no "
                    "previous question to complete it from"
                )
            candidates = [session.resolve_fragment(s) for s in fragments]
            used_fragment = True
        else:  # pragma: no cover - parser always yields one kind
            raise ParseFailure("no usable parse", tokens=[t.text for t in tokens])

        interpretations = self.interpreter.interpret(candidates)
        best = interpretations[0]
        runners_up = interpretations[1 : self.config.max_interpretations]

        if clarify and runners_up:
            margin = best.score - runners_up[0].score
            if margin <= self.config.clarification_margin:
                choices = [i.describe() for i in interpretations]
                raise AmbiguityError(
                    "the question is ambiguous; candidate readings: "
                    + " | ".join(choices),
                    choices=choices,
                )

        select = self.sqlgen.generate(best.query)
        sql = select.render()
        result = self.engine.execute(select)
        text = make_paraphrase(best.query)

        alternatives = []
        for other in runners_up:
            try:
                alternatives.append(
                    (make_paraphrase(other.query), self.sqlgen.generate_sql(other.query))
                )
            except InterpretationError:  # pragma: no cover - defensive
                continue

        answer = Answer(
            question=question,
            normalized_words=[t.text for t in tokens],
            corrections=corrections,
            interpretation=best,
            sql=sql,
            result=result,
            paraphrase=text,
            alternatives=alternatives,
            was_fragment=used_fragment,
        )
        if session is not None:
            session.remember(question, best.query, text)
        return answer

    # -- diagnostics -----------------------------------------------------------------

    def explain(self, question: str, session: Session | None = None) -> str:
        """Multi-line trace of the pipeline for one question."""
        tokens, corrections = self.normalize(question)
        lines = [f"question: {question}"]
        lines.append("tokens:   " + " ".join(t.text for t in tokens))
        if corrections:
            lines.append(
                "spelling: " + ", ".join(f"{a}->{b}" for a, b in corrections)
            )
        tagger = self.tag(tokens)
        for match in sorted(tagger.all_matches(), key=lambda m: (m.start, m.end)):
            payload = getattr(match.payload, "describe", lambda: match.payload)()
            lines.append(
                f"  tag {match.category:7s} [{match.start}:{match.end}] {payload}"
            )
        try:
            sketches = self._parse_tokens(tokens, session, cache_key=question)
        except ParseFailure as exc:
            lines.append(f"parse:    FAILED ({exc})")
            return "\n".join(lines)
        lines.append(f"parses:   {len(sketches)}")
        try:
            interpretations = self.interpreter.interpret(
                [s for s in sketches if not s.fragment] or sketches
            )
        except InterpretationError as exc:
            lines.append(f"interpret: FAILED ({exc})")
            return "\n".join(lines)
        for i, interp in enumerate(interpretations):
            marker = "*" if i == 0 else " "
            lines.append(f" {marker} [{interp.score:5.2f}] {interp.describe()}")
        best = interpretations[0]
        lines.append("sql:      " + self.sqlgen.generate_sql(best.query))
        return "\n".join(lines)
