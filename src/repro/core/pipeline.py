"""The end-to-end natural language interface.

Pipeline per question::

    tokenize -> spell-correct -> tag (lexicon + value index)
             -> Earley parse (semantic grammar) -> interpret + rank
             -> SQL generation -> execute -> paraphrase

Dialogue: pass a :class:`~repro.core.dialogue.Session` to :meth:`ask` and
elliptical follow-ups / pronouns resolve against the previous turn.

:meth:`ask` returns a :class:`~repro.service.response.Response` envelope:
user-input problems (parse failure, ambiguity, unknown values, a fragment
with no context) are *reported* as statuses and diagnostics, never
raised.  The lower-level stage methods (:meth:`parse`, the interpreter,
the engine) still raise; the envelope records the original exception
class name as ``Response.error_type``.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, replace
from typing import Any

from repro.core.answer import Answer
from repro.core.config import NliConfig
from repro.core.dialogue import PRONOUNS, Session
from repro.core.interpret import Interpretation, Interpreter
from repro.core.paraphrase import paraphrase as make_paraphrase
from repro.core.sqlgen import SqlGenerator
from repro.core.tagger import QuestionTagger
from repro.errors import (
    AmbiguityError,
    ClarificationError,
    DialogueError,
    EngineError,
    InterpretationError,
    NliError,
    ParseFailure,
)
from repro.service.response import (
    AMBIGUOUS_QUESTION,
    EXECUTION_ERROR,
    UNKNOWN_WORD,
    Choice,
    Diagnostic,
    Response,
    Status,
)
from repro.grammar.earley import EarleyParser, TerminalMatch
from repro.grammar.english import build_english_grammar, grammar_literal_words
from repro.grammar.sketch import Sketch
from repro.lexicon.builder import build_lexicon, data_dependent_columns
from repro.lexicon.domain import DomainModel
from repro.logical.forms import EntityRef
from repro.nlp.stopwords import PROTECTED_WORDS
from repro.nlp.tokenizer import Token, tokenize
from repro.schemagraph.graph import SchemaGraph
from repro.sqlengine.database import Database
from repro.sqlengine.executor import Engine
from repro.sqlengine.plancache import LruCache
from repro.sqlengine.table import TableDelta
from repro.valueindex.index import ValueIndex


#: Bound on parked clarifications (the pipeline registry is an LRU of this
#: capacity; the service's durability bookkeeping uses the same bound so
#: the two can never drift apart).
CLARIFICATION_CAPACITY = 64


@dataclass(frozen=True)
class LanguageLayers:
    """One immutable generation of everything derived from the database.

    The pipeline publishes a new bundle atomically (a single reference
    assignment) on every refresh; each question pins the bundle it started
    with, so a concurrent refresh can never hand one ask a lexicon from
    one generation and a value index from another.  ``epoch`` is a
    monotone stamp participating in prepared-cache keys: an entry stored
    by a reader on an old generation can never be served to a question
    running on a newer one.
    """

    epoch: int
    graph: SchemaGraph
    lexicon: Any
    value_index: ValueIndex | None
    interpreter: Interpreter
    sqlgen: SqlGenerator


@dataclass(frozen=True)
class _PendingClarification:
    """Parked state of one AMBIGUOUS response, consumed by resolve()."""

    question: str
    words: tuple[str, ...]
    corrections: tuple[tuple[str, str], ...]
    interpretations: tuple[Interpretation, ...]
    session: Session | None


class _SessionTagger:
    """Wraps the tagger, adding pronoun -> previous-entity matches."""

    def __init__(self, tagger: QuestionTagger, pronoun_entity: EntityRef | None):
        self._tagger = tagger
        self._pronoun_entity = pronoun_entity

    def matches_at(self, position: int):
        matches = list(self._tagger.matches_at(position))
        if self._pronoun_entity is not None and position < len(self._tagger.tokens):
            token = self._tagger.tokens[position]
            if token.text in PRONOUNS:
                matches.append(
                    TerminalMatch(
                        "ENTITY", position, position + 1, self._pronoun_entity, 1.0
                    )
                )
        return matches


class NaturalLanguageInterface:
    """The public NLIDB API.

    >>> from repro.datasets import fleet                     # doctest: +SKIP
    >>> nli = NaturalLanguageInterface(fleet.build_database(),
    ...                                domain=fleet.domain())  # doctest: +SKIP
    >>> nli.ask("how many ships are there").result.scalar()   # doctest: +SKIP
    """

    def __init__(
        self,
        database: Database,
        domain: DomainModel | None = None,
        config: NliConfig | None = None,
    ) -> None:
        self.database = database
        self.domain = domain
        self.config = config or NliConfig()
        self.engine = Engine(
            database,
            plan_cache_size=self.config.plan_cache_size,
            max_cached_result_rows=self.config.max_cached_result_rows,
            use_columnar=self.config.use_columnar,
        )
        self.grammar = build_english_grammar()
        self.parser = EarleyParser(self.grammar)
        self._literal_words = grammar_literal_words(self.grammar)
        self._protected = frozenset(PROTECTED_WORDS | self._literal_words | PRONOUNS)
        #: Prepared-pipeline cache: question string -> normalize/parse
        #: results.  Cleared whenever the language layers change (a full
        #: rebuild or an applied delta), because cached parses may embed
        #: value references resolved against the old index.  The optional
        #: TTL ages out one-off questions in long-running services.
        self._prepared: LruCache = LruCache(
            capacity=self.config.prepared_cache_size,
            ttl_s=self.config.prepared_cache_ttl_s,
        )
        #: (table, column) pairs whose live data feeds lexicon entries;
        #: deltas touching them force a lexicon rebuild (still cheap —
        #: O(schema + domain), not O(rows)).
        self._lexicon_data_columns = data_dependent_columns(domain)
        #: Row-level deltas received since the last refresh, drained by
        #: _ensure_fresh on the next question.
        self._pending_deltas: list[TableDelta] = []
        #: When False, questions never refresh implicitly: the owner (the
        #: thread-safe NliService) performs explicit refreshes under its
        #: write lock instead, so concurrent readers cannot race a rebuild.
        self.auto_refresh = True
        #: When True (set by an MVCC-mode NliService), a delta refresh
        #: patches a *clone* of the value index and publishes a fresh
        #: LanguageLayers bundle instead of mutating the live one — so
        #: concurrent readers pinned to the old bundle never observe a
        #: half-applied delta.  Single-threaded pipelines keep the cheaper
        #: in-place patching.
        self.copy_on_refresh = False
        #: Refresh accounting, asserted by tests and benchmarks: the
        #: interleaved-DML story is "delta_refreshes go up, full_rebuilds
        #: do not".  Read through the :attr:`stats` property.
        self._stats = {
            "full_rebuilds": 0,
            "delta_refreshes": 0,
            "deltas_applied": 0,
            "asks": 0,
            "clarifications_resolved": 0,
        }
        self._stats_lock = threading.Lock()
        #: Clarification registry: id -> _PendingClarification, single-use
        #: (popped by resolve).  Bounded so abandoned clarifications age
        #: out by LRU pressure instead of accumulating forever.
        self._clarifications: LruCache = LruCache(capacity=CLARIFICATION_CAPACITY)
        self._clarification_ids = itertools.count(1)
        self._build_language_layers()
        # Subscribe to row-level deltas (held weakly by the database, so a
        # dropped NLI does not linger as a listener).
        database.add_delta_listener(self._on_delta)

    def _build_language_layers(self) -> None:
        """(Re)build everything derived from the database contents.

        The result is published as one :class:`LanguageLayers` bundle —
        a single atomic reference swap, never a field-by-field mutation.
        """
        graph = SchemaGraph(self.database)
        lexicon = build_lexicon(
            self.database, self.domain, synonym_fraction=self.config.synonym_fraction
        )
        value_index = (
            ValueIndex(self.database, self.config.max_values_per_column)
            if self.config.use_value_index
            else None
        )
        if value_index is not None and self.copy_on_refresh:
            # Publish-mode owners need O(1) clones: persistent maps make a
            # rebuilt index publishable without ever deep-copying again.
            value_index.to_persistent()
        previous: LanguageLayers | None = getattr(self, "_layers", None)
        self._layers = LanguageLayers(
            epoch=previous.epoch + 1 if previous is not None else 0,
            graph=graph,
            lexicon=lexicon,
            value_index=value_index,
            interpreter=Interpreter(
                self.database, graph, self.domain, self.config.join_inference
            ),
            sqlgen=SqlGenerator(
                self.database, graph, self.domain, self.config.join_inference
            ),
        )
        self._prepared.clear()
        # Parked clarifications hold interpretations resolved against the
        # old schema/layers; after a full rebuild (catalog DDL) replaying
        # them could reference dropped tables.  Row-level deltas are fine:
        # a stale value reference just returns empty rows.
        self._clarifications.clear()
        self._pending_deltas.clear()
        self._catalog_version = self.database.catalog_version
        with self._stats_lock:
            self._stats["full_rebuilds"] += 1

    # -- the published language-layer bundle ---------------------------------

    @property
    def layers(self) -> LanguageLayers:
        """The current (immutable) language-layer generation."""
        return self._layers

    @property
    def graph(self) -> SchemaGraph:
        return self._layers.graph

    @property
    def lexicon(self):
        return self._layers.lexicon

    @property
    def value_index(self) -> ValueIndex | None:
        return self._layers.value_index

    @property
    def interpreter(self) -> Interpreter:
        return self._layers.interpreter

    @property
    def sqlgen(self) -> SqlGenerator:
        return self._layers.sqlgen

    def _on_delta(self, delta: TableDelta) -> None:
        """Database mutation callback: buffer the delta for the next ask."""
        self._pending_deltas.append(delta)

    def enable_copy_on_refresh(self) -> None:
        """Switch delta refreshes to publish mode (clone, patch, swap).

        Also converts the live value index to persistent maps, so each
        publish clones in O(1) and patches with structurally-shared
        updates — the whole refresh is O(changed values), not O(index).
        Call before concurrent readers start (the conversion itself
        mutates the live index's storage representation).
        """
        self.copy_on_refresh = True
        value_index = self._layers.value_index
        if value_index is not None:
            value_index.to_persistent()

    def refresh(self, *, full: bool = False) -> None:
        """Bring the language layers up to date after DML/DDL.

        Called automatically (lazily) before each question.  DML is
        absorbed *incrementally*: each table mutation emits a row-level
        delta of string values, and the value index adds/removes exactly
        those phrases — O(changed rows), not O(database).  The lexicon is
        only rebuilt when a delta touches a column that feeds data-derived
        entries (categorical entity nouns).  A full rebuild happens on
        catalog DDL (create/drop table), when deltas piled up past
        ``config.max_pending_deltas`` (bulk load), or on ``full=True``.

        The new layer bundle is published inside the database's statement
        scope, so :meth:`_pin` can never capture a snapshot/layers pair
        that straddles the publish.
        """
        with self.database.statement_scope():
            self._refresh_locked(full)

    def _refresh_locked(self, full: bool) -> None:
        if (
            full
            or self.database.catalog_version != self._catalog_version
            or len(self._pending_deltas) > self.config.max_pending_deltas
        ):
            self._build_language_layers()
            return
        if not self._pending_deltas:
            return
        deltas, self._pending_deltas = self._pending_deltas, []
        # Only string values feed the language layers; numeric-only DML and
        # index DDL produce valueless deltas and must not cost a prepared-
        # cache flush (the engine's plan cache handles result freshness).
        deltas = [d for d in deltas if d.added or d.removed]
        if not deltas:
            return
        layers = self._layers
        rebuild_lexicon = False
        if self._lexicon_data_columns:
            rebuild_lexicon = any(
                (delta.table, column) in self._lexicon_data_columns
                for delta in deltas
                for column, _ in delta.added + delta.removed
            )
        value_index = layers.value_index
        if value_index is not None:
            if self.copy_on_refresh:
                # Publish mode: patch a clone so concurrent readers pinned
                # to the old bundle never see a half-applied delta.  With
                # persistent maps (enable_copy_on_refresh) the clone is
                # O(1) and the patches share all untouched structure.
                value_index = value_index.clone()
            for delta in deltas:
                value_index.apply_delta(delta)
        lexicon = layers.lexicon
        if rebuild_lexicon:
            lexicon = build_lexicon(
                self.database,
                self.domain,
                synonym_fraction=self.config.synonym_fraction,
            )
        self._layers = replace(
            layers,
            epoch=layers.epoch + 1,
            lexicon=lexicon,
            value_index=value_index,
        )
        # Cached parses may hold ValueRefs into the old index state.
        self._prepared.clear()
        with self._stats_lock:
            self._stats["delta_refreshes"] += 1
            self._stats["deltas_applied"] += len(deltas)

    def needs_refresh(self) -> bool:
        """True when DML/DDL happened since the language layers were built."""
        return (
            bool(self._pending_deltas)
            or self.database.catalog_version != self._catalog_version
        )

    def refresh_if_needed(self) -> None:
        if self.needs_refresh():
            self.refresh()

    def _ensure_fresh(self) -> None:
        if self.auto_refresh:
            self.refresh_if_needed()

    @property
    def stats(self) -> dict[str, int]:
        """Refresh/ask accounting plus prepared-cache hit/miss/TTL counters."""
        with self._stats_lock:
            out = dict(self._stats)
        prepared = self._prepared.stats
        out["prepared_hits"] = prepared["hits"]
        out["prepared_misses"] = prepared["misses"]
        out["prepared_ttl_evictions"] = prepared["ttl_evictions"]
        return out

    # -- pipeline stages (public for tests/diagnostics) -------------------------

    def _word_is_known(
        self, token: Token, layers: LanguageLayers | None = None
    ) -> bool:
        """One definition of "known word", shared by spelling correction
        and the unknown-word failure diagnostics so they cannot diverge:
        numbers, protected grammar words/pronouns, lexicon phrases and
        value-index vocabulary all count."""
        layers = layers or self._layers
        word = token.text
        if token.is_number or word in self._protected:
            return True
        if layers.lexicon.knows_word(word):
            return True
        return layers.value_index is not None and layers.value_index.contains_word(
            word
        )

    def normalize(
        self, question: str, layers: LanguageLayers | None = None
    ) -> tuple[list[Token], list[tuple[str, str]]]:
        """Tokenize + spelling-correct; returns tokens and corrections."""
        self._ensure_fresh()
        layers = layers or self._layers
        # Config knobs are live-mutable, so they participate in the key;
        # the layers epoch stamps the entry so a reader still running on
        # an old generation cannot publish results a newer one would reuse.
        norm_key = (
            "normalize", question, self.config.spelling_correction, layers.epoch
        )
        cached = self._prepared.get(norm_key)
        if cached is not None:
            tokens, corrections = cached
            return list(tokens), list(corrections)
        tokens = list(tokenize(question).tokens)
        corrections: list[tuple[str, str]] = []
        if self.config.spelling_correction:
            for i, token in enumerate(tokens):
                word = token.text
                if self._word_is_known(token, layers):
                    continue
                corrected = layers.lexicon.correct_word(word)
                if corrected is None and layers.value_index is not None:
                    corrected = layers.value_index.fuzzy_word(word)
                if corrected is not None and corrected != word:
                    corrections.append((word, corrected))
                    tokens[i] = replace(token, text=corrected, corrected_from=word)
        self._prepared.put(norm_key, (tuple(tokens), tuple(corrections)))
        return tokens, corrections

    def tag(
        self, tokens: list[Token], layers: LanguageLayers | None = None
    ) -> QuestionTagger:
        self._ensure_fresh()
        layers = layers or self._layers
        return QuestionTagger(
            tokens, layers.lexicon, layers.value_index, self._protected
        )

    def parse(self, question: str, session: Session | None = None) -> list[Sketch]:
        """Tokenize/correct/tag/parse; returns all sketches."""
        layers = self._layers
        tokens, _ = self.normalize(question, layers)
        return self._parse_tokens(tokens, session, cache_key=question, layers=layers)

    def _parse_tokens(
        self,
        tokens: list[Token],
        session: Session | None,
        cache_key: str | None = None,
        layers: LanguageLayers | None = None,
    ) -> list[Sketch]:
        layers = layers or self._layers
        pronoun_entity = None
        if session is not None and session.last_query is not None:
            if any(t.text in PRONOUNS for t in tokens):
                pronoun_entity = session.last_query.target
        # Without dialogue state the parse is a pure function of the
        # question (given fresh language layers), so it can be reused.
        cacheable = pronoun_entity is None and cache_key is not None
        parse_key = (
            "parse",
            cache_key,
            self.config.spelling_correction,
            self.config.max_parses,
            layers.epoch,
        )
        if cacheable:
            cached = self._prepared.get(parse_key)
            if cached is not None:
                return list(cached)
        tagger = self.tag(tokens, layers)
        matcher = _SessionTagger(tagger, pronoun_entity)
        words = [t.text for t in tokens]
        results = self.parser.parse(words, matcher, max_parses=self.config.max_parses)
        sketches = [r.value for r in results if isinstance(r.value, Sketch)]
        if cacheable:
            self._prepared.put(parse_key, tuple(sketches))
        return sketches

    # -- the main entry point ------------------------------------------------------

    def ask(
        self,
        question: str,
        session: Session | None = None,
        clarify: bool = False,
    ) -> Response:
        """Answer an English question; always returns a :class:`Response`.

        User-input problems never raise: a parse failure, an unresolvable
        fragment or (with ``clarify=True``) a tie between readings come
        back as ``FAILED`` / ``NEEDS_CLARIFICATION`` / ``AMBIGUOUS``
        responses carrying :class:`Diagnostic` records with token spans.
        An ``AMBIGUOUS`` response enumerates :class:`Choice` objects and a
        ``clarification_id`` accepted by :meth:`resolve`.

        MVCC read path: after the freshness pass, the question pins the
        current language-layer bundle *and* a database snapshot (one
        atomic capture — see :attr:`pin_guard`), and runs entirely
        against them — so a write committing mid-question can neither
        tear the tagging nor mix rows from two versions into one result.
        The snapshot pin is released when the ask finishes.
        """
        self._ensure_fresh()
        layers, snapshot = self._pin()
        try:
            return self._ask_pinned(question, session, clarify, layers, snapshot)
        finally:
            snapshot.close()

    def _pin(self) -> tuple[LanguageLayers, Any]:
        """Capture the (layers, snapshot) pair for one read — atomically.

        Both reads happen inside the database's statement scope (the
        mutation lock snapshot capture uses anyway), and layer publishes
        hold the same scope: a commit's mutate-then-publish is one unit
        to pinning readers, so an ask can never run pre-write language
        layers over post-write data or vice versa.  The scope is held
        for the O(#tables) pin only, never for the ask itself.
        """
        with self.database.statement_scope():
            return self._layers, self.database.snapshot()

    def _ask_pinned(
        self,
        question: str,
        session: Session | None,
        clarify: bool,
        layers: LanguageLayers,
        snapshot: Any,
    ) -> Response:
        with self._stats_lock:
            self._stats["asks"] += 1
        tokens: list[Token] = []
        interpreted = False
        try:
            tokens, corrections = self.normalize(question, layers)
            if not tokens:
                raise ParseFailure("empty question")
            sketches = self._parse_tokens(
                tokens, session, cache_key=question, layers=layers
            )

            full = [s for s in sketches if not s.fragment]
            fragments = [s for s in sketches if s.fragment]
            used_fragment = False

            candidates: list[Sketch] = []
            pronoun_used = session is not None and session.last_query is not None and any(
                t.text in PRONOUNS for t in tokens
            )
            if full:
                if pronoun_used:
                    candidates = [session.resolve_pronoun_sketch(s) for s in full]
                else:
                    candidates = full
            elif fragments:
                if session is None or session.last_query is None:
                    raise DialogueError(
                        "this looks like a follow-up fragment, but there is no "
                        "previous question to complete it from"
                    )
                candidates = [session.resolve_fragment(s) for s in fragments]
                used_fragment = True
            else:  # pragma: no cover - parser always yields one kind
                raise ParseFailure("no usable parse", tokens=[t.text for t in tokens])

            interpretations = layers.interpreter.interpret(candidates)
            interpreted = True
            best = interpretations[0]
            runners_up = interpretations[1 : self.config.max_interpretations]

            if clarify and runners_up:
                margin = best.score - runners_up[0].score
                if margin <= self.config.clarification_margin:
                    return self._ambiguous_response(
                        question, tokens, corrections, session, interpretations,
                        layers,
                    )

            select = layers.sqlgen.generate(best.query)
            sql = select.render()
            result = self.engine.execute(select, snapshot=snapshot)
            text = make_paraphrase(best.query)

            alternatives = []
            for other in runners_up:
                try:
                    alternatives.append(
                        (make_paraphrase(other.query),
                         layers.sqlgen.generate_sql(other.query))
                    )
                except InterpretationError:  # pragma: no cover - defensive
                    continue

            answer = Answer(
                question=question,
                normalized_words=[t.text for t in tokens],
                corrections=corrections,
                interpretation=best,
                sql=sql,
                result=result,
                paraphrase=text,
                alternatives=alternatives,
                was_fragment=used_fragment,
            )
            if session is not None:
                session.remember(question, best.query, text, clarify=clarify)
            return Response.answered(question, answer)
        except (NliError, EngineError) as exc:
            return self._failure_response(
                question, tokens, exc, after_interpretation=interpreted,
                layers=layers,
            )

    def ask_many(
        self,
        questions: list[str],
        session: Session | None = None,
        clarify: bool = False,
    ) -> list[Response]:
        """Answer a batch of questions with shared per-batch work.

        One freshness check covers the whole batch (pending DML deltas are
        absorbed once, not per question), and ONE (layers, snapshot) pair
        is pinned for all of it: every answer in the batch reflects the
        same committed data version even while writers keep committing,
        and repeated question strings share one normalize/parse pass and
        the engine's materialized results.
        """
        # Honour auto_refresh: when an NliService owns this pipeline, the
        # service performs refreshes under its write lock — refreshing
        # here would mutate the language layers under a read lock.
        self._ensure_fresh()
        previous, self.auto_refresh = self.auto_refresh, False
        layers, snapshot = self._pin()
        try:
            return [
                self._ask_pinned(question, session, clarify, layers, snapshot)
                for question in questions
            ]
        finally:
            snapshot.close()
            self.auto_refresh = previous

    def resolve(self, clarification_id: str, choice_index: int) -> Response:
        """Execute one choice of an AMBIGUOUS response, without re-parsing.

        The interpretation chosen at ask() time is replayed directly
        through SQL generation and execution.  When the original ask
        carried a :class:`Session`, the resolution is remembered there, so
        follow-up fragments bind to the clarified reading.  Raises
        :class:`ClarificationError` for an unknown/consumed id or an
        out-of-range index (caller programming errors, not user input).
        """
        pending: _PendingClarification | None = self._clarifications.get(
            clarification_id
        )
        if pending is None:
            raise ClarificationError(
                f"unknown or already-resolved clarification id {clarification_id!r}"
            )
        if not 0 <= choice_index < len(pending.interpretations):
            # Bad index leaves the clarification pending, so the user can
            # simply pick again.
            raise ClarificationError(
                f"choice index {choice_index} out of range: clarification "
                f"{clarification_id!r} offers {len(pending.interpretations)} choices"
            )
        # Consume the entry only once the choice is valid (single-use; a
        # concurrent resolver losing this race gets the unknown-id error).
        pending = self._clarifications.pop(clarification_id)
        if pending is None:  # pragma: no cover - needs a concurrent resolve
            raise ClarificationError(
                f"unknown or already-resolved clarification id {clarification_id!r}"
            )
        chosen = pending.interpretations[choice_index]
        # Same MVCC discipline as ask(): one atomically captured
        # (layers, snapshot) pair, so a concurrent writer can neither
        # tear the replay nor mix generation and execution versions.
        layers, snapshot = self._pin()
        try:
            try:
                select = layers.sqlgen.generate(chosen.query)
                sql = select.render()
                result = self.engine.execute(select, snapshot=snapshot)
                text = make_paraphrase(chosen.query)
            finally:
                snapshot.close()
        except (NliError, EngineError) as exc:
            # Same contract as ask(): replay failures (e.g. the database
            # changed under a parked clarification) become envelopes, not
            # raises.  The clarification is consumed either way.
            if pending.session is not None:
                pending.session.pending_clarification = None
                pending.session.pending_question = None
            return Response(
                status=Status.FAILED,
                question=pending.question,
                diagnostics=(
                    Diagnostic(
                        EXECUTION_ERROR, str(exc), span=(0, len(pending.words))
                    ),
                ),
                tokens=pending.words,
                error_type=type(exc).__name__,
            )
        answer = Answer(
            question=pending.question,
            normalized_words=list(pending.words),
            corrections=list(pending.corrections),
            interpretation=chosen,
            sql=sql,
            result=result,
            paraphrase=text,
        )
        if pending.session is not None:
            pending.session.remember(
                pending.question, chosen.query, text, choice=choice_index
            )
        with self._stats_lock:
            self._stats["clarifications_resolved"] += 1
        return Response.answered(pending.question, answer)

    # -- envelope construction ---------------------------------------------------

    def _ambiguous_response(
        self,
        question: str,
        tokens: list[Token],
        corrections: list[tuple[str, str]],
        session: Session | None,
        interpretations: list[Interpretation],
        layers: LanguageLayers | None = None,
    ) -> Response:
        layers = layers or self._layers
        words = tuple(t.text for t in tokens)
        choices: list[Choice] = []
        kept: list[Interpretation] = []
        for interpretation in interpretations:
            try:
                sql = layers.sqlgen.generate_sql(interpretation.query)
                text = make_paraphrase(interpretation.query)
            except (NliError, EngineError):  # pragma: no cover - defensive
                continue
            choices.append(
                Choice(
                    index=len(choices),
                    paraphrase=text,
                    sql=sql,
                    score=interpretation.score,
                )
            )
            kept.append(interpretation)
        clarification_id = f"clar-{next(self._clarification_ids)}"
        self._clarifications.put(
            clarification_id,
            _PendingClarification(
                question=question,
                words=words,
                corrections=tuple(corrections),
                interpretations=tuple(kept),
                session=session,
            ),
        )
        if session is not None:
            session.pending_clarification = clarification_id
            session.pending_question = question
        readings = [i.describe() for i in kept]
        message = (
            "the question is ambiguous; candidate readings: " + " | ".join(readings)
        )
        diagnostic = Diagnostic(
            AMBIGUOUS_QUESTION,
            message,
            span=(0, len(words)),
            suggestions=tuple(choice.paraphrase for choice in choices),
        )
        return Response(
            status=Status.AMBIGUOUS,
            question=question,
            diagnostics=(diagnostic,),
            choices=tuple(choices),
            clarification_id=clarification_id,
            tokens=words,
            error_type="AmbiguityError",
        )

    def _failure_response(
        self,
        question: str,
        tokens: list[Token],
        error: Exception,
        after_interpretation: bool = False,
        layers: LanguageLayers | None = None,
    ) -> Response:
        words = tuple(t.text for t in tokens)
        if after_interpretation and isinstance(error, InterpretationError):
            # The interpreter succeeded; this came from SQL generation —
            # report it as an execution-phase failure so stage accounting
            # (evalkit) credits the interpret stage as reached.
            return Response(
                status=Status.FAILED,
                question=question,
                diagnostics=(
                    Diagnostic(EXECUTION_ERROR, str(error), span=(0, len(words))),
                ),
                tokens=words,
                error_type=type(error).__name__,
            )
        extra: tuple[Diagnostic, ...] = ()
        if isinstance(error, (ParseFailure, InterpretationError)) and tokens:
            extra = self._unknown_word_diagnostics(tokens, layers)
        return Response.from_error(
            question, error, tokens=words, extra_diagnostics=extra
        )

    def _unknown_word_diagnostics(
        self, tokens: list[Token], layers: LanguageLayers | None = None
    ) -> tuple[Diagnostic, ...]:
        """Per-token diagnostics for words nothing in the system can bind.

        These carry the precise token span plus spelling/value suggestions
        — the machine-readable version of "did you mean ...?".
        """
        layers = layers or self._layers
        out = []
        for i, token in enumerate(tokens):
            word = token.text
            if self._word_is_known(token, layers):
                continue
            suggestions: list[str] = []
            corrected = layers.lexicon.correct_word(word)
            if corrected and corrected != word:
                suggestions.append(corrected)
            if layers.value_index is not None:
                fuzzy = layers.value_index.fuzzy_word(word)
                if fuzzy and fuzzy != word and fuzzy not in suggestions:
                    suggestions.append(fuzzy)
            out.append(
                Diagnostic(
                    UNKNOWN_WORD,
                    f"{word!r} matches no schema term, data value or grammar word",
                    span=(i, i + 1),
                    suggestions=tuple(suggestions),
                )
            )
        return tuple(out)

    # -- diagnostics -----------------------------------------------------------------

    def explain(self, question: str, session: Session | None = None) -> str:
        """Multi-line trace of the pipeline for one question."""
        self._ensure_fresh()
        layers = self._layers
        tokens, corrections = self.normalize(question, layers)
        lines = [f"question: {question}"]
        lines.append("tokens:   " + " ".join(t.text for t in tokens))
        if corrections:
            lines.append(
                "spelling: " + ", ".join(f"{a}->{b}" for a, b in corrections)
            )
        tagger = self.tag(tokens, layers)
        for match in sorted(tagger.all_matches(), key=lambda m: (m.start, m.end)):
            payload = getattr(match.payload, "describe", lambda: match.payload)()
            lines.append(
                f"  tag {match.category:7s} [{match.start}:{match.end}] {payload}"
            )
        try:
            sketches = self._parse_tokens(
                tokens, session, cache_key=question, layers=layers
            )
        except ParseFailure as exc:
            lines.append(f"parse:    FAILED ({exc})")
            return "\n".join(lines)
        lines.append(f"parses:   {len(sketches)}")
        try:
            interpretations = layers.interpreter.interpret(
                [s for s in sketches if not s.fragment] or sketches
            )
        except InterpretationError as exc:
            lines.append(f"interpret: FAILED ({exc})")
            return "\n".join(lines)
        for i, interp in enumerate(interpretations):
            marker = "*" if i == 0 else " "
            lines.append(f" {marker} [{interp.score:5.2f}] {interp.describe()}")
        best = interpretations[0]
        lines.append("sql:      " + layers.sqlgen.generate_sql(best.query))
        return "\n".join(lines)
