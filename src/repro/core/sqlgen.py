"""SQL generation: LogicalQuery -> ``repro.sqlengine`` AST.

The generator reuses the engine's own AST, so generated queries are valid
by construction and render to SQL text via ``Select.render()``.
"""

from __future__ import annotations

from repro.errors import InterpretationError
from repro.core.interpret import display_attrs
from repro.lexicon.domain import DomainModel
from repro.logical.forms import (
    AttrRef,
    BetweenCondition,
    CompareCondition,
    CompareToAggregate,
    CompareToInstance,
    Condition,
    LogicalQuery,
    MembershipCondition,
    NullCondition,
    ValueCondition,
)
from repro.schemagraph.graph import JoinEdge, SchemaGraph
from repro.schemagraph.steiner import pairwise_join_paths, steiner_join_tree
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.database import Database


class SqlGenerator:
    """Generates SELECT statements for logical queries."""

    def __init__(
        self,
        database: Database,
        graph: SchemaGraph,
        domain: DomainModel | None = None,
        join_inference: str = "steiner",
    ) -> None:
        self.database = database
        self.graph = graph
        self.domain = domain
        self.join_inference = join_inference

    # -- public --------------------------------------------------------------

    def generate(self, query: LogicalQuery) -> ast.Select:
        from_table, joins = self._from_clause(query)
        where = self._where_clause(query.conditions)
        has_joins = bool(joins)

        items, group_by = self._select_list(query, has_joins)
        order_by, limit = self._order_limit(query)

        distinct = (
            has_joins
            and query.aggregate is None
            and query.group_by is None
        )
        return ast.Select(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=None,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def generate_sql(self, query: LogicalQuery) -> str:
        return self.generate(query).render()

    # -- FROM / joins -----------------------------------------------------------

    def _join_edges(self, query: LogicalQuery) -> list[JoinEdge]:
        terminals = query.condition_tables()
        if self.join_inference == "pairwise":
            return pairwise_join_paths(self.graph, terminals)
        return steiner_join_tree(self.graph, terminals)

    def _from_clause(
        self, query: LogicalQuery
    ) -> tuple[ast.TableRef, list[ast.Join]]:
        edges = self._join_edges(query)
        root = query.target.table
        from_table = ast.TableRef(root)
        if not edges:
            return from_table, []
        adjacency: dict[str, list[JoinEdge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.from_table, []).append(edge)
            adjacency.setdefault(edge.to_table, []).append(edge.reversed())
        joins: list[ast.Join] = []
        visited = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop(0)
            for edge in sorted(
                adjacency.get(current, []), key=lambda e: e.to_table
            ):
                if edge.to_table in visited:
                    continue
                visited.add(edge.to_table)
                frontier.append(edge.to_table)
                condition = ast.BinaryOp(
                    "=",
                    ast.ColumnRef(edge.from_column, table=edge.from_table),
                    ast.ColumnRef(edge.to_column, table=edge.to_table),
                )
                joins.append(ast.Join(ast.TableRef(edge.to_table), condition))
        if len(visited) < len({t for e in edges for t in (e.from_table, e.to_table)} | {root}):
            raise InterpretationError("join tree is not connected to the target")
        return from_table, joins

    # -- WHERE ---------------------------------------------------------------------

    def _where_clause(self, conditions: tuple[Condition, ...]) -> ast.Expr | None:
        exprs = [self._condition_expr(c) for c in conditions]
        if not exprs:
            return None
        out = exprs[0]
        for expr in exprs[1:]:
            out = ast.BinaryOp("AND", out, expr)
        return out

    @staticmethod
    def _col(attr: AttrRef) -> ast.ColumnRef:
        return ast.ColumnRef(attr.column, table=attr.table)

    def _condition_expr(self, condition: Condition) -> ast.Expr:
        if isinstance(condition, ValueCondition):
            ref = condition.value
            op = "!=" if condition.negated else "="
            return ast.BinaryOp(
                op,
                ast.ColumnRef(ref.column, table=ref.table),
                ast.Literal(ref.value),
            )
        if isinstance(condition, MembershipCondition):
            first = condition.values[0]
            return ast.InList(
                ast.ColumnRef(first.column, table=first.table),
                tuple(ast.Literal(v.value) for v in condition.values),
                negated=condition.negated,
            )
        if isinstance(condition, CompareCondition):
            expr: ast.Expr = ast.BinaryOp(
                condition.op, self._col(condition.attr), ast.Literal(condition.operand)
            )
            if condition.negated:
                expr = ast.UnaryOp("NOT", expr)
            return expr
        if isinstance(condition, BetweenCondition):
            return ast.Between(
                self._col(condition.attr),
                ast.Literal(condition.low),
                ast.Literal(condition.high),
                negated=condition.negated,
            )
        if isinstance(condition, NullCondition):
            return ast.IsNull(self._col(condition.attr), negated=condition.negated)
        if isinstance(condition, CompareToAggregate):
            subquery = ast.Select(
                items=(
                    ast.SelectItem(
                        ast.FunctionCall(
                            condition.aggregate, (self._col(condition.agg_attr),)
                        )
                    ),
                ),
                from_table=ast.TableRef(condition.agg_attr.table),
            )
            expr = ast.BinaryOp(
                condition.op, self._col(condition.attr), ast.ScalarSubquery(subquery)
            )
            if condition.negated:
                expr = ast.UnaryOp("NOT", expr)
            return expr
        if isinstance(condition, CompareToInstance):
            instance = condition.instance
            inner = LogicalQuery(
                target=_entity_for(condition.attr.table),
                projections=(condition.attr,),
                conditions=(ValueCondition(instance),),
            )
            subquery = self.generate(inner)
            expr = ast.BinaryOp(
                condition.op, self._col(condition.attr), ast.ScalarSubquery(subquery)
            )
            if condition.negated:
                expr = ast.UnaryOp("NOT", expr)
            return expr
        raise InterpretationError(f"cannot generate SQL for {condition!r}")

    # -- SELECT list ------------------------------------------------------------------

    def _target_pk(self, query: LogicalQuery) -> AttrRef:
        schema = self.database.table(query.target.table).schema
        column = schema.primary_key or schema.columns[0].name
        return AttrRef(query.target.table, column)

    def _select_list(
        self, query: LogicalQuery, has_joins: bool
    ) -> tuple[list[ast.SelectItem], list[ast.Expr]]:
        items: list[ast.SelectItem] = []
        group_exprs: list[ast.Expr] = []

        if query.group_by is not None:
            group_col = self._col(query.group_by)
            group_exprs.append(group_col)
            items.append(ast.SelectItem(group_col, alias=query.group_by.column))

        if query.aggregate is not None:
            agg = query.aggregate
            if agg.function == "count":
                if has_joins or query.group_by is not None:
                    pk = self._target_pk(query)
                    call = ast.FunctionCall("count", (self._col(pk),), distinct=True)
                else:
                    call = ast.FunctionCall("count", (ast.Star(),))
                items.append(ast.SelectItem(call, alias="n"))
            else:
                assert agg.attr is not None
                call = ast.FunctionCall(
                    agg.function, (self._col(agg.attr),), distinct=agg.distinct
                )
                items.append(
                    ast.SelectItem(call, alias=f"{agg.function}_{agg.attr.column}")
                )
            return items, group_exprs

        if query.group_by is not None:
            # grouped non-aggregate query: default to counting
            pk = self._target_pk(query)
            items.append(
                ast.SelectItem(
                    ast.FunctionCall("count", (self._col(pk),), distinct=True),
                    alias="n",
                )
            )
            return items, group_exprs

        attrs = query.projections or display_attrs(
            self.database, self.domain, query.target.table
        )
        for attr in attrs:
            items.append(ast.SelectItem(self._col(attr)))
        return items, group_exprs

    # -- ORDER / LIMIT -------------------------------------------------------------------

    def _order_limit(
        self, query: LogicalQuery
    ) -> tuple[list[ast.OrderItem], int | None]:
        order_by: list[ast.OrderItem] = []
        limit = query.limit
        if query.superlative is not None:
            sup = query.superlative
            order_by.append(
                ast.OrderItem(self._col(sup.attr), descending=sup.direction == "max")
            )
            limit = sup.k if limit is None else min(limit, sup.k)
        if query.order_by is not None:
            order_by.append(
                ast.OrderItem(
                    self._col(query.order_by.attr),
                    descending=query.order_by.descending,
                )
            )
        if query.aggregate is not None and query.group_by is not None:
            # deterministic group output: order by group column
            order_by.append(ast.OrderItem(self._col(query.group_by)))
        return order_by, limit


def _entity_for(table: str):
    from repro.logical.forms import EntityRef

    return EntityRef(table, phrase=table)
