"""The question tagger: lexicon + value-index lookup as an Earley matcher.

For each token position the tagger reports every terminal-category match
(the parse lattice): lexicon entries on stemmed words, database values on
raw words, and number expressions.  Ambiguity (a word that is both a
value and an attribute) simply yields several matches; ranking happens
after interpretation.
"""

from __future__ import annotations

from repro.grammar.earley import TerminalMatch
from repro.lexicon.lexicon import Lexicon
from repro.logical.forms import ValueRef
from repro.nlp.numbers import parse_number_words, parse_ordinal
from repro.nlp.stemmer import stem
from repro.nlp.tokenizer import Token
from repro.valueindex.index import ValueIndex


class QuestionTagger:
    """Pre-computes all terminal matches for one tokenised question."""

    def __init__(
        self,
        tokens: list[Token],
        lexicon: Lexicon,
        value_index: ValueIndex | None,
        protected_words: frozenset[str],
    ) -> None:
        self.tokens = tokens
        self._matches: dict[int, list[TerminalMatch]] = {}
        words = [t.text for t in tokens]
        stems = [stem(w) for w in words]
        n = len(tokens)
        for i in range(n):
            matches: list[TerminalMatch] = []
            # 1. lexicon (stem-normalised phrases)
            for length, entry in lexicon.prefix_matches(stems, i):
                matches.append(
                    TerminalMatch(
                        entry.category.value, i, i + length, entry.payload, entry.weight
                    )
                )
            # 2. value index (raw lower-cased words)
            if value_index is not None:
                for length, hit in value_index.lookup_prefix(words[i:]):
                    if length == 1 and words[i] in protected_words:
                        continue  # "in", "the" … may occur inside values but
                        # never *are* values on their own
                    ref = ValueRef(
                        hit.table,
                        hit.column,
                        hit.value,
                        phrase=" ".join(words[i : i + length]),
                        approx=not hit.exact,
                    )
                    matches.append(
                        TerminalMatch(
                            "VALUE", i, i + length, ref, 1.0 if hit.exact else 0.7
                        )
                    )
            # 3. numbers ("3", "three thousand", "3rd")
            parsed = parse_number_words(words[i:])
            if parsed is not None:
                value, consumed = parsed
                matches.append(TerminalMatch("NUMBER", i, i + consumed, value, 1.0))
            ordinal = parse_ordinal(words[i])
            if ordinal is not None and (parsed is None or parsed[1] == 0):
                matches.append(TerminalMatch("NUMBER", i, i + 1, ordinal, 1.0))
            if matches:
                self._matches[i] = matches

    def matches_at(self, position: int) -> list[TerminalMatch]:
        return self._matches.get(position, [])

    def all_matches(self) -> list[TerminalMatch]:
        out: list[TerminalMatch] = []
        for bucket in self._matches.values():
            out.extend(bucket)
        return out

    def coverage(self) -> float:
        """Fraction of tokens covered by at least one match (diagnostics)."""
        if not self.tokens:
            return 0.0
        covered: set[int] = set()
        for bucket in self._matches.values():
            for match in bucket:
                covered.update(range(match.start, match.end))
        return len(covered) / len(self.tokens)
