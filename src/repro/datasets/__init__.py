"""Synthetic evaluation domains: fleet (navy), company, geography,
saas (multi-tenant back office) and events (time-series operations)."""

from repro.datasets import company, events, fleet, geography, saas
from repro.datasets.corpus import (
    ALL_DOMAINS,
    DialogueTurn,
    DomainBundle,
    QuestionExample,
    load_all_bundles,
    load_bundle,
)

__all__ = [
    "ALL_DOMAINS",
    "DialogueTurn",
    "DomainBundle",
    "QuestionExample",
    "company",
    "events",
    "fleet",
    "geography",
    "load_all_bundles",
    "load_bundle",
    "saas",
]
