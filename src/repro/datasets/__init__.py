"""Synthetic evaluation domains: fleet (navy), company, geography."""

from repro.datasets import company, fleet, geography
from repro.datasets.corpus import (
    ALL_DOMAINS,
    DialogueTurn,
    DomainBundle,
    QuestionExample,
    load_all_bundles,
    load_bundle,
)

__all__ = [
    "ALL_DOMAINS",
    "DialogueTurn",
    "DomainBundle",
    "QuestionExample",
    "company",
    "fleet",
    "geography",
    "load_all_bundles",
    "load_bundle",
]
