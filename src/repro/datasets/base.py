"""Shared helpers for the synthetic domain generators.

All generators are deterministic: the same seed always produces the same
database, so corpora with embedded gold values stay valid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.lexicon.domain import DomainModel
from repro.sqlengine.database import Database


@dataclass
class Domain:
    """A bundled dataset: database builder + NL domain model + corpus."""

    name: str
    database: Database
    model: DomainModel

    def summary(self) -> str:
        return self.database.summary()


def rng_for(seed: int, stream: str) -> random.Random:
    """Independent deterministic stream per generator component."""
    return random.Random(f"{seed}:{stream}")


def pick_unique(rng: random.Random, pool: list[str], count: int) -> list[str]:
    """Sample ``count`` distinct names, suffixing when the pool runs out."""
    if count <= len(pool):
        return rng.sample(pool, count)
    out = list(pool)
    index = 2
    while len(out) < count:
        for name in pool:
            out.append(f"{name} {_roman(index)}")
            if len(out) == count:
                break
        index += 1
    return out[:count]


def _roman(number: int) -> str:
    numerals = [
        (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"), (100, "C"),
        (90, "XC"), (50, "L"), (40, "XL"), (10, "X"), (9, "IX"),
        (5, "V"), (4, "IV"), (1, "I"),
    ]
    out = []
    for value, symbol in numerals:
        while number >= value:
            out.append(symbol)
            number -= value
    return "".join(out)
