"""The company domain: departments, employees, customers, products, sales.

The schema shape deliberately differs from the fleet domain (a fact table
``sale`` with three FKs) so join inference is exercised on a star shape.
"""

from __future__ import annotations

from repro.datasets.base import pick_unique, rng_for
from repro.lexicon.domain import (
    AdjectiveSpec,
    AttributeSpec,
    CategoricalEntitySpec,
    DomainModel,
    EntitySpec,
    ValueSynonymSpec,
)
from repro.sqlengine import Column, Database, ForeignKey, SqlType, TableSchema

_DEPARTMENTS = [
    ("Sales", "Chicago"), ("Engineering", "Boston"), ("Marketing", "New York"),
    ("Finance", "Chicago"), ("Support", "Denver"), ("Research", "Boston"),
]

_TITLES = ["manager", "engineer", "analyst", "clerk", "director"]

_EMPLOYEE_NAMES = [
    "Garcia", "Smith", "Chen", "Patel", "Johnson", "Brown", "Davis",
    "Miller", "Wilson", "Moore", "Taylor", "Anderson", "Thomas", "Jackson",
    "White", "Harris", "Martin", "Thompson", "Martinez", "Robinson",
    "Clark", "Rodriguez", "Lewis", "Lee", "Walker", "Hall", "Allen",
    "Young", "Hernandez", "King", "Wright", "Lopez", "Hill", "Scott",
    "Green", "Adams", "Baker", "Gonzalez", "Nelson", "Carter",
]

_CUSTOMERS = [
    ("Acme Corp", "Chicago", "manufacturing"),
    ("Globex", "New York", "finance"),
    ("Initech", "Austin", "software"),
    ("Umbrella", "Raleigh", "pharma"),
    ("Stark Industries", "New York", "manufacturing"),
    ("Wayne Enterprises", "Gotham", "finance"),
    ("Tyrell", "Los Angeles", "software"),
    ("Cyberdyne", "Sunnyvale", "software"),
    ("Soylent", "New York", "food"),
    ("Hooli", "Palo Alto", "software"),
    ("Vandelay", "New York", "import"),
    ("Wonka", "Chicago", "food"),
]

_PRODUCTS = [
    ("Widget", "hardware", 19.99), ("Gadget", "hardware", 34.5),
    ("Sprocket", "hardware", 12.0), ("Gizmo", "hardware", 55.25),
    ("Doohickey", "hardware", 8.75), ("Console", "electronics", 249.0),
    ("Terminal", "electronics", 420.0), ("Printer", "electronics", 175.5),
    ("Compiler", "software", 99.0), ("Debugger", "software", 59.0),
]


def build_database(seed: int = 11, employees: int = 40, sales: int = 200) -> Database:
    """Build the company database (deterministic in ``seed``)."""
    db = Database("company")
    db.create_table(TableSchema(
        "department",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("city", SqlType.TEXT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "employee",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("title", SqlType.TEXT),
            Column("salary", SqlType.INT),
            Column("hired", SqlType.INT, comment="year"),
            Column("dept_id", SqlType.INT),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("dept_id", "department", "id")],
    ))
    db.create_table(TableSchema(
        "customer",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("city", SqlType.TEXT),
            Column("industry", SqlType.TEXT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "product",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("category", SqlType.TEXT),
            Column("price", SqlType.FLOAT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "sale",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("product_id", SqlType.INT),
            Column("customer_id", SqlType.INT),
            Column("employee_id", SqlType.INT),
            Column("amount", SqlType.INT, comment="units sold"),
            Column("year", SqlType.INT),
        ],
        primary_key="id",
        foreign_keys=[
            ForeignKey("product_id", "product", "id"),
            ForeignKey("customer_id", "customer", "id"),
            ForeignKey("employee_id", "employee", "id"),
        ],
    ))

    for i, (name, city) in enumerate(_DEPARTMENTS, start=1):
        db.insert("department", (i, name, city))
    rng = rng_for(seed, "employees")
    names = pick_unique(rng, _EMPLOYEE_NAMES, employees)
    for i, name in enumerate(names, start=1):
        title = rng.choice(_TITLES)
        base = {"manager": 60000, "engineer": 52000, "analyst": 45000,
                "clerk": 30000, "director": 80000}[title]
        db.insert(
            "employee",
            (
                i, name, title,
                base + rng.randint(-5000, 15000),
                rng.randint(1960, 1977),
                rng.randint(1, len(_DEPARTMENTS)),
            ),
        )
    for i, (name, city, industry) in enumerate(_CUSTOMERS, start=1):
        db.insert("customer", (i, name, city, industry))
    for i, (name, category, price) in enumerate(_PRODUCTS, start=1):
        db.insert("product", (i, name, category, price))
    rng = rng_for(seed, "sales")
    for i in range(1, sales + 1):
        db.insert(
            "sale",
            (
                i,
                rng.randint(1, len(_PRODUCTS)),
                rng.randint(1, len(_CUSTOMERS)),
                rng.randint(1, employees),
                rng.randint(1, 500),
                rng.randint(1974, 1977),
            ),
        )
    return db


def domain() -> DomainModel:
    """NL configuration for the company database."""
    return DomainModel(
        name="company",
        entities=[
            EntitySpec(
                "employee",
                ("employee", "worker", "person", "staff member", "salesman",
                 "everybody", "everyone"),
                ("name",),
            ),
            EntitySpec("department", ("department", "division"), ("name",)),
            EntitySpec("customer", ("customer", "client", "account"), ("name",)),
            EntitySpec("product", ("product", "item", "good"), ("name",)),
            EntitySpec("sale", ("sale", "order", "transaction"), ("id",)),
        ],
        attributes=[
            AttributeSpec("employee", "salary", ("salary", "pay", "wage", "earnings"),
                          ("dollars",)),
            AttributeSpec("employee", "hired", ("hired", "joined", "hiring year")),
            AttributeSpec("employee", "title", ("title", "job", "position", "role")),
            AttributeSpec("department", "city", ("city", "location")),
            AttributeSpec("customer", "industry", ("industry", "sector")),
            AttributeSpec("product", "price", ("price", "cost"), ("dollars",)),
            AttributeSpec("product", "category", ("category",)),
            AttributeSpec("sale", "amount", ("amount", "quantity", "units"),
                          ("units",)),
            AttributeSpec("sale", "year", ("year",)),
        ],
        adjectives=[
            AdjectiveSpec(
                "employee", "salary",
                superlative_max=("richest", "highest paid", "best paid"),
                superlative_min=("lowest paid", "worst paid"),
                comparative_more=("richer", "earning", "making"),
                comparative_less=("poorer",),
            ),
            AdjectiveSpec(
                "employee", "hired",
                superlative_max=("newest",),
                superlative_min=("oldest", "longest serving"),
                comparative_more=("newer",),
            ),
            AdjectiveSpec(
                "product", "price",
                superlative_max=("priciest", "most expensive", "dearest"),
                superlative_min=("cheapest", "least expensive"),
                comparative_more=("pricier", "costlier"),
                comparative_less=("cheaper",),
            ),
        ],
        value_synonyms=[
            ValueSynonymSpec("nyc", "department", "city", "New York"),
            ValueSynonymSpec("tech", "customer", "industry", "software"),
        ],
        categorical_entities=[
            # "the managers", "every engineer" — titles as employee nouns
            CategoricalEntitySpec("employee", "employee", "title"),
        ],
    )
