"""Question corpora with gold SQL, tagged by construct.

Each example pairs an English question with a gold SQL query (executable
on the bundled engine).  Correctness is judged by *answer-set equality*,
the standard for NLIDB evaluation: column names may differ, row order is
ignored (except both sides apply their own ORDER BY/LIMIT).

Feature tags (driving the Table-3 construct breakdown):

``select``  plain listing            ``join``        needs a join path
``count``   counting                 ``agg``         sum/avg/min/max
``attr``    attribute lookup         ``group``       group-by
``super``   superlative/top-k        ``compare``     numeric comparison
``negation`` negated condition       ``member``      or-lists (IN)
``nested``  nested subquery          ``order``       explicit ordering
``dialogue`` requires session context
``ambiguous`` multiple plausible readings (clarification-path material)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import company as company_mod
from repro.datasets import events as events_mod
from repro.datasets import fleet as fleet_mod
from repro.datasets import geography as geography_mod
from repro.datasets import saas as saas_mod
from repro.datasets.base import rng_for
from repro.lexicon.domain import DomainModel
from repro.sqlengine.database import Database


@dataclass(frozen=True)
class QuestionExample:
    """One evaluation item."""

    question: str
    gold_sql: str
    features: frozenset[str]
    domain: str

    def has(self, feature: str) -> bool:
        return feature in self.features


@dataclass(frozen=True)
class DialogueTurn:
    """One turn of a scripted session."""

    question: str
    gold_sql: str
    is_followup: bool


@dataclass
class DomainBundle:
    """Database + domain model + corpora for one domain."""

    name: str
    database: Database
    model: DomainModel
    corpus: list[QuestionExample] = field(default_factory=list)
    dialogues: list[list[DialogueTurn]] = field(default_factory=list)
    wild: list[QuestionExample] = field(default_factory=list)


def _ex(domain: str, question: str, sql: str, *features: str) -> QuestionExample:
    return QuestionExample(question, sql, frozenset(features), domain)


# ==========================================================================
# Fleet corpus
# ==========================================================================


def fleet_corpus(database: Database, seed: int = 3) -> list[QuestionExample]:
    rng = rng_for(seed, "fleet-corpus")
    examples: list[QuestionExample] = []
    add = examples.append
    d = "fleet"

    fleets = [r[0] for r in database.table("fleet").lookup_equal("id", 1)] and [
        row[1] for row in database.table("fleet").rows()
    ]
    types = [row[1] for row in database.table("shiptype").rows()]
    officer_names = {row[1] for row in database.table("officer").rows()}
    ship_names = [row[1] for row in database.table("ship").rows()]
    safe_ships = sorted(
        name for name in ship_names
        if name not in officer_names and " " not in name
    )
    ports = [row[1] for row in database.table("port").rows()]
    hq_names = {row[3] for row in database.table("fleet").rows()}
    safe_ports = sorted(p for p in ports if p not in hq_names and " " not in p)

    # --- plain listings -----------------------------------------------------
    add(_ex(d, "show all ships", "SELECT name FROM ship", "select"))
    add(_ex(d, "list the fleets", "SELECT name FROM fleet", "select"))
    add(_ex(d, "show me the ports", "SELECT name FROM port", "select"))
    add(_ex(d, "list all officers", "SELECT name FROM officer", "select"))
    for t in types:
        add(_ex(
            d, f"show the {t}s",
            "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
            f"ship.type_id = shiptype.id WHERE shiptype.name = '{t}'",
            "select", "join",
        ))

    # --- selection via joins ---------------------------------------------------
    for f in fleets:
        add(_ex(
            d, f"show the ships in the {f.lower()} fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name = '{f}'",
            "select", "join",
        ))
        add(_ex(
            d, f"which ships are in the {f.lower()} fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name = '{f}'",
            "select", "join",
        ))
    for p in safe_ports[:6]:
        add(_ex(
            d, f"ships from {p.lower()}",
            "SELECT DISTINCT ship.name FROM ship JOIN port ON "
            f"ship.home_port_id = port.id WHERE port.name = '{p}'",
            "select", "join",
        ))
    for t, f in [(types[0], fleets[0]), (types[4], fleets[1]), (types[2], fleets[2])]:
        add(_ex(
            d, f"{t}s in the {f.lower()} fleet",
            "SELECT DISTINCT ship.name FROM ship "
            "JOIN fleet ON ship.fleet_id = fleet.id "
            "JOIN shiptype ON ship.type_id = shiptype.id "
            f"WHERE fleet.name = '{f}' AND shiptype.name = '{t}'",
            "select", "join",
        ))

    # --- counting -----------------------------------------------------------------
    add(_ex(d, "how many ships are there", "SELECT COUNT(*) FROM ship", "count"))
    add(_ex(d, "how many officers are there", "SELECT COUNT(*) FROM officer", "count"))
    for t in types:
        add(_ex(
            d, f"how many {t}s are there",
            "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN shiptype ON "
            f"ship.type_id = shiptype.id WHERE shiptype.name = '{t}'",
            "count", "join",
        ))
    for f in fleets:
        add(_ex(
            d, f"how many ships does the {f.lower()} fleet have",
            "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name = '{f}'",
            "count", "join",
        ))

    # --- aggregates ------------------------------------------------------------------
    for t in types[:3]:
        add(_ex(
            d, f"what is the average displacement of the {t}s",
            "SELECT AVG(ship.displacement) FROM ship JOIN shiptype ON "
            f"ship.type_id = shiptype.id WHERE shiptype.name = '{t}'",
            "agg", "join",
        ))
    add(_ex(
        d, "what is the total crew of the carriers",
        "SELECT SUM(ship.crew) FROM ship JOIN shiptype ON "
        "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'",
        "agg", "join",
    ))
    add(_ex(
        d, "what is the maximum speed of the submarines",
        "SELECT MAX(ship.speed) FROM ship JOIN shiptype ON "
        "ship.type_id = shiptype.id WHERE shiptype.name = 'submarine'",
        "agg", "join",
    ))
    add(_ex(
        d, "average crew of the ships",
        "SELECT AVG(crew) FROM ship", "agg",
    ))
    for f in fleets[:2]:
        add(_ex(
            d, f"total displacement of the ships in the {f.lower()} fleet",
            "SELECT SUM(ship.displacement) FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name = '{f}'",
            "agg", "join",
        ))

    # --- attribute lookup ---------------------------------------------------------------
    for name in rng.sample(safe_ships, 8):
        add(_ex(
            d, f"what is the displacement of the {name.lower()}",
            f"SELECT displacement FROM ship WHERE name = '{name}'",
            "attr",
        ))
    for name in rng.sample(safe_ships, 4):
        add(_ex(
            d, f"what is the speed and length of the {name.lower()}",
            f"SELECT speed, length FROM ship WHERE name = '{name}'",
            "attr",
        ))
    for name in rng.sample(safe_ships, 4):
        add(_ex(
            d, f"the crew of the {name.lower()}",
            f"SELECT crew FROM ship WHERE name = '{name}'",
            "attr",
        ))

    # --- superlatives ----------------------------------------------------------------------
    add(_ex(
        d, "which ship has the largest displacement",
        "SELECT name FROM ship ORDER BY displacement DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the fastest ship",
        "SELECT name FROM ship ORDER BY speed DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the 3 oldest ships",
        "SELECT name FROM ship ORDER BY commissioned ASC LIMIT 3",
        "super",
    ))
    add(_ex(
        d, "the 5 largest ships",
        "SELECT name FROM ship ORDER BY displacement DESC LIMIT 5",
        "super",
    ))
    add(_ex(
        d, "the fastest submarine",
        "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
        "ship.type_id = shiptype.id WHERE shiptype.name = 'submarine' "
        "ORDER BY ship.speed DESC LIMIT 1",
        "super", "join",
    ))
    add(_ex(
        d, "which officer has the highest rank",
        "SELECT name FROM officer ORDER BY rank DESC LIMIT 1",
        "super",
    ))

    # --- comparisons ------------------------------------------------------------------------
    for n in (3000, 9000, 50000):
        add(_ex(
            d, f"ships with displacement over {n} tons",
            f"SELECT name FROM ship WHERE displacement > {n}",
            "compare",
        ))
    add(_ex(
        d, "ships with crew less than 150",
        "SELECT name FROM ship WHERE crew < 150", "compare",
    ))
    add(_ex(
        d, "ships faster than 32 knots",
        "SELECT name FROM ship WHERE speed > 32", "compare",
    ))
    add(_ex(
        d, "ships commissioned after 1970",
        "SELECT name FROM ship WHERE commissioned > 1970", "compare",
    ))
    add(_ex(
        d, "ships commissioned before 1960",
        "SELECT name FROM ship WHERE commissioned < 1960", "compare",
    ))
    add(_ex(
        d, "ships with crew between 100 and 300",
        "SELECT name FROM ship WHERE crew BETWEEN 100 AND 300", "compare",
    ))
    add(_ex(
        d, "ships with length of at least 1000 feet",
        "SELECT name FROM ship WHERE length >= 1000", "compare",
    ))
    add(_ex(
        d, "ships with more than 4000 men",
        "SELECT name FROM ship WHERE crew > 4000", "compare",
    ))

    # --- negation ------------------------------------------------------------------------------
    for f in fleets[:2]:
        add(_ex(
            d, f"ships that are not in the {f.lower()} fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name != '{f}'",
            "negation", "join",
        ))
    add(_ex(
        d, "officers who are not admirals",
        "SELECT name FROM officer WHERE rank != 'admiral'",
        "negation",
    ))

    # --- membership -------------------------------------------------------------------------------
    p1, p2 = safe_ports[0], safe_ports[1]
    add(_ex(
        d, f"ships from {p1.lower()} or {p2.lower()}",
        "SELECT DISTINCT ship.name FROM ship JOIN port ON "
        f"ship.home_port_id = port.id WHERE port.name IN ('{p1}', '{p2}')",
        "member", "join",
    ))
    add(_ex(
        d, f"carriers in the {fleets[0].lower()} or {fleets[1].lower()} fleet",
        "SELECT DISTINCT ship.name FROM ship "
        "JOIN fleet ON ship.fleet_id = fleet.id "
        "JOIN shiptype ON ship.type_id = shiptype.id "
        f"WHERE fleet.name IN ('{fleets[0]}', '{fleets[1]}') "
        "AND shiptype.name = 'carrier'",
        "member", "join",
    ))

    # --- nested ------------------------------------------------------------------------------------
    for name in rng.sample(safe_ships, 3):
        add(_ex(
            d, f"ships heavier than the {name.lower()}",
            "SELECT name FROM ship WHERE displacement > "
            f"(SELECT displacement FROM ship WHERE name = '{name}')",
            "nested", "compare",
        ))
    add(_ex(
        d, "ships heavier than average",
        "SELECT name FROM ship WHERE displacement > "
        "(SELECT AVG(displacement) FROM ship)",
        "nested", "compare",
    ))
    add(_ex(
        d, "ships with displacement above average",
        "SELECT name FROM ship WHERE displacement > "
        "(SELECT AVG(displacement) FROM ship)",
        "nested", "compare",
    ))

    # --- grouping -------------------------------------------------------------------------------------
    add(_ex(
        d, "how many ships are in each fleet",
        "SELECT fleet.name, COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
        "ship.fleet_id = fleet.id GROUP BY fleet.name ORDER BY fleet.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "how many ships per type",
        "SELECT shiptype.name, COUNT(DISTINCT ship.id) FROM ship JOIN shiptype "
        "ON ship.type_id = shiptype.id GROUP BY shiptype.name "
        "ORDER BY shiptype.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "how many officers per rank",
        "SELECT rank, COUNT(id) FROM officer GROUP BY rank ORDER BY rank",
        "group", "count",
    ))
    add(_ex(
        d, "average displacement per fleet",
        "SELECT fleet.name, AVG(ship.displacement) FROM ship JOIN fleet ON "
        "ship.fleet_id = fleet.id GROUP BY fleet.name ORDER BY fleet.name",
        "group", "agg", "join",
    ))

    # --- ordering ----------------------------------------------------------------------------------------
    add(_ex(
        d, "list the ships sorted by displacement descending",
        "SELECT name FROM ship ORDER BY displacement DESC",
        "order",
    ))
    add(_ex(
        d, "list the submarines sorted by speed descending",
        "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
        "ship.type_id = shiptype.id WHERE shiptype.name = 'submarine' "
        "ORDER BY ship.speed DESC",
        "order", "join",
    ))
    add(_ex(
        d, "show the officers ordered by name",
        "SELECT name FROM officer ORDER BY name",
        "order",
    ))

    # --- deliberately ambiguous -------------------------------------------
    # "kennedy" is a ship AND an officer; "norfolk" a port AND a fleet
    # headquarters; "pacific" a fleet, a fleet ocean and a deployment
    # ocean.  At the default clarification margin the scorer auto-resolves
    # to the gold reading; with a wide margin (the matrix's clarify sweep)
    # these come back AMBIGUOUS and exercise the clarification path.
    add(_ex(
        d, "what is the displacement of the kennedy",
        "SELECT displacement FROM ship WHERE name = 'Kennedy'",
        "attr", "ambiguous",
    ))
    add(_ex(
        d, "ships heavier than the kennedy",
        "SELECT name FROM ship WHERE displacement > "
        "(SELECT displacement FROM ship WHERE name = 'Kennedy')",
        "nested", "compare", "ambiguous",
    ))
    add(_ex(
        d, "ships from norfolk",
        "SELECT DISTINCT ship.name FROM ship JOIN port ON "
        "ship.home_port_id = port.id WHERE port.name = 'Norfolk'",
        "select", "join", "ambiguous",
    ))
    add(_ex(
        d, "how many ships are in the pacific fleet",
        "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
        "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'",
        "count", "join", "ambiguous",
    ))
    add(_ex(
        d, "the largest ship",
        "SELECT name FROM ship ORDER BY displacement DESC LIMIT 1",
        "super", "ambiguous",
    ))

    return examples


def fleet_dialogues(database: Database) -> list[list[DialogueTurn]]:
    """Scripted fleet sessions for the dialogue benchmark (T4)."""
    ships_in = (
        "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet "
        "ON ship.fleet_id = fleet.id WHERE fleet.name = '{f}'"
    )
    return [
        [
            DialogueTurn(
                "how many ships are in the pacific fleet",
                ships_in.format(f="Pacific"), False,
            ),
            DialogueTurn(
                "what about the atlantic fleet",
                ships_in.format(f="Atlantic"), True,
            ),
            DialogueTurn(
                "and the mediterranean fleet",
                ships_in.format(f="Mediterranean"), True,
            ),
            DialogueTurn(
                "how many of them are submarines",
                "SELECT COUNT(DISTINCT ship.id) FROM ship "
                "JOIN fleet ON ship.fleet_id = fleet.id "
                "JOIN shiptype ON ship.type_id = shiptype.id "
                "WHERE fleet.name = 'Mediterranean' "
                "AND shiptype.name = 'submarine'",
                True,
            ),
        ],
        [
            DialogueTurn(
                "show the carriers",
                "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
                "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'",
                False,
            ),
            DialogueTurn(
                "only the ones commissioned after 1970",
                "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
                "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier' "
                "AND ship.commissioned > 1970",
                True,
            ),
            DialogueTurn(
                "what about the cruisers",
                "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
                "ship.type_id = shiptype.id WHERE shiptype.name = 'cruiser' "
                "AND ship.commissioned > 1970",
                True,
            ),
        ],
        [
            DialogueTurn(
                "list the ships in the pacific fleet",
                "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
                "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'",
                False,
            ),
            DialogueTurn(
                "with displacement over 8000 tons",
                "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
                "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific' "
                "AND ship.displacement > 8000",
                True,
            ),
            DialogueTurn(
                "how many of them are there",
                "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
                "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific' "
                "AND ship.displacement > 8000",
                True,
            ),
        ],
    ]


# ==========================================================================
# Company corpus
# ==========================================================================


def company_corpus(database: Database, seed: int = 5) -> list[QuestionExample]:
    rng = rng_for(seed, "company-corpus")
    examples: list[QuestionExample] = []
    add = examples.append
    d = "company"

    departments = [row[1] for row in database.table("department").rows()]
    titles = sorted({row[2] for row in database.table("employee").rows()})
    employee_names = [row[1] for row in database.table("employee").rows()]
    products = [row[1] for row in database.table("product").rows()]
    customers = [row[1] for row in database.table("customer").rows()]
    simple_customers = [c for c in customers if " " not in c]

    add(_ex(d, "list all employees", "SELECT name FROM employee", "select"))
    add(_ex(d, "show the departments", "SELECT name FROM department", "select"))
    add(_ex(d, "show me the products", "SELECT name FROM product", "select"))
    add(_ex(d, "list the customers", "SELECT name FROM customer", "select"))

    for dept in departments:
        add(_ex(
            d, f"show the employees in the {dept.lower()} department",
            "SELECT DISTINCT employee.name FROM employee JOIN department ON "
            f"employee.dept_id = department.id WHERE department.name = '{dept}'",
            "select", "join",
        ))
    for title in titles:
        add(_ex(
            d, f"list the {title}s",
            f"SELECT name FROM employee WHERE title = '{title}'",
            "select",
        ))

    add(_ex(d, "how many employees are there", "SELECT COUNT(*) FROM employee", "count"))
    add(_ex(d, "how many customers are there", "SELECT COUNT(*) FROM customer", "count"))
    for dept in departments[:4]:
        add(_ex(
            d, f"how many employees are in the {dept.lower()} department",
            "SELECT COUNT(DISTINCT employee.id) FROM employee JOIN department "
            f"ON employee.dept_id = department.id WHERE department.name = '{dept}'",
            "count", "join",
        ))
    for title in titles[:3]:
        add(_ex(
            d, f"how many {title}s are there",
            f"SELECT COUNT(*) FROM employee WHERE title = '{title}'",
            "count",
        ))

    add(_ex(
        d, "what is the average salary of the employees",
        "SELECT AVG(salary) FROM employee", "agg",
    ))
    for title in titles[:3]:
        add(_ex(
            d, f"what is the average salary of the {title}s",
            f"SELECT AVG(salary) FROM employee WHERE title = '{title}'",
            "agg",
        ))
    add(_ex(
        d, "total salary of the employees in the sales department",
        "SELECT SUM(employee.salary) FROM employee JOIN department ON "
        "employee.dept_id = department.id WHERE department.name = 'Sales'",
        "agg", "join",
    ))
    add(_ex(
        d, "what is the maximum price of the products",
        "SELECT MAX(price) FROM product", "agg",
    ))

    for name in rng.sample(employee_names, 6):
        add(_ex(
            d, f"what is the salary of {name.lower()}",
            f"SELECT salary FROM employee WHERE name = '{name}'",
            "attr",
        ))
    for name in rng.sample(products, 4):
        add(_ex(
            d, f"what is the price of the {name.lower()}",
            f"SELECT price FROM product WHERE name = '{name}'",
            "attr",
        ))
    for name in rng.sample(employee_names, 3):
        add(_ex(
            d, f"what is the title of {name.lower()}",
            f"SELECT title FROM employee WHERE name = '{name}'",
            "attr",
        ))

    add(_ex(
        d, "which employee has the highest salary",
        "SELECT name FROM employee ORDER BY salary DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the cheapest product",
        "SELECT name FROM product ORDER BY price ASC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the most expensive product",
        "SELECT name FROM product ORDER BY price DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the 3 highest paid employees",
        "SELECT name FROM employee ORDER BY salary DESC LIMIT 3",
        "super",
    ))
    add(_ex(
        d, "the longest serving employee",
        "SELECT name FROM employee ORDER BY hired ASC LIMIT 1",
        "super",
    ))

    for n in (50000, 60000, 70000):
        add(_ex(
            d, f"employees with salary over {n}",
            f"SELECT name FROM employee WHERE salary > {n}",
            "compare",
        ))
    add(_ex(
        d, "employees hired after 1970",
        "SELECT name FROM employee WHERE hired > 1970", "compare",
    ))
    add(_ex(
        d, "employees hired before 1965",
        "SELECT name FROM employee WHERE hired < 1965", "compare",
    ))
    add(_ex(
        d, "products with price under 50",
        "SELECT name FROM product WHERE price < 50", "compare",
    ))
    add(_ex(
        d, "employees with salary between 40000 and 60000",
        "SELECT name FROM employee WHERE salary BETWEEN 40000 AND 60000",
        "compare",
    ))

    add(_ex(
        d, "employees who are not managers",
        "SELECT name FROM employee WHERE title != 'manager'",
        "negation",
    ))
    add(_ex(
        d, "employees that are not in the sales department",
        "SELECT DISTINCT employee.name FROM employee JOIN department ON "
        "employee.dept_id = department.id WHERE department.name != 'Sales'",
        "negation", "join",
    ))

    add(_ex(
        d, "employees in the sales or marketing department",
        "SELECT DISTINCT employee.name FROM employee JOIN department ON "
        "employee.dept_id = department.id "
        "WHERE department.name IN ('Sales', 'Marketing')",
        "member", "join",
    ))
    c1, c2 = simple_customers[0], simple_customers[1]
    add(_ex(
        d, "customers in the software or finance industry",
        "SELECT name FROM customer WHERE industry IN ('software', 'finance')",
        "member",
    ))

    for name in rng.sample(employee_names, 3):
        add(_ex(
            d, f"employees richer than {name.lower()}",
            "SELECT name FROM employee WHERE salary > "
            f"(SELECT salary FROM employee WHERE name = '{name}')",
            "nested", "compare",
        ))
    add(_ex(
        d, "employees with salary above average",
        "SELECT name FROM employee WHERE salary > "
        "(SELECT AVG(salary) FROM employee)",
        "nested", "compare",
    ))
    add(_ex(
        d, "products pricier than average",
        "SELECT name FROM product WHERE price > (SELECT AVG(price) FROM product)",
        "nested", "compare",
    ))

    add(_ex(
        d, "how many employees are in each department",
        "SELECT department.name, COUNT(DISTINCT employee.id) FROM employee "
        "JOIN department ON employee.dept_id = department.id "
        "GROUP BY department.name ORDER BY department.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "how many employees per title",
        "SELECT title, COUNT(id) FROM employee GROUP BY title ORDER BY title",
        "group", "count",
    ))
    add(_ex(
        d, "average salary per department",
        "SELECT department.name, AVG(employee.salary) FROM employee "
        "JOIN department ON employee.dept_id = department.id "
        "GROUP BY department.name ORDER BY department.name",
        "group", "agg", "join",
    ))
    add(_ex(
        d, "average price per category",
        "SELECT category, AVG(price) FROM product GROUP BY category "
        "ORDER BY category",
        "group", "agg",
    ))

    add(_ex(
        d, "list the employees sorted by salary descending",
        "SELECT name FROM employee ORDER BY salary DESC",
        "order",
    ))
    add(_ex(
        d, "show the products ordered by price",
        "SELECT name FROM product ORDER BY price",
        "order",
    ))

    return examples


def company_dialogues(database: Database) -> list[list[DialogueTurn]]:
    return [
        [
            DialogueTurn(
                "how many employees are in the sales department",
                "SELECT COUNT(DISTINCT employee.id) FROM employee JOIN department "
                "ON employee.dept_id = department.id WHERE department.name = 'Sales'",
                False,
            ),
            DialogueTurn(
                "what about the engineering department",
                "SELECT COUNT(DISTINCT employee.id) FROM employee JOIN department "
                "ON employee.dept_id = department.id "
                "WHERE department.name = 'Engineering'",
                True,
            ),
            DialogueTurn(
                "how many of them are engineers",
                "SELECT COUNT(DISTINCT employee.id) FROM employee JOIN department "
                "ON employee.dept_id = department.id "
                "WHERE department.name = 'Engineering' "
                "AND employee.title = 'engineer'",
                True,
            ),
        ],
        [
            DialogueTurn(
                "show the managers",
                "SELECT name FROM employee WHERE title = 'manager'",
                False,
            ),
            DialogueTurn(
                "only the ones hired after 1970",
                "SELECT name FROM employee WHERE title = 'manager' "
                "AND hired > 1970",
                True,
            ),
            DialogueTurn(
                "with salary over 60000",
                "SELECT name FROM employee WHERE title = 'manager' "
                "AND hired > 1970 AND salary > 60000",
                True,
            ),
        ],
    ]


# ==========================================================================
# Geography corpus
# ==========================================================================


def geography_corpus(database: Database, seed: int = 9) -> list[QuestionExample]:
    rng = rng_for(seed, "geo-corpus")
    examples: list[QuestionExample] = []
    add = examples.append
    d = "geography"

    continents = sorted({row[2] for row in database.table("country").rows()})
    countries = [row[1] for row in database.table("country").rows()]
    simple_countries = [c for c in countries if " " not in c]
    rivers = [row[1] for row in database.table("river").rows()]
    simple_rivers = [r for r in rivers if " " not in r]
    mountains = [row[1] for row in database.table("mountain").rows()]
    simple_mountains = [m for m in mountains if " " not in m]

    add(_ex(d, "list all countries", "SELECT name FROM country", "select"))
    add(_ex(d, "show the rivers", "SELECT name FROM river", "select"))
    add(_ex(d, "show me the mountains", "SELECT name FROM mountain", "select"))
    add(_ex(d, "list the cities", "SELECT name FROM city", "select"))

    for continent in continents:
        add(_ex(
            d, f"show the countries in {continent}",
            f"SELECT name FROM country WHERE continent = '{continent}'",
            "select",
        ))
    for country in rng.sample(simple_countries, 6):
        add(_ex(
            d, f"show the cities in {country}",
            "SELECT DISTINCT city.name FROM city JOIN country ON "
            f"city.country_id = country.id WHERE country.name = '{country}'",
            "select", "join",
        ))
        add(_ex(
            d, f"which rivers are in {country}",
            "SELECT DISTINCT river.name FROM river JOIN country ON "
            f"river.country_id = country.id WHERE country.name = '{country}'",
            "select", "join",
        ))

    add(_ex(d, "how many countries are there", "SELECT COUNT(*) FROM country", "count"))
    add(_ex(d, "how many rivers are there", "SELECT COUNT(*) FROM river", "count"))
    for country in rng.sample(simple_countries, 4):
        add(_ex(
            d, f"how many cities are in {country}",
            "SELECT COUNT(DISTINCT city.id) FROM city JOIN country ON "
            f"city.country_id = country.id WHERE country.name = '{country}'",
            "count", "join",
        ))
    for continent in continents[:3]:
        add(_ex(
            d, f"how many countries are in {continent}",
            f"SELECT COUNT(*) FROM country WHERE continent = '{continent}'",
            "count",
        ))

    add(_ex(
        d, "what is the average population of the countries",
        "SELECT AVG(population) FROM country", "agg",
    ))
    add(_ex(
        d, "what is the total area of the countries in europe",
        "SELECT SUM(area) FROM country WHERE continent = 'europe'",
        "agg",
    ))
    add(_ex(
        d, "what is the maximum height of the mountains",
        "SELECT MAX(height) FROM mountain", "agg",
    ))
    add(_ex(
        d, "average length of the rivers",
        "SELECT AVG(length) FROM river", "agg",
    ))

    for country in rng.sample(simple_countries, 5):
        add(_ex(
            d, f"what is the population of {country}",
            f"SELECT population FROM country WHERE name = '{country}'",
            "attr",
        ))
    for river in rng.sample(simple_rivers, 4):
        add(_ex(
            d, f"what is the length of the {river}",
            f"SELECT length FROM river WHERE name = '{river}'",
            "attr",
        ))
    for mountain in rng.sample(simple_mountains, 4):
        add(_ex(
            d, f"what is the height of {mountain}",
            f"SELECT height FROM mountain WHERE name = '{mountain}'",
            "attr",
        ))

    add(_ex(
        d, "which country has the largest population",
        "SELECT name FROM country ORDER BY population DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the longest river",
        "SELECT name FROM river ORDER BY length DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the highest mountain",
        "SELECT name FROM mountain ORDER BY height DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the 3 largest cities",
        "SELECT name FROM city ORDER BY population DESC LIMIT 3",
        "super",
    ))
    add(_ex(
        d, "the smallest country",
        "SELECT name FROM country ORDER BY population ASC LIMIT 1",
        "super",
    ))

    add(_ex(
        d, "countries with population over 100000",
        "SELECT name FROM country WHERE population > 100000",
        "compare",
    ))
    add(_ex(
        d, "rivers longer than 4000 km",
        "SELECT name FROM river WHERE length > 4000", "compare",
    ))
    add(_ex(
        d, "mountains higher than 6000 meters",
        "SELECT name FROM mountain WHERE height > 6000", "compare",
    ))
    add(_ex(
        d, "cities with population under 1000",
        "SELECT name FROM city WHERE population < 1000", "compare",
    ))
    add(_ex(
        d, "countries with area between 300 and 1000",
        "SELECT name FROM country WHERE area BETWEEN 300 AND 1000",
        "compare",
    ))

    add(_ex(
        d, "countries that are not in europe",
        "SELECT name FROM country WHERE continent != 'europe'",
        "negation",
    ))
    add(_ex(
        d, "cities that are not in usa",
        "SELECT DISTINCT city.name FROM city JOIN country ON "
        "city.country_id = country.id WHERE country.name != 'usa'",
        "negation", "join",
    ))

    add(_ex(
        d, "countries in europe or asia",
        "SELECT name FROM country WHERE continent IN ('europe', 'asia')",
        "member",
    ))
    add(_ex(
        d, "cities in france or spain",
        "SELECT DISTINCT city.name FROM city JOIN country ON "
        "city.country_id = country.id WHERE country.name IN ('france', 'spain')",
        "member", "join",
    ))

    add(_ex(
        d, "rivers longer than the rhine",
        "SELECT name FROM river WHERE length > "
        "(SELECT length FROM river WHERE name = 'rhine')",
        "nested", "compare",
    ))
    add(_ex(
        d, "mountains higher than the fuji",
        "SELECT name FROM mountain WHERE height > "
        "(SELECT height FROM mountain WHERE name = 'fuji')",
        "nested", "compare",
    ))
    add(_ex(
        d, "countries with population above average",
        "SELECT name FROM country WHERE population > "
        "(SELECT AVG(population) FROM country)",
        "nested", "compare",
    ))

    add(_ex(
        d, "how many countries are in each continent",
        "SELECT continent, COUNT(id) FROM country GROUP BY continent "
        "ORDER BY continent",
        "group", "count",
    ))
    add(_ex(
        d, "how many cities are in each country",
        "SELECT country.name, COUNT(DISTINCT city.id) FROM city JOIN country "
        "ON city.country_id = country.id GROUP BY country.name "
        "ORDER BY country.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "average population per continent",
        "SELECT continent, AVG(population) FROM country GROUP BY continent "
        "ORDER BY continent",
        "group", "agg",
    ))

    add(_ex(
        d, "list the rivers sorted by length descending",
        "SELECT name FROM river ORDER BY length DESC",
        "order",
    ))
    add(_ex(
        d, "show the mountains ordered by height",
        "SELECT name FROM mountain ORDER BY height",
        "order",
    ))

    return examples


def geography_dialogues(database: Database) -> list[list[DialogueTurn]]:
    return [
        [
            DialogueTurn(
                "how many cities are in usa",
                "SELECT COUNT(DISTINCT city.id) FROM city JOIN country ON "
                "city.country_id = country.id WHERE country.name = 'usa'",
                False,
            ),
            DialogueTurn(
                "what about china",
                "SELECT COUNT(DISTINCT city.id) FROM city JOIN country ON "
                "city.country_id = country.id WHERE country.name = 'china'",
                True,
            ),
        ],
        [
            DialogueTurn(
                "show the countries in europe",
                "SELECT name FROM country WHERE continent = 'europe'",
                False,
            ),
            DialogueTurn(
                "with population over 50000",
                "SELECT name FROM country WHERE continent = 'europe' "
                "AND population > 50000",
                True,
            ),
            DialogueTurn(
                "how many of them are there",
                "SELECT COUNT(*) FROM country WHERE continent = 'europe' "
                "AND population > 50000",
                True,
            ),
        ],
    ]


# ==========================================================================
# Saas corpus
#
# The schema is a *chain* (ticket -> project -> tenant), so "tickets of
# acme" must route through a table the question never names — the
# Steiner-tree join-inference case the star-shaped domains cannot reach.
# ==========================================================================


def saas_corpus(database: Database, seed: int = 11) -> list[QuestionExample]:
    rng = rng_for(seed, "saas-corpus")
    examples: list[QuestionExample] = []
    add = examples.append
    d = "saas"

    tenants = [row[1] for row in database.table("tenant").rows()]
    statuses = sorted(set(database.table("ticket").column_values("status")))
    stages = sorted(set(database.table("project").column_values("stage")))
    member_names = sorted(set(database.table("member").column_values("name")))

    # --- plain listings -----------------------------------------------------
    add(_ex(d, "show all tenants", "SELECT name FROM tenant", "select"))
    add(_ex(d, "list the projects", "SELECT name FROM project", "select"))
    add(_ex(d, "show me the members", "SELECT name FROM member", "select"))
    add(_ex(d, "list all tickets", "SELECT code FROM ticket", "select"))
    for s in statuses:
        add(_ex(
            d, f"show the {s} tickets",
            f"SELECT code FROM ticket WHERE status = '{s}'",
            "select", "attr",
        ))
    for stage in stages:
        add(_ex(
            d, f"which projects are {stage}",
            f"SELECT name FROM project WHERE stage = '{stage}'",
            "select", "attr",
        ))

    # --- selection via joins (1 hop) ---------------------------------------
    for t in rng.sample(tenants, 3):
        add(_ex(
            d, f"the projects of {t.lower()}",
            "SELECT DISTINCT project.name FROM project JOIN tenant ON "
            f"project.tenant_id = tenant.id WHERE tenant.name = '{t}'",
            "select", "join",
        ))
    for t in rng.sample(tenants, 2):
        add(_ex(
            d, f"members of {t.lower()}",
            "SELECT DISTINCT member.name FROM member JOIN tenant ON "
            f"member.tenant_id = tenant.id WHERE tenant.name = '{t}'",
            "select", "join",
        ))
    add(_ex(
        d, "tickets in the apollo project",
        "SELECT DISTINCT ticket.code FROM ticket JOIN project ON "
        "ticket.project_id = project.id WHERE project.name = 'Apollo'",
        "select", "join",
    ))
    add(_ex(
        d, "admins of globex",
        "SELECT DISTINCT member.name FROM member JOIN tenant ON "
        "member.tenant_id = tenant.id WHERE member.role = 'admin' "
        "AND tenant.name = 'Globex'",
        "select", "join",
    ))
    for name in rng.sample(member_names, 2):
        add(_ex(
            d, f"tickets assigned to {name.lower()}",
            "SELECT DISTINCT ticket.code FROM ticket JOIN member ON "
            f"ticket.assignee_id = member.id WHERE member.name = '{name}'",
            "select", "join",
        ))

    # --- selection via joins (2 hops, Steiner path) ------------------------
    # Assignees are drawn from the owning tenant's members, so the gold
    # project-path SQL agrees with the assignee-path tree the inference
    # may pick instead.
    for t in rng.sample(tenants, 2):
        add(_ex(
            d, f"tickets of {t.lower()}",
            "SELECT DISTINCT ticket.code FROM ticket "
            "JOIN project ON ticket.project_id = project.id "
            "JOIN tenant ON project.tenant_id = tenant.id "
            f"WHERE tenant.name = '{t}'",
            "select", "join",
        ))

    # --- attribute lookups --------------------------------------------------
    add(_ex(d, "the seats of acme",
            "SELECT seats FROM tenant WHERE name = 'Acme'", "attr"))
    add(_ex(d, "what is the plan of umbrella",
            "SELECT plan FROM tenant WHERE name = 'Umbrella'", "attr"))
    add(_ex(d, "the region of cyberdyne",
            "SELECT region FROM tenant WHERE name = 'Cyberdyne'", "attr"))
    add(_ex(d, "the status of t1005",
            "SELECT status FROM ticket WHERE code = 'T1005'", "attr"))
    for name in rng.sample(member_names, 2):
        add(_ex(
            d, f"what is the role of {name.lower()}",
            f"SELECT role FROM member WHERE name = '{name}'",
            "attr",
        ))

    # --- counting -----------------------------------------------------------
    add(_ex(d, "how many tickets are there",
            "SELECT COUNT(*) FROM ticket", "count"))
    add(_ex(d, "how many tenants are there",
            "SELECT COUNT(*) FROM tenant", "count"))
    add(_ex(d, "how many developers are there",
            "SELECT COUNT(*) FROM member WHERE role = 'developer'", "count"))
    add(_ex(
        d, "how many members does globex have",
        "SELECT COUNT(DISTINCT member.id) FROM member JOIN tenant ON "
        "member.tenant_id = tenant.id WHERE tenant.name = 'Globex'",
        "count", "join",
    ))
    add(_ex(
        d, "how many open tickets does hooli have",
        "SELECT COUNT(DISTINCT ticket.id) FROM ticket "
        "JOIN project ON ticket.project_id = project.id "
        "JOIN tenant ON project.tenant_id = tenant.id "
        "WHERE ticket.status = 'open' AND tenant.name = 'Hooli'",
        "count", "join",
    ))
    for t in rng.sample(tenants, 2):
        add(_ex(
            d, f"how many tickets does {t.lower()} have",
            "SELECT COUNT(DISTINCT ticket.id) FROM ticket "
            "JOIN project ON ticket.project_id = project.id "
            "JOIN tenant ON project.tenant_id = tenant.id "
            f"WHERE tenant.name = '{t}'",
            "count", "join",
        ))

    # --- aggregates ---------------------------------------------------------
    add(_ex(d, "the average seats of the tenants",
            "SELECT AVG(seats) FROM tenant", "agg"))
    add(_ex(d, "the total seats of the tenants",
            "SELECT SUM(seats) FROM tenant", "agg"))
    add(_ex(d, "the average priority of the open tickets",
            "SELECT AVG(priority) FROM ticket WHERE status = 'open'", "agg"))

    # --- superlatives -------------------------------------------------------
    add(_ex(d, "the biggest tenant",
            "SELECT name FROM tenant ORDER BY seats DESC LIMIT 1", "super"))
    add(_ex(d, "the smallest tenant",
            "SELECT name FROM tenant ORDER BY seats ASC LIMIT 1", "super"))
    add(_ex(d, "the most urgent ticket",
            "SELECT code FROM ticket ORDER BY priority DESC LIMIT 1", "super"))
    add(_ex(d, "the oldest ticket",
            "SELECT code FROM ticket ORDER BY opened ASC LIMIT 1", "super"))
    add(_ex(d, "the newest ticket",
            "SELECT code FROM ticket ORDER BY opened DESC LIMIT 1", "super"))

    # --- comparisons --------------------------------------------------------
    add(_ex(d, "which tenants have more than 100 seats",
            "SELECT name FROM tenant WHERE seats > 100", "compare"))
    add(_ex(d, "tenants with fewer than 50 seats",
            "SELECT name FROM tenant WHERE seats < 50", "compare"))
    add(_ex(d, "tickets with priority over 3",
            "SELECT code FROM ticket WHERE priority > 3", "compare"))
    add(_ex(d, "which tickets have priority over 4",
            "SELECT code FROM ticket WHERE priority > 4", "compare"))
    add(_ex(d, "tickets opened before 1973",
            "SELECT code FROM ticket WHERE opened < 1973", "compare"))
    add(_ex(d, "tickets opened after 1975",
            "SELECT code FROM ticket WHERE opened > 1975", "compare"))

    # --- negation -----------------------------------------------------------
    add(_ex(d, "members that are not developers",
            "SELECT name FROM member WHERE role != 'developer'", "negation"))
    add(_ex(d, "tenants that are not on the free plan",
            "SELECT name FROM tenant WHERE plan != 'free'", "negation"))
    add(_ex(d, "tickets that are not open",
            "SELECT code FROM ticket WHERE status != 'open'", "negation"))

    # --- membership ---------------------------------------------------------
    add(_ex(
        d, "members in the acme or globex tenant",
        "SELECT DISTINCT member.name FROM member JOIN tenant ON "
        "member.tenant_id = tenant.id "
        "WHERE tenant.name IN ('Acme', 'Globex')",
        "member", "join",
    ))
    add(_ex(
        d, "tenants on the free or starter plan",
        "SELECT name FROM tenant WHERE plan IN ('free', 'starter')",
        "member",
    ))
    add(_ex(
        d, "projects from initech or umbrella",
        "SELECT DISTINCT project.name FROM project JOIN tenant ON "
        "project.tenant_id = tenant.id "
        "WHERE tenant.name IN ('Initech', 'Umbrella')",
        "member", "join",
    ))

    # --- nested -------------------------------------------------------------
    add(_ex(
        d, "tenants bigger than acme",
        "SELECT name FROM tenant WHERE seats > "
        "(SELECT seats FROM tenant WHERE name = 'Acme')",
        "nested", "compare",
    ))
    add(_ex(
        d, "tenants with seats above average",
        "SELECT name FROM tenant WHERE seats > "
        "(SELECT AVG(seats) FROM tenant)",
        "nested", "compare",
    ))
    add(_ex(
        d, "tickets hotter than t1005",
        "SELECT code FROM ticket WHERE priority > "
        "(SELECT priority FROM ticket WHERE code = 'T1005')",
        "nested", "compare",
    ))
    add(_ex(
        d, "tickets with priority above average",
        "SELECT code FROM ticket WHERE priority > "
        "(SELECT AVG(priority) FROM ticket)",
        "nested", "compare",
    ))
    add(_ex(
        d, "tickets newer than t1005",
        "SELECT code FROM ticket WHERE opened > "
        "(SELECT opened FROM ticket WHERE code = 'T1005')",
        "nested", "compare",
    ))

    # --- grouping -----------------------------------------------------------
    add(_ex(
        d, "how many tickets are in each project",
        "SELECT project.name, COUNT(DISTINCT ticket.id) FROM ticket JOIN "
        "project ON ticket.project_id = project.id GROUP BY project.name "
        "ORDER BY project.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "how many tickets per status",
        "SELECT status, COUNT(id) FROM ticket GROUP BY status ORDER BY status",
        "group", "count",
    ))
    add(_ex(
        d, "how many members per role",
        "SELECT role, COUNT(id) FROM member GROUP BY role ORDER BY role",
        "group", "count",
    ))
    add(_ex(
        d, "how many projects are in each tenant",
        "SELECT tenant.name, COUNT(DISTINCT project.id) FROM project JOIN "
        "tenant ON project.tenant_id = tenant.id GROUP BY tenant.name "
        "ORDER BY tenant.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "average priority per status",
        "SELECT status, AVG(priority) FROM ticket GROUP BY status "
        "ORDER BY status",
        "group", "agg",
    ))
    add(_ex(
        d, "average seats per plan",
        "SELECT plan, AVG(seats) FROM tenant GROUP BY plan ORDER BY plan",
        "group", "agg",
    ))

    # --- ordering -----------------------------------------------------------
    add(_ex(d, "list the tenants by seats",
            "SELECT name FROM tenant ORDER BY seats ASC", "order"))
    add(_ex(d, "list the tenants sorted by seats descending",
            "SELECT name FROM tenant ORDER BY seats DESC", "order"))
    add(_ex(d, "list the tickets sorted by priority descending",
            "SELECT code FROM ticket ORDER BY priority DESC", "order"))

    return examples


def saas_dialogues(database: Database) -> list[list[DialogueTurn]]:
    tickets_of = (
        "SELECT COUNT(DISTINCT ticket.id) FROM ticket "
        "JOIN project ON ticket.project_id = project.id "
        "JOIN tenant ON project.tenant_id = tenant.id "
        "WHERE tenant.name = '{t}'"
    )
    return [
        [
            DialogueTurn(
                "how many tickets does acme have",
                tickets_of.format(t="Acme"), False,
            ),
            DialogueTurn(
                "what about globex",
                tickets_of.format(t="Globex"), True,
            ),
            DialogueTurn(
                "how many of them are open",
                tickets_of.format(t="Globex").replace(
                    "WHERE ", "WHERE ticket.status = 'open' AND "
                ),
                True,
            ),
        ],
        [
            DialogueTurn(
                "show the open tickets",
                "SELECT code FROM ticket WHERE status = 'open'",
                False,
            ),
            DialogueTurn(
                "only the ones with priority over 3",
                "SELECT code FROM ticket WHERE status = 'open' "
                "AND priority > 3",
                True,
            ),
            DialogueTurn(
                "what about the closed tickets",
                "SELECT code FROM ticket WHERE status = 'closed' "
                "AND priority > 3",
                True,
            ),
        ],
    ]


# ==========================================================================
# Events corpus
#
# A fact table (event) with two dimension chains; the location chain
# (event -> host -> datacenter) is the second Steiner-tree case.
# ==========================================================================


def events_corpus(database: Database, seed: int = 13) -> list[QuestionExample]:
    rng = rng_for(seed, "events-corpus")
    examples: list[QuestionExample] = []
    add = examples.append
    d = "events"

    datacenters = [row[1] for row in database.table("datacenter").rows()]
    kinds = sorted(set(database.table("event").column_values("kind")))
    services = [row[1] for row in database.table("service").rows()]

    # --- plain listings -----------------------------------------------------
    add(_ex(d, "show all hosts", "SELECT name FROM host", "select"))
    add(_ex(d, "list the services", "SELECT name FROM service", "select"))
    add(_ex(d, "list the datacenters", "SELECT name FROM datacenter", "select"))
    add(_ex(d, "show all services", "SELECT name FROM service", "select"))
    for kind in kinds:
        add(_ex(
            d, f"show the {kind}s",
            f"SELECT id FROM event WHERE kind = '{kind}'",
            "select", "attr",
        ))
    add(_ex(d, "which services are critical",
            "SELECT name FROM service WHERE tier = 'critical'",
            "select", "attr"))

    # --- selection via joins (1 hop) ---------------------------------------
    for dc in rng.sample(datacenters, 2):
        add(_ex(
            d, f"the hosts of {dc}",
            "SELECT DISTINCT host.name FROM host JOIN datacenter ON "
            f"host.datacenter_id = datacenter.id WHERE datacenter.name = '{dc}'",
            "select", "join",
        ))
    add(_ex(
        d, "hosts in singapore",
        "SELECT DISTINCT host.name FROM host JOIN datacenter ON "
        "host.datacenter_id = datacenter.id "
        "WHERE datacenter.name = 'singapore'",
        "select", "join",
    ))
    for svc in rng.sample(services, 2):
        add(_ex(
            d, f"events of {svc}",
            "SELECT DISTINCT event.id FROM event JOIN service ON "
            f"event.service_id = service.id WHERE service.name = '{svc}'",
            "select", "join",
        ))
    add(_ex(
        d, "restarts of auth",
        "SELECT DISTINCT event.id FROM event JOIN service ON "
        "event.service_id = service.id WHERE event.kind = 'restart' "
        "AND service.name = 'auth'",
        "select", "join",
    ))
    add(_ex(
        d, "warnings of the gateway service",
        "SELECT DISTINCT event.id FROM event JOIN service ON "
        "event.service_id = service.id WHERE event.kind = 'warning' "
        "AND service.name = 'gateway'",
        "select", "join",
    ))

    # --- attribute lookups --------------------------------------------------
    add(_ex(d, "the country of tokyo",
            "SELECT country FROM datacenter WHERE name = 'tokyo'", "attr"))
    add(_ex(d, "what is the country of dublin",
            "SELECT country FROM datacenter WHERE name = 'dublin'", "attr"))
    add(_ex(d, "what is the tier of checkout",
            "SELECT tier FROM service WHERE name = 'checkout'", "attr"))
    add(_ex(d, "the cpus of alpha",
            "SELECT cpus FROM host WHERE name = 'alpha'", "attr"))
    add(_ex(d, "the cpus of zulu",
            "SELECT cpus FROM host WHERE name = 'zulu'", "attr"))

    # --- counting -----------------------------------------------------------
    add(_ex(d, "how many events are there",
            "SELECT COUNT(*) FROM event", "count"))
    add(_ex(d, "how many hosts are there",
            "SELECT COUNT(*) FROM host", "count"))
    add(_ex(d, "how many alerts are there",
            "SELECT COUNT(*) FROM event WHERE kind = 'alert'", "count"))
    add(_ex(
        d, "how many hosts are in dublin",
        "SELECT COUNT(DISTINCT host.id) FROM host JOIN datacenter ON "
        "host.datacenter_id = datacenter.id "
        "WHERE datacenter.name = 'dublin'",
        "count", "join",
    ))
    add(_ex(
        d, "how many deploys does billing have",
        "SELECT COUNT(DISTINCT event.id) FROM event JOIN service ON "
        "event.service_id = service.id WHERE event.kind = 'deploy' "
        "AND service.name = 'billing'",
        "count", "join",
    ))
    # 2-hop Steiner path: the question names neither host nor the join keys.
    for dc in rng.sample(datacenters, 2):
        add(_ex(
            d, f"how many errors are in {dc}",
            "SELECT COUNT(DISTINCT event.id) FROM event "
            "JOIN host ON event.host_id = host.id "
            "JOIN datacenter ON host.datacenter_id = datacenter.id "
            f"WHERE event.kind = 'error' AND datacenter.name = '{dc}'",
            "count", "join",
        ))

    # --- aggregates ---------------------------------------------------------
    add(_ex(d, "the average duration of the events",
            "SELECT AVG(duration) FROM event", "agg"))
    add(_ex(d, "the total duration of the errors",
            "SELECT SUM(duration) FROM event WHERE kind = 'error'", "agg"))
    add(_ex(d, "the average severity of the warnings",
            "SELECT AVG(severity) FROM event WHERE kind = 'warning'", "agg"))

    # --- superlatives -------------------------------------------------------
    add(_ex(d, "the slowest event",
            "SELECT id FROM event ORDER BY duration DESC LIMIT 1", "super"))
    add(_ex(d, "the gravest event",
            "SELECT id FROM event ORDER BY severity DESC LIMIT 1", "super"))
    add(_ex(d, "the beefiest host",
            "SELECT name FROM host ORDER BY cpus DESC LIMIT 1", "super"))
    add(_ex(d, "the earliest error",
            "SELECT id FROM event WHERE kind = 'error' "
            "ORDER BY day ASC LIMIT 1", "super"))
    add(_ex(d, "the longest event",
            "SELECT id FROM event ORDER BY duration DESC LIMIT 1", "super"))

    # --- comparisons --------------------------------------------------------
    add(_ex(d, "events with duration over 4000",
            "SELECT id FROM event WHERE duration > 4000", "compare"))
    add(_ex(d, "events with severity over 3",
            "SELECT id FROM event WHERE severity > 3", "compare"))
    add(_ex(d, "hosts with more than 16 cores",
            "SELECT name FROM host WHERE cpus > 16", "compare"))
    add(_ex(d, "hosts with cpus over 16",
            "SELECT name FROM host WHERE cpus > 16", "compare"))
    add(_ex(d, "events with day over 60",
            "SELECT id FROM event WHERE day > 60", "compare"))
    add(_ex(d, "errors with severity over 3",
            "SELECT id FROM event WHERE kind = 'error' AND severity > 3",
            "compare"))

    # --- negation -----------------------------------------------------------
    add(_ex(
        d, "hosts that are not in frankfurt",
        "SELECT DISTINCT host.name FROM host JOIN datacenter ON "
        "host.datacenter_id = datacenter.id "
        "WHERE datacenter.name != 'frankfurt'",
        "negation", "join",
    ))
    add(_ex(d, "services that are not critical",
            "SELECT name FROM service WHERE tier != 'critical'", "negation"))

    # --- membership ---------------------------------------------------------
    add(_ex(
        d, "hosts from frankfurt or dublin",
        "SELECT DISTINCT host.name FROM host JOIN datacenter ON "
        "host.datacenter_id = datacenter.id "
        "WHERE datacenter.name IN ('frankfurt', 'dublin')",
        "member", "join",
    ))
    add(_ex(
        d, "hosts in the sydney or tokyo datacenter",
        "SELECT DISTINCT host.name FROM host JOIN datacenter ON "
        "host.datacenter_id = datacenter.id "
        "WHERE datacenter.name IN ('sydney', 'tokyo')",
        "member", "join",
    ))
    add(_ex(
        d, "events in the checkout or billing service",
        "SELECT DISTINCT event.id FROM event JOIN service ON "
        "event.service_id = service.id "
        "WHERE service.name IN ('checkout', 'billing')",
        "member", "join",
    ))

    # --- nested -------------------------------------------------------------
    add(_ex(
        d, "events slower than average",
        "SELECT id FROM event WHERE duration > "
        "(SELECT AVG(duration) FROM event)",
        "nested", "compare",
    ))
    add(_ex(
        d, "events with duration above average",
        "SELECT id FROM event WHERE duration > "
        "(SELECT AVG(duration) FROM event)",
        "nested", "compare",
    ))
    add(_ex(
        d, "hosts beefier than alpha",
        "SELECT name FROM host WHERE cpus > "
        "(SELECT cpus FROM host WHERE name = 'alpha')",
        "nested", "compare",
    ))
    add(_ex(
        d, "events with severity above average",
        "SELECT id FROM event WHERE severity > "
        "(SELECT AVG(severity) FROM event)",
        "nested", "compare",
    ))

    # --- grouping -----------------------------------------------------------
    add(_ex(
        d, "how many hosts are in each datacenter",
        "SELECT datacenter.name, COUNT(DISTINCT host.id) FROM host JOIN "
        "datacenter ON host.datacenter_id = datacenter.id "
        "GROUP BY datacenter.name ORDER BY datacenter.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "how many events per kind",
        "SELECT kind, COUNT(id) FROM event GROUP BY kind ORDER BY kind",
        "group", "count",
    ))
    add(_ex(
        d, "how many services per tier",
        "SELECT tier, COUNT(id) FROM service GROUP BY tier ORDER BY tier",
        "group", "count",
    ))
    add(_ex(
        d, "average duration per kind",
        "SELECT kind, AVG(duration) FROM event GROUP BY kind ORDER BY kind",
        "group", "agg",
    ))
    add(_ex(
        d, "average severity per kind",
        "SELECT kind, AVG(severity) FROM event GROUP BY kind ORDER BY kind",
        "group", "agg",
    ))
    # 2-hop Steiner path under a group-by.
    add(_ex(
        d, "how many events are in each datacenter",
        "SELECT datacenter.name, COUNT(DISTINCT event.id) FROM event "
        "JOIN host ON event.host_id = host.id "
        "JOIN datacenter ON host.datacenter_id = datacenter.id "
        "GROUP BY datacenter.name ORDER BY datacenter.name",
        "group", "count", "join",
    ))

    # --- ordering -----------------------------------------------------------
    add(_ex(d, "list the hosts by cpus",
            "SELECT name FROM host ORDER BY cpus ASC", "order"))
    add(_ex(d, "list the hosts sorted by cpus descending",
            "SELECT name FROM host ORDER BY cpus DESC", "order"))
    add(_ex(d, "list the events sorted by duration descending",
            "SELECT id FROM event ORDER BY duration DESC", "order"))

    return examples


def events_dialogues(database: Database) -> list[list[DialogueTurn]]:
    events_in = (
        "SELECT COUNT(DISTINCT event.id) FROM event "
        "JOIN host ON event.host_id = host.id "
        "JOIN datacenter ON host.datacenter_id = datacenter.id "
        "WHERE datacenter.name = '{dc}'"
    )
    return [
        [
            DialogueTurn(
                "how many events are in frankfurt",
                events_in.format(dc="frankfurt"), False,
            ),
            DialogueTurn(
                "what about dublin",
                events_in.format(dc="dublin"), True,
            ),
            DialogueTurn(
                "and sydney",
                events_in.format(dc="sydney"), True,
            ),
        ],
        [
            DialogueTurn(
                "show the errors",
                "SELECT id FROM event WHERE kind = 'error'",
                False,
            ),
            DialogueTurn(
                "only the ones with severity over 3",
                "SELECT id FROM event WHERE kind = 'error' "
                "AND severity > 3",
                True,
            ),
            DialogueTurn(
                "what about the warnings",
                "SELECT id FROM event WHERE kind = 'warning' "
                "AND severity > 3",
                True,
            ),
        ],
    ]


# ==========================================================================
# Wild (held-out phrasing) sets — NOT guaranteed to parse.
#
# Era evaluations distinguished "habitual" users (in-grammar phrasing,
# high coverage) from unrestricted input.  These questions use passive
# voice, unusual vocabulary and clause orders the grammar may not cover;
# T1 reports coverage on them separately.
# ==========================================================================


def fleet_wild(database: Database) -> list[QuestionExample]:
    d = "fleet"
    return [
        _ex(d, "i would like to see every ship we own",
            "SELECT name FROM ship", "select"),
        _ex(d, "could you possibly tell me the ships of the pacific fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'",
            "select", "join"),
        _ex(d, "ships belonging to the atlantic fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            "ship.fleet_id = fleet.id WHERE fleet.name = 'Atlantic'",
            "select", "join"),
        _ex(d, "give the count of submarines",
            "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN shiptype ON "
            "ship.type_id = shiptype.id WHERE shiptype.name = 'submarine'",
            "count", "join"),
        _ex(d, "ships exceeding 50000 tons",
            "SELECT name FROM ship WHERE displacement > 50000", "compare"),
        _ex(d, "what ships have we got in the pacific fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'",
            "select", "join"),
        _ex(d, "how heavy is the enterprise",
            "SELECT displacement FROM ship WHERE name = 'Enterprise'", "attr"),
        _ex(d, "enumerate the carriers",
            "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
            "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'",
            "select", "join"),
        _ex(d, "which vessels were commissioned in 1970",
            "SELECT name FROM ship WHERE commissioned = 1970", "compare"),
        _ex(d, "are there any ships faster than 33 knots",
            "SELECT name FROM ship WHERE speed > 33", "compare"),
        _ex(d, "ships not exceeding 5000 tons",
            "SELECT name FROM ship WHERE displacement <= 5000", "compare",
            "negation"),
        _ex(d, "whats the biggest boat",
            "SELECT name FROM ship ORDER BY displacement DESC LIMIT 1", "super"),
        _ex(d, "rank the fleets by the number of their ships",
            "SELECT fleet.name, COUNT(DISTINCT ship.id) FROM ship JOIN fleet "
            "ON ship.fleet_id = fleet.id GROUP BY fleet.name ORDER BY fleet.name",
            "group", "count", "join"),
        _ex(d, "display vessels alongside their speeds",
            "SELECT name, speed FROM ship", "select"),
        _ex(d, "the displacement of each carrier",
            "SELECT DISTINCT ship.displacement FROM ship JOIN shiptype ON "
            "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'",
            "attr", "join"),
    ]


def company_wild(database: Database) -> list[QuestionExample]:
    d = "company"
    return [
        _ex(d, "who works in the sales department",
            "SELECT DISTINCT employee.name FROM employee JOIN department ON "
            "employee.dept_id = department.id WHERE department.name = 'Sales'",
            "select", "join"),
        _ex(d, "employees earning more than 60000",
            "SELECT name FROM employee WHERE salary > 60000", "compare"),
        _ex(d, "what does the widget cost",
            "SELECT price FROM product WHERE name = 'Widget'", "attr"),
        _ex(d, "headcount per department",
            "SELECT department.name, COUNT(DISTINCT employee.id) FROM employee "
            "JOIN department ON employee.dept_id = department.id "
            "GROUP BY department.name ORDER BY department.name",
            "group", "count", "join"),
        _ex(d, "whom do we employ as engineers",
            "SELECT name FROM employee WHERE title = 'engineer'", "select"),
        _ex(d, "the best paid employee",
            "SELECT name FROM employee ORDER BY salary DESC LIMIT 1", "super"),
        _ex(d, "give me everybody hired since 1972",
            "SELECT name FROM employee WHERE hired >= 1972", "compare"),
        _ex(d, "clients based in new york",
            "SELECT name FROM customer WHERE city = 'New York'", "select"),
        _ex(d, "i want the salaries of all managers",
            "SELECT salary FROM employee WHERE title = 'manager'", "attr"),
        _ex(d, "sum up the salaries in engineering",
            "SELECT SUM(employee.salary) FROM employee JOIN department ON "
            "employee.dept_id = department.id "
            "WHERE department.name = 'Engineering'",
            "agg", "join"),
    ]


def geography_wild(database: Database) -> list[QuestionExample]:
    d = "geography"
    return [
        _ex(d, "through which countries does the nile flow",
            "SELECT DISTINCT country.name FROM country JOIN river ON "
            "river.country_id = country.id WHERE river.name = 'nile'",
            "select", "join"),
        _ex(d, "name the capitals",
            "SELECT name FROM city WHERE capital = TRUE", "select"),
        _ex(d, "how big is france",
            "SELECT area FROM country WHERE name = 'france'", "attr"),
        _ex(d, "people living in china",
            "SELECT population FROM country WHERE name = 'china'", "attr"),
        _ex(d, "what is the most populous country",
            "SELECT name FROM country ORDER BY population DESC LIMIT 1",
            "super"),
        _ex(d, "rivers of america",
            "SELECT DISTINCT river.name FROM river JOIN country ON "
            "river.country_id = country.id WHERE country.name = 'usa'",
            "select", "join"),
        _ex(d, "where is everest",
            "SELECT DISTINCT country.name FROM country JOIN mountain ON "
            "mountain.country_id = country.id WHERE mountain.name = 'everest'",
            "select", "join"),
        _ex(d, "which continents have more than 3 countries",
            "SELECT continent FROM country GROUP BY continent "
            "HAVING COUNT(*) > 3 ORDER BY continent",
            "group", "count"),
        _ex(d, "the city with the most people",
            "SELECT name FROM city ORDER BY population DESC LIMIT 1", "super"),
        _ex(d, "mountains exceeding 8000 meters",
            "SELECT name FROM mountain WHERE height > 8000", "compare"),
    ]


def saas_wild(database: Database) -> list[QuestionExample]:
    d = "saas"
    return [
        _ex(d, "i would like to see every tenant we have",
            "SELECT name FROM tenant", "select"),
        _ex(d, "could you possibly tell me the projects of acme",
            "SELECT DISTINCT project.name FROM project JOIN tenant ON "
            "project.tenant_id = tenant.id WHERE tenant.name = 'Acme'",
            "select", "join"),
        _ex(d, "members belonging to the acme tenant",
            "SELECT DISTINCT member.name FROM member JOIN tenant ON "
            "member.tenant_id = tenant.id WHERE tenant.name = 'Acme'",
            "select", "join"),
        _ex(d, "give the count of open tickets",
            "SELECT COUNT(*) FROM ticket WHERE status = 'open'", "count"),
        _ex(d, "what members have we got in the globex tenant",
            "SELECT DISTINCT member.name FROM member JOIN tenant ON "
            "member.tenant_id = tenant.id WHERE tenant.name = 'Globex'",
            "select", "join"),
        _ex(d, "enumerate the developers",
            "SELECT name FROM member WHERE role = 'developer'", "select"),
        _ex(d, "which tickets were opened in 1975",
            "SELECT code FROM ticket WHERE opened = 1975", "compare"),
        _ex(d, "are there any tenants with more than 300 seats",
            "SELECT name FROM tenant WHERE seats > 300", "compare"),
        _ex(d, "tenants not exceeding 50 seats",
            "SELECT name FROM tenant WHERE seats <= 50",
            "compare", "negation"),
        _ex(d, "whats the biggest tenant",
            "SELECT name FROM tenant ORDER BY seats DESC LIMIT 1", "super"),
        _ex(d, "rank the tenants by the number of their projects",
            "SELECT tenant.name, COUNT(DISTINCT project.id) FROM project "
            "JOIN tenant ON project.tenant_id = tenant.id "
            "GROUP BY tenant.name ORDER BY tenant.name",
            "group", "count", "join"),
        _ex(d, "display tenants alongside their seats",
            "SELECT name, seats FROM tenant", "select"),
        _ex(d, "the priority of each open ticket",
            "SELECT priority FROM ticket WHERE status = 'open'", "attr"),
    ]


def events_wild(database: Database) -> list[QuestionExample]:
    d = "events"
    return [
        _ex(d, "i would like to see every host we run",
            "SELECT name FROM host", "select"),
        _ex(d, "could you possibly tell me the hosts of frankfurt",
            "SELECT DISTINCT host.name FROM host JOIN datacenter ON "
            "host.datacenter_id = datacenter.id "
            "WHERE datacenter.name = 'frankfurt'",
            "select", "join"),
        _ex(d, "what hosts have we got in dublin",
            "SELECT DISTINCT host.name FROM host JOIN datacenter ON "
            "host.datacenter_id = datacenter.id "
            "WHERE datacenter.name = 'dublin'",
            "select", "join"),
        _ex(d, "give the count of errors",
            "SELECT COUNT(*) FROM event WHERE kind = 'error'", "count"),
        _ex(d, "enumerate the deploys",
            "SELECT id FROM event WHERE kind = 'deploy'", "select"),
        _ex(d, "events exceeding 4000 milliseconds",
            "SELECT id FROM event WHERE duration > 4000", "compare"),
        _ex(d, "are there any events slower than 4900 milliseconds",
            "SELECT id FROM event WHERE duration > 4900", "compare"),
        _ex(d, "events not exceeding 100 milliseconds",
            "SELECT id FROM event WHERE duration <= 100",
            "compare", "negation"),
        _ex(d, "whats the beefiest box",
            "SELECT name FROM host ORDER BY cpus DESC LIMIT 1", "super"),
        _ex(d, "rank the datacenters by the number of their hosts",
            "SELECT datacenter.name, COUNT(DISTINCT host.id) FROM host "
            "JOIN datacenter ON host.datacenter_id = datacenter.id "
            "GROUP BY datacenter.name ORDER BY datacenter.name",
            "group", "count", "join"),
        _ex(d, "display hosts alongside their cpus",
            "SELECT name, cpus FROM host", "select"),
        _ex(d, "the duration of each error",
            "SELECT duration FROM event WHERE kind = 'error'", "attr"),
    ]


def wild_for(name: str, database: Database) -> list[QuestionExample]:
    if name == "fleet":
        return fleet_wild(database)
    if name == "company":
        return company_wild(database)
    if name == "geography":
        return geography_wild(database)
    if name == "saas":
        return saas_wild(database)
    if name == "events":
        return events_wild(database)
    raise ValueError(f"unknown domain {name!r}")


# ==========================================================================
# Bundles
# ==========================================================================


def load_bundle(name: str) -> DomainBundle:
    """Build database + domain model + corpora for ``name``."""
    if name == "fleet":
        db = fleet_mod.build_database()
        return DomainBundle(
            "fleet", db, fleet_mod.domain(), fleet_corpus(db),
            fleet_dialogues(db), fleet_wild(db),
        )
    if name == "company":
        db = company_mod.build_database()
        return DomainBundle(
            "company", db, company_mod.domain(),
            company_corpus(db), company_dialogues(db), company_wild(db),
        )
    if name == "geography":
        db = geography_mod.build_database()
        return DomainBundle(
            "geography", db, geography_mod.domain(),
            geography_corpus(db), geography_dialogues(db), geography_wild(db),
        )
    if name == "saas":
        db = saas_mod.build_database()
        return DomainBundle(
            "saas", db, saas_mod.domain(),
            saas_corpus(db), saas_dialogues(db), saas_wild(db),
        )
    if name == "events":
        db = events_mod.build_database()
        return DomainBundle(
            "events", db, events_mod.domain(),
            events_corpus(db), events_dialogues(db), events_wild(db),
        )
    raise ValueError(f"unknown domain {name!r}")


ALL_DOMAINS = ("fleet", "company", "geography", "saas", "events")


def load_all_bundles() -> list[DomainBundle]:
    return [load_bundle(name) for name in ALL_DOMAINS]
