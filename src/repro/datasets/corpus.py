"""Question corpora with gold SQL, tagged by construct.

Each example pairs an English question with a gold SQL query (executable
on the bundled engine).  Correctness is judged by *answer-set equality*,
the standard for NLIDB evaluation: column names may differ, row order is
ignored (except both sides apply their own ORDER BY/LIMIT).

Feature tags (driving the Table-3 construct breakdown):

``select``  plain listing            ``join``        needs a join path
``count``   counting                 ``agg``         sum/avg/min/max
``attr``    attribute lookup         ``group``       group-by
``super``   superlative/top-k        ``compare``     numeric comparison
``negation`` negated condition       ``member``      or-lists (IN)
``nested``  nested subquery          ``order``       explicit ordering
``dialogue`` requires session context
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets import company as company_mod
from repro.datasets import fleet as fleet_mod
from repro.datasets import geography as geography_mod
from repro.datasets.base import rng_for
from repro.lexicon.domain import DomainModel
from repro.sqlengine.database import Database


@dataclass(frozen=True)
class QuestionExample:
    """One evaluation item."""

    question: str
    gold_sql: str
    features: frozenset[str]
    domain: str

    def has(self, feature: str) -> bool:
        return feature in self.features


@dataclass(frozen=True)
class DialogueTurn:
    """One turn of a scripted session."""

    question: str
    gold_sql: str
    is_followup: bool


@dataclass
class DomainBundle:
    """Database + domain model + corpora for one domain."""

    name: str
    database: Database
    model: DomainModel
    corpus: list[QuestionExample] = field(default_factory=list)
    dialogues: list[list[DialogueTurn]] = field(default_factory=list)
    wild: list[QuestionExample] = field(default_factory=list)


def _ex(domain: str, question: str, sql: str, *features: str) -> QuestionExample:
    return QuestionExample(question, sql, frozenset(features), domain)


# ==========================================================================
# Fleet corpus
# ==========================================================================


def fleet_corpus(database: Database, seed: int = 3) -> list[QuestionExample]:
    rng = rng_for(seed, "fleet-corpus")
    examples: list[QuestionExample] = []
    add = examples.append
    d = "fleet"

    fleets = [r[0] for r in database.table("fleet").lookup_equal("id", 1)] and [
        row[1] for row in database.table("fleet").rows()
    ]
    types = [row[1] for row in database.table("shiptype").rows()]
    officer_names = {row[1] for row in database.table("officer").rows()}
    ship_names = [row[1] for row in database.table("ship").rows()]
    safe_ships = sorted(
        name for name in ship_names
        if name not in officer_names and " " not in name
    )
    ports = [row[1] for row in database.table("port").rows()]
    hq_names = {row[3] for row in database.table("fleet").rows()}
    safe_ports = sorted(p for p in ports if p not in hq_names and " " not in p)

    # --- plain listings -----------------------------------------------------
    add(_ex(d, "show all ships", "SELECT name FROM ship", "select"))
    add(_ex(d, "list the fleets", "SELECT name FROM fleet", "select"))
    add(_ex(d, "show me the ports", "SELECT name FROM port", "select"))
    add(_ex(d, "list all officers", "SELECT name FROM officer", "select"))
    for t in types:
        add(_ex(
            d, f"show the {t}s",
            "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
            f"ship.type_id = shiptype.id WHERE shiptype.name = '{t}'",
            "select", "join",
        ))

    # --- selection via joins ---------------------------------------------------
    for f in fleets:
        add(_ex(
            d, f"show the ships in the {f.lower()} fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name = '{f}'",
            "select", "join",
        ))
        add(_ex(
            d, f"which ships are in the {f.lower()} fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name = '{f}'",
            "select", "join",
        ))
    for p in safe_ports[:6]:
        add(_ex(
            d, f"ships from {p.lower()}",
            "SELECT DISTINCT ship.name FROM ship JOIN port ON "
            f"ship.home_port_id = port.id WHERE port.name = '{p}'",
            "select", "join",
        ))
    for t, f in [(types[0], fleets[0]), (types[4], fleets[1]), (types[2], fleets[2])]:
        add(_ex(
            d, f"{t}s in the {f.lower()} fleet",
            "SELECT DISTINCT ship.name FROM ship "
            "JOIN fleet ON ship.fleet_id = fleet.id "
            "JOIN shiptype ON ship.type_id = shiptype.id "
            f"WHERE fleet.name = '{f}' AND shiptype.name = '{t}'",
            "select", "join",
        ))

    # --- counting -----------------------------------------------------------------
    add(_ex(d, "how many ships are there", "SELECT COUNT(*) FROM ship", "count"))
    add(_ex(d, "how many officers are there", "SELECT COUNT(*) FROM officer", "count"))
    for t in types:
        add(_ex(
            d, f"how many {t}s are there",
            "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN shiptype ON "
            f"ship.type_id = shiptype.id WHERE shiptype.name = '{t}'",
            "count", "join",
        ))
    for f in fleets:
        add(_ex(
            d, f"how many ships does the {f.lower()} fleet have",
            "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name = '{f}'",
            "count", "join",
        ))

    # --- aggregates ------------------------------------------------------------------
    for t in types[:3]:
        add(_ex(
            d, f"what is the average displacement of the {t}s",
            "SELECT AVG(ship.displacement) FROM ship JOIN shiptype ON "
            f"ship.type_id = shiptype.id WHERE shiptype.name = '{t}'",
            "agg", "join",
        ))
    add(_ex(
        d, "what is the total crew of the carriers",
        "SELECT SUM(ship.crew) FROM ship JOIN shiptype ON "
        "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'",
        "agg", "join",
    ))
    add(_ex(
        d, "what is the maximum speed of the submarines",
        "SELECT MAX(ship.speed) FROM ship JOIN shiptype ON "
        "ship.type_id = shiptype.id WHERE shiptype.name = 'submarine'",
        "agg", "join",
    ))
    add(_ex(
        d, "average crew of the ships",
        "SELECT AVG(crew) FROM ship", "agg",
    ))
    for f in fleets[:2]:
        add(_ex(
            d, f"total displacement of the ships in the {f.lower()} fleet",
            "SELECT SUM(ship.displacement) FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name = '{f}'",
            "agg", "join",
        ))

    # --- attribute lookup ---------------------------------------------------------------
    for name in rng.sample(safe_ships, 8):
        add(_ex(
            d, f"what is the displacement of the {name.lower()}",
            f"SELECT displacement FROM ship WHERE name = '{name}'",
            "attr",
        ))
    for name in rng.sample(safe_ships, 4):
        add(_ex(
            d, f"what is the speed and length of the {name.lower()}",
            f"SELECT speed, length FROM ship WHERE name = '{name}'",
            "attr",
        ))
    for name in rng.sample(safe_ships, 4):
        add(_ex(
            d, f"the crew of the {name.lower()}",
            f"SELECT crew FROM ship WHERE name = '{name}'",
            "attr",
        ))

    # --- superlatives ----------------------------------------------------------------------
    add(_ex(
        d, "which ship has the largest displacement",
        "SELECT name FROM ship ORDER BY displacement DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the fastest ship",
        "SELECT name FROM ship ORDER BY speed DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the 3 oldest ships",
        "SELECT name FROM ship ORDER BY commissioned ASC LIMIT 3",
        "super",
    ))
    add(_ex(
        d, "the 5 largest ships",
        "SELECT name FROM ship ORDER BY displacement DESC LIMIT 5",
        "super",
    ))
    add(_ex(
        d, "the fastest submarine",
        "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
        "ship.type_id = shiptype.id WHERE shiptype.name = 'submarine' "
        "ORDER BY ship.speed DESC LIMIT 1",
        "super", "join",
    ))
    add(_ex(
        d, "which officer has the highest rank",
        "SELECT name FROM officer ORDER BY rank DESC LIMIT 1",
        "super",
    ))

    # --- comparisons ------------------------------------------------------------------------
    for n in (3000, 9000, 50000):
        add(_ex(
            d, f"ships with displacement over {n} tons",
            f"SELECT name FROM ship WHERE displacement > {n}",
            "compare",
        ))
    add(_ex(
        d, "ships with crew less than 150",
        "SELECT name FROM ship WHERE crew < 150", "compare",
    ))
    add(_ex(
        d, "ships faster than 32 knots",
        "SELECT name FROM ship WHERE speed > 32", "compare",
    ))
    add(_ex(
        d, "ships commissioned after 1970",
        "SELECT name FROM ship WHERE commissioned > 1970", "compare",
    ))
    add(_ex(
        d, "ships commissioned before 1960",
        "SELECT name FROM ship WHERE commissioned < 1960", "compare",
    ))
    add(_ex(
        d, "ships with crew between 100 and 300",
        "SELECT name FROM ship WHERE crew BETWEEN 100 AND 300", "compare",
    ))
    add(_ex(
        d, "ships with length of at least 1000 feet",
        "SELECT name FROM ship WHERE length >= 1000", "compare",
    ))
    add(_ex(
        d, "ships with more than 4000 men",
        "SELECT name FROM ship WHERE crew > 4000", "compare",
    ))

    # --- negation ------------------------------------------------------------------------------
    for f in fleets[:2]:
        add(_ex(
            d, f"ships that are not in the {f.lower()} fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            f"ship.fleet_id = fleet.id WHERE fleet.name != '{f}'",
            "negation", "join",
        ))
    add(_ex(
        d, "officers who are not admirals",
        "SELECT name FROM officer WHERE rank != 'admiral'",
        "negation",
    ))

    # --- membership -------------------------------------------------------------------------------
    p1, p2 = safe_ports[0], safe_ports[1]
    add(_ex(
        d, f"ships from {p1.lower()} or {p2.lower()}",
        "SELECT DISTINCT ship.name FROM ship JOIN port ON "
        f"ship.home_port_id = port.id WHERE port.name IN ('{p1}', '{p2}')",
        "member", "join",
    ))
    add(_ex(
        d, f"carriers in the {fleets[0].lower()} or {fleets[1].lower()} fleet",
        "SELECT DISTINCT ship.name FROM ship "
        "JOIN fleet ON ship.fleet_id = fleet.id "
        "JOIN shiptype ON ship.type_id = shiptype.id "
        f"WHERE fleet.name IN ('{fleets[0]}', '{fleets[1]}') "
        "AND shiptype.name = 'carrier'",
        "member", "join",
    ))

    # --- nested ------------------------------------------------------------------------------------
    for name in rng.sample(safe_ships, 3):
        add(_ex(
            d, f"ships heavier than the {name.lower()}",
            "SELECT name FROM ship WHERE displacement > "
            f"(SELECT displacement FROM ship WHERE name = '{name}')",
            "nested", "compare",
        ))
    add(_ex(
        d, "ships heavier than average",
        "SELECT name FROM ship WHERE displacement > "
        "(SELECT AVG(displacement) FROM ship)",
        "nested", "compare",
    ))
    add(_ex(
        d, "ships with displacement above average",
        "SELECT name FROM ship WHERE displacement > "
        "(SELECT AVG(displacement) FROM ship)",
        "nested", "compare",
    ))

    # --- grouping -------------------------------------------------------------------------------------
    add(_ex(
        d, "how many ships are in each fleet",
        "SELECT fleet.name, COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
        "ship.fleet_id = fleet.id GROUP BY fleet.name ORDER BY fleet.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "how many ships per type",
        "SELECT shiptype.name, COUNT(DISTINCT ship.id) FROM ship JOIN shiptype "
        "ON ship.type_id = shiptype.id GROUP BY shiptype.name "
        "ORDER BY shiptype.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "how many officers per rank",
        "SELECT rank, COUNT(id) FROM officer GROUP BY rank ORDER BY rank",
        "group", "count",
    ))
    add(_ex(
        d, "average displacement per fleet",
        "SELECT fleet.name, AVG(ship.displacement) FROM ship JOIN fleet ON "
        "ship.fleet_id = fleet.id GROUP BY fleet.name ORDER BY fleet.name",
        "group", "agg", "join",
    ))

    # --- ordering ----------------------------------------------------------------------------------------
    add(_ex(
        d, "list the ships sorted by displacement descending",
        "SELECT name FROM ship ORDER BY displacement DESC",
        "order",
    ))
    add(_ex(
        d, "list the submarines sorted by speed descending",
        "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
        "ship.type_id = shiptype.id WHERE shiptype.name = 'submarine' "
        "ORDER BY ship.speed DESC",
        "order", "join",
    ))
    add(_ex(
        d, "show the officers ordered by name",
        "SELECT name FROM officer ORDER BY name",
        "order",
    ))

    return examples


def fleet_dialogues(database: Database) -> list[list[DialogueTurn]]:
    """Scripted fleet sessions for the dialogue benchmark (T4)."""
    ships_in = (
        "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet "
        "ON ship.fleet_id = fleet.id WHERE fleet.name = '{f}'"
    )
    return [
        [
            DialogueTurn(
                "how many ships are in the pacific fleet",
                ships_in.format(f="Pacific"), False,
            ),
            DialogueTurn(
                "what about the atlantic fleet",
                ships_in.format(f="Atlantic"), True,
            ),
            DialogueTurn(
                "and the mediterranean fleet",
                ships_in.format(f="Mediterranean"), True,
            ),
            DialogueTurn(
                "how many of them are submarines",
                "SELECT COUNT(DISTINCT ship.id) FROM ship "
                "JOIN fleet ON ship.fleet_id = fleet.id "
                "JOIN shiptype ON ship.type_id = shiptype.id "
                "WHERE fleet.name = 'Mediterranean' "
                "AND shiptype.name = 'submarine'",
                True,
            ),
        ],
        [
            DialogueTurn(
                "show the carriers",
                "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
                "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'",
                False,
            ),
            DialogueTurn(
                "only the ones commissioned after 1970",
                "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
                "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier' "
                "AND ship.commissioned > 1970",
                True,
            ),
            DialogueTurn(
                "what about the cruisers",
                "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
                "ship.type_id = shiptype.id WHERE shiptype.name = 'cruiser' "
                "AND ship.commissioned > 1970",
                True,
            ),
        ],
        [
            DialogueTurn(
                "list the ships in the pacific fleet",
                "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
                "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'",
                False,
            ),
            DialogueTurn(
                "with displacement over 8000 tons",
                "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
                "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific' "
                "AND ship.displacement > 8000",
                True,
            ),
            DialogueTurn(
                "how many of them are there",
                "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN fleet ON "
                "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific' "
                "AND ship.displacement > 8000",
                True,
            ),
        ],
    ]


# ==========================================================================
# Company corpus
# ==========================================================================


def company_corpus(database: Database, seed: int = 5) -> list[QuestionExample]:
    rng = rng_for(seed, "company-corpus")
    examples: list[QuestionExample] = []
    add = examples.append
    d = "company"

    departments = [row[1] for row in database.table("department").rows()]
    titles = sorted({row[2] for row in database.table("employee").rows()})
    employee_names = [row[1] for row in database.table("employee").rows()]
    products = [row[1] for row in database.table("product").rows()]
    customers = [row[1] for row in database.table("customer").rows()]
    simple_customers = [c for c in customers if " " not in c]

    add(_ex(d, "list all employees", "SELECT name FROM employee", "select"))
    add(_ex(d, "show the departments", "SELECT name FROM department", "select"))
    add(_ex(d, "show me the products", "SELECT name FROM product", "select"))
    add(_ex(d, "list the customers", "SELECT name FROM customer", "select"))

    for dept in departments:
        add(_ex(
            d, f"show the employees in the {dept.lower()} department",
            "SELECT DISTINCT employee.name FROM employee JOIN department ON "
            f"employee.dept_id = department.id WHERE department.name = '{dept}'",
            "select", "join",
        ))
    for title in titles:
        add(_ex(
            d, f"list the {title}s",
            f"SELECT name FROM employee WHERE title = '{title}'",
            "select",
        ))

    add(_ex(d, "how many employees are there", "SELECT COUNT(*) FROM employee", "count"))
    add(_ex(d, "how many customers are there", "SELECT COUNT(*) FROM customer", "count"))
    for dept in departments[:4]:
        add(_ex(
            d, f"how many employees are in the {dept.lower()} department",
            "SELECT COUNT(DISTINCT employee.id) FROM employee JOIN department "
            f"ON employee.dept_id = department.id WHERE department.name = '{dept}'",
            "count", "join",
        ))
    for title in titles[:3]:
        add(_ex(
            d, f"how many {title}s are there",
            f"SELECT COUNT(*) FROM employee WHERE title = '{title}'",
            "count",
        ))

    add(_ex(
        d, "what is the average salary of the employees",
        "SELECT AVG(salary) FROM employee", "agg",
    ))
    for title in titles[:3]:
        add(_ex(
            d, f"what is the average salary of the {title}s",
            f"SELECT AVG(salary) FROM employee WHERE title = '{title}'",
            "agg",
        ))
    add(_ex(
        d, "total salary of the employees in the sales department",
        "SELECT SUM(employee.salary) FROM employee JOIN department ON "
        "employee.dept_id = department.id WHERE department.name = 'Sales'",
        "agg", "join",
    ))
    add(_ex(
        d, "what is the maximum price of the products",
        "SELECT MAX(price) FROM product", "agg",
    ))

    for name in rng.sample(employee_names, 6):
        add(_ex(
            d, f"what is the salary of {name.lower()}",
            f"SELECT salary FROM employee WHERE name = '{name}'",
            "attr",
        ))
    for name in rng.sample(products, 4):
        add(_ex(
            d, f"what is the price of the {name.lower()}",
            f"SELECT price FROM product WHERE name = '{name}'",
            "attr",
        ))
    for name in rng.sample(employee_names, 3):
        add(_ex(
            d, f"what is the title of {name.lower()}",
            f"SELECT title FROM employee WHERE name = '{name}'",
            "attr",
        ))

    add(_ex(
        d, "which employee has the highest salary",
        "SELECT name FROM employee ORDER BY salary DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the cheapest product",
        "SELECT name FROM product ORDER BY price ASC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the most expensive product",
        "SELECT name FROM product ORDER BY price DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the 3 highest paid employees",
        "SELECT name FROM employee ORDER BY salary DESC LIMIT 3",
        "super",
    ))
    add(_ex(
        d, "the longest serving employee",
        "SELECT name FROM employee ORDER BY hired ASC LIMIT 1",
        "super",
    ))

    for n in (50000, 60000, 70000):
        add(_ex(
            d, f"employees with salary over {n}",
            f"SELECT name FROM employee WHERE salary > {n}",
            "compare",
        ))
    add(_ex(
        d, "employees hired after 1970",
        "SELECT name FROM employee WHERE hired > 1970", "compare",
    ))
    add(_ex(
        d, "employees hired before 1965",
        "SELECT name FROM employee WHERE hired < 1965", "compare",
    ))
    add(_ex(
        d, "products with price under 50",
        "SELECT name FROM product WHERE price < 50", "compare",
    ))
    add(_ex(
        d, "employees with salary between 40000 and 60000",
        "SELECT name FROM employee WHERE salary BETWEEN 40000 AND 60000",
        "compare",
    ))

    add(_ex(
        d, "employees who are not managers",
        "SELECT name FROM employee WHERE title != 'manager'",
        "negation",
    ))
    add(_ex(
        d, "employees that are not in the sales department",
        "SELECT DISTINCT employee.name FROM employee JOIN department ON "
        "employee.dept_id = department.id WHERE department.name != 'Sales'",
        "negation", "join",
    ))

    add(_ex(
        d, "employees in the sales or marketing department",
        "SELECT DISTINCT employee.name FROM employee JOIN department ON "
        "employee.dept_id = department.id "
        "WHERE department.name IN ('Sales', 'Marketing')",
        "member", "join",
    ))
    c1, c2 = simple_customers[0], simple_customers[1]
    add(_ex(
        d, "customers in the software or finance industry",
        "SELECT name FROM customer WHERE industry IN ('software', 'finance')",
        "member",
    ))

    for name in rng.sample(employee_names, 3):
        add(_ex(
            d, f"employees richer than {name.lower()}",
            "SELECT name FROM employee WHERE salary > "
            f"(SELECT salary FROM employee WHERE name = '{name}')",
            "nested", "compare",
        ))
    add(_ex(
        d, "employees with salary above average",
        "SELECT name FROM employee WHERE salary > "
        "(SELECT AVG(salary) FROM employee)",
        "nested", "compare",
    ))
    add(_ex(
        d, "products pricier than average",
        "SELECT name FROM product WHERE price > (SELECT AVG(price) FROM product)",
        "nested", "compare",
    ))

    add(_ex(
        d, "how many employees are in each department",
        "SELECT department.name, COUNT(DISTINCT employee.id) FROM employee "
        "JOIN department ON employee.dept_id = department.id "
        "GROUP BY department.name ORDER BY department.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "how many employees per title",
        "SELECT title, COUNT(id) FROM employee GROUP BY title ORDER BY title",
        "group", "count",
    ))
    add(_ex(
        d, "average salary per department",
        "SELECT department.name, AVG(employee.salary) FROM employee "
        "JOIN department ON employee.dept_id = department.id "
        "GROUP BY department.name ORDER BY department.name",
        "group", "agg", "join",
    ))
    add(_ex(
        d, "average price per category",
        "SELECT category, AVG(price) FROM product GROUP BY category "
        "ORDER BY category",
        "group", "agg",
    ))

    add(_ex(
        d, "list the employees sorted by salary descending",
        "SELECT name FROM employee ORDER BY salary DESC",
        "order",
    ))
    add(_ex(
        d, "show the products ordered by price",
        "SELECT name FROM product ORDER BY price",
        "order",
    ))

    return examples


def company_dialogues(database: Database) -> list[list[DialogueTurn]]:
    return [
        [
            DialogueTurn(
                "how many employees are in the sales department",
                "SELECT COUNT(DISTINCT employee.id) FROM employee JOIN department "
                "ON employee.dept_id = department.id WHERE department.name = 'Sales'",
                False,
            ),
            DialogueTurn(
                "what about the engineering department",
                "SELECT COUNT(DISTINCT employee.id) FROM employee JOIN department "
                "ON employee.dept_id = department.id "
                "WHERE department.name = 'Engineering'",
                True,
            ),
            DialogueTurn(
                "how many of them are engineers",
                "SELECT COUNT(DISTINCT employee.id) FROM employee JOIN department "
                "ON employee.dept_id = department.id "
                "WHERE department.name = 'Engineering' "
                "AND employee.title = 'engineer'",
                True,
            ),
        ],
        [
            DialogueTurn(
                "show the managers",
                "SELECT name FROM employee WHERE title = 'manager'",
                False,
            ),
            DialogueTurn(
                "only the ones hired after 1970",
                "SELECT name FROM employee WHERE title = 'manager' "
                "AND hired > 1970",
                True,
            ),
            DialogueTurn(
                "with salary over 60000",
                "SELECT name FROM employee WHERE title = 'manager' "
                "AND hired > 1970 AND salary > 60000",
                True,
            ),
        ],
    ]


# ==========================================================================
# Geography corpus
# ==========================================================================


def geography_corpus(database: Database, seed: int = 9) -> list[QuestionExample]:
    rng = rng_for(seed, "geo-corpus")
    examples: list[QuestionExample] = []
    add = examples.append
    d = "geography"

    continents = sorted({row[2] for row in database.table("country").rows()})
    countries = [row[1] for row in database.table("country").rows()]
    simple_countries = [c for c in countries if " " not in c]
    rivers = [row[1] for row in database.table("river").rows()]
    simple_rivers = [r for r in rivers if " " not in r]
    mountains = [row[1] for row in database.table("mountain").rows()]
    simple_mountains = [m for m in mountains if " " not in m]

    add(_ex(d, "list all countries", "SELECT name FROM country", "select"))
    add(_ex(d, "show the rivers", "SELECT name FROM river", "select"))
    add(_ex(d, "show me the mountains", "SELECT name FROM mountain", "select"))
    add(_ex(d, "list the cities", "SELECT name FROM city", "select"))

    for continent in continents:
        add(_ex(
            d, f"show the countries in {continent}",
            f"SELECT name FROM country WHERE continent = '{continent}'",
            "select",
        ))
    for country in rng.sample(simple_countries, 6):
        add(_ex(
            d, f"show the cities in {country}",
            "SELECT DISTINCT city.name FROM city JOIN country ON "
            f"city.country_id = country.id WHERE country.name = '{country}'",
            "select", "join",
        ))
        add(_ex(
            d, f"which rivers are in {country}",
            "SELECT DISTINCT river.name FROM river JOIN country ON "
            f"river.country_id = country.id WHERE country.name = '{country}'",
            "select", "join",
        ))

    add(_ex(d, "how many countries are there", "SELECT COUNT(*) FROM country", "count"))
    add(_ex(d, "how many rivers are there", "SELECT COUNT(*) FROM river", "count"))
    for country in rng.sample(simple_countries, 4):
        add(_ex(
            d, f"how many cities are in {country}",
            "SELECT COUNT(DISTINCT city.id) FROM city JOIN country ON "
            f"city.country_id = country.id WHERE country.name = '{country}'",
            "count", "join",
        ))
    for continent in continents[:3]:
        add(_ex(
            d, f"how many countries are in {continent}",
            f"SELECT COUNT(*) FROM country WHERE continent = '{continent}'",
            "count",
        ))

    add(_ex(
        d, "what is the average population of the countries",
        "SELECT AVG(population) FROM country", "agg",
    ))
    add(_ex(
        d, "what is the total area of the countries in europe",
        "SELECT SUM(area) FROM country WHERE continent = 'europe'",
        "agg",
    ))
    add(_ex(
        d, "what is the maximum height of the mountains",
        "SELECT MAX(height) FROM mountain", "agg",
    ))
    add(_ex(
        d, "average length of the rivers",
        "SELECT AVG(length) FROM river", "agg",
    ))

    for country in rng.sample(simple_countries, 5):
        add(_ex(
            d, f"what is the population of {country}",
            f"SELECT population FROM country WHERE name = '{country}'",
            "attr",
        ))
    for river in rng.sample(simple_rivers, 4):
        add(_ex(
            d, f"what is the length of the {river}",
            f"SELECT length FROM river WHERE name = '{river}'",
            "attr",
        ))
    for mountain in rng.sample(simple_mountains, 4):
        add(_ex(
            d, f"what is the height of {mountain}",
            f"SELECT height FROM mountain WHERE name = '{mountain}'",
            "attr",
        ))

    add(_ex(
        d, "which country has the largest population",
        "SELECT name FROM country ORDER BY population DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the longest river",
        "SELECT name FROM river ORDER BY length DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the highest mountain",
        "SELECT name FROM mountain ORDER BY height DESC LIMIT 1",
        "super",
    ))
    add(_ex(
        d, "the 3 largest cities",
        "SELECT name FROM city ORDER BY population DESC LIMIT 3",
        "super",
    ))
    add(_ex(
        d, "the smallest country",
        "SELECT name FROM country ORDER BY population ASC LIMIT 1",
        "super",
    ))

    add(_ex(
        d, "countries with population over 100000",
        "SELECT name FROM country WHERE population > 100000",
        "compare",
    ))
    add(_ex(
        d, "rivers longer than 4000 km",
        "SELECT name FROM river WHERE length > 4000", "compare",
    ))
    add(_ex(
        d, "mountains higher than 6000 meters",
        "SELECT name FROM mountain WHERE height > 6000", "compare",
    ))
    add(_ex(
        d, "cities with population under 1000",
        "SELECT name FROM city WHERE population < 1000", "compare",
    ))
    add(_ex(
        d, "countries with area between 300 and 1000",
        "SELECT name FROM country WHERE area BETWEEN 300 AND 1000",
        "compare",
    ))

    add(_ex(
        d, "countries that are not in europe",
        "SELECT name FROM country WHERE continent != 'europe'",
        "negation",
    ))
    add(_ex(
        d, "cities that are not in usa",
        "SELECT DISTINCT city.name FROM city JOIN country ON "
        "city.country_id = country.id WHERE country.name != 'usa'",
        "negation", "join",
    ))

    add(_ex(
        d, "countries in europe or asia",
        "SELECT name FROM country WHERE continent IN ('europe', 'asia')",
        "member",
    ))
    add(_ex(
        d, "cities in france or spain",
        "SELECT DISTINCT city.name FROM city JOIN country ON "
        "city.country_id = country.id WHERE country.name IN ('france', 'spain')",
        "member", "join",
    ))

    add(_ex(
        d, "rivers longer than the rhine",
        "SELECT name FROM river WHERE length > "
        "(SELECT length FROM river WHERE name = 'rhine')",
        "nested", "compare",
    ))
    add(_ex(
        d, "mountains higher than the fuji",
        "SELECT name FROM mountain WHERE height > "
        "(SELECT height FROM mountain WHERE name = 'fuji')",
        "nested", "compare",
    ))
    add(_ex(
        d, "countries with population above average",
        "SELECT name FROM country WHERE population > "
        "(SELECT AVG(population) FROM country)",
        "nested", "compare",
    ))

    add(_ex(
        d, "how many countries are in each continent",
        "SELECT continent, COUNT(id) FROM country GROUP BY continent "
        "ORDER BY continent",
        "group", "count",
    ))
    add(_ex(
        d, "how many cities are in each country",
        "SELECT country.name, COUNT(DISTINCT city.id) FROM city JOIN country "
        "ON city.country_id = country.id GROUP BY country.name "
        "ORDER BY country.name",
        "group", "count", "join",
    ))
    add(_ex(
        d, "average population per continent",
        "SELECT continent, AVG(population) FROM country GROUP BY continent "
        "ORDER BY continent",
        "group", "agg",
    ))

    add(_ex(
        d, "list the rivers sorted by length descending",
        "SELECT name FROM river ORDER BY length DESC",
        "order",
    ))
    add(_ex(
        d, "show the mountains ordered by height",
        "SELECT name FROM mountain ORDER BY height",
        "order",
    ))

    return examples


def geography_dialogues(database: Database) -> list[list[DialogueTurn]]:
    return [
        [
            DialogueTurn(
                "how many cities are in usa",
                "SELECT COUNT(DISTINCT city.id) FROM city JOIN country ON "
                "city.country_id = country.id WHERE country.name = 'usa'",
                False,
            ),
            DialogueTurn(
                "what about china",
                "SELECT COUNT(DISTINCT city.id) FROM city JOIN country ON "
                "city.country_id = country.id WHERE country.name = 'china'",
                True,
            ),
        ],
        [
            DialogueTurn(
                "show the countries in europe",
                "SELECT name FROM country WHERE continent = 'europe'",
                False,
            ),
            DialogueTurn(
                "with population over 50000",
                "SELECT name FROM country WHERE continent = 'europe' "
                "AND population > 50000",
                True,
            ),
            DialogueTurn(
                "how many of them are there",
                "SELECT COUNT(*) FROM country WHERE continent = 'europe' "
                "AND population > 50000",
                True,
            ),
        ],
    ]


# ==========================================================================
# Wild (held-out phrasing) sets — NOT guaranteed to parse.
#
# Era evaluations distinguished "habitual" users (in-grammar phrasing,
# high coverage) from unrestricted input.  These questions use passive
# voice, unusual vocabulary and clause orders the grammar may not cover;
# T1 reports coverage on them separately.
# ==========================================================================


def fleet_wild(database: Database) -> list[QuestionExample]:
    d = "fleet"
    return [
        _ex(d, "i would like to see every ship we own",
            "SELECT name FROM ship", "select"),
        _ex(d, "could you possibly tell me the ships of the pacific fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'",
            "select", "join"),
        _ex(d, "ships belonging to the atlantic fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            "ship.fleet_id = fleet.id WHERE fleet.name = 'Atlantic'",
            "select", "join"),
        _ex(d, "give the count of submarines",
            "SELECT COUNT(DISTINCT ship.id) FROM ship JOIN shiptype ON "
            "ship.type_id = shiptype.id WHERE shiptype.name = 'submarine'",
            "count", "join"),
        _ex(d, "ships exceeding 50000 tons",
            "SELECT name FROM ship WHERE displacement > 50000", "compare"),
        _ex(d, "what ships have we got in the pacific fleet",
            "SELECT DISTINCT ship.name FROM ship JOIN fleet ON "
            "ship.fleet_id = fleet.id WHERE fleet.name = 'Pacific'",
            "select", "join"),
        _ex(d, "how heavy is the enterprise",
            "SELECT displacement FROM ship WHERE name = 'Enterprise'", "attr"),
        _ex(d, "enumerate the carriers",
            "SELECT DISTINCT ship.name FROM ship JOIN shiptype ON "
            "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'",
            "select", "join"),
        _ex(d, "which vessels were commissioned in 1970",
            "SELECT name FROM ship WHERE commissioned = 1970", "compare"),
        _ex(d, "are there any ships faster than 33 knots",
            "SELECT name FROM ship WHERE speed > 33", "compare"),
        _ex(d, "ships not exceeding 5000 tons",
            "SELECT name FROM ship WHERE displacement <= 5000", "compare",
            "negation"),
        _ex(d, "whats the biggest boat",
            "SELECT name FROM ship ORDER BY displacement DESC LIMIT 1", "super"),
        _ex(d, "rank the fleets by the number of their ships",
            "SELECT fleet.name, COUNT(DISTINCT ship.id) FROM ship JOIN fleet "
            "ON ship.fleet_id = fleet.id GROUP BY fleet.name ORDER BY fleet.name",
            "group", "count", "join"),
        _ex(d, "display vessels alongside their speeds",
            "SELECT name, speed FROM ship", "select"),
        _ex(d, "the displacement of each carrier",
            "SELECT DISTINCT ship.displacement FROM ship JOIN shiptype ON "
            "ship.type_id = shiptype.id WHERE shiptype.name = 'carrier'",
            "attr", "join"),
    ]


def company_wild(database: Database) -> list[QuestionExample]:
    d = "company"
    return [
        _ex(d, "who works in the sales department",
            "SELECT DISTINCT employee.name FROM employee JOIN department ON "
            "employee.dept_id = department.id WHERE department.name = 'Sales'",
            "select", "join"),
        _ex(d, "employees earning more than 60000",
            "SELECT name FROM employee WHERE salary > 60000", "compare"),
        _ex(d, "what does the widget cost",
            "SELECT price FROM product WHERE name = 'Widget'", "attr"),
        _ex(d, "headcount per department",
            "SELECT department.name, COUNT(DISTINCT employee.id) FROM employee "
            "JOIN department ON employee.dept_id = department.id "
            "GROUP BY department.name ORDER BY department.name",
            "group", "count", "join"),
        _ex(d, "whom do we employ as engineers",
            "SELECT name FROM employee WHERE title = 'engineer'", "select"),
        _ex(d, "the best paid employee",
            "SELECT name FROM employee ORDER BY salary DESC LIMIT 1", "super"),
        _ex(d, "give me everybody hired since 1972",
            "SELECT name FROM employee WHERE hired >= 1972", "compare"),
        _ex(d, "clients based in new york",
            "SELECT name FROM customer WHERE city = 'New York'", "select"),
        _ex(d, "i want the salaries of all managers",
            "SELECT salary FROM employee WHERE title = 'manager'", "attr"),
        _ex(d, "sum up the salaries in engineering",
            "SELECT SUM(employee.salary) FROM employee JOIN department ON "
            "employee.dept_id = department.id "
            "WHERE department.name = 'Engineering'",
            "agg", "join"),
    ]


def geography_wild(database: Database) -> list[QuestionExample]:
    d = "geography"
    return [
        _ex(d, "through which countries does the nile flow",
            "SELECT DISTINCT country.name FROM country JOIN river ON "
            "river.country_id = country.id WHERE river.name = 'nile'",
            "select", "join"),
        _ex(d, "name the capitals",
            "SELECT name FROM city WHERE capital = TRUE", "select"),
        _ex(d, "how big is france",
            "SELECT area FROM country WHERE name = 'france'", "attr"),
        _ex(d, "people living in china",
            "SELECT population FROM country WHERE name = 'china'", "attr"),
        _ex(d, "what is the most populous country",
            "SELECT name FROM country ORDER BY population DESC LIMIT 1",
            "super"),
        _ex(d, "rivers of america",
            "SELECT DISTINCT river.name FROM river JOIN country ON "
            "river.country_id = country.id WHERE country.name = 'usa'",
            "select", "join"),
        _ex(d, "where is everest",
            "SELECT DISTINCT country.name FROM country JOIN mountain ON "
            "mountain.country_id = country.id WHERE mountain.name = 'everest'",
            "select", "join"),
        _ex(d, "which continents have more than 3 countries",
            "SELECT continent FROM country GROUP BY continent "
            "HAVING COUNT(*) > 3 ORDER BY continent",
            "group", "count"),
        _ex(d, "the city with the most people",
            "SELECT name FROM city ORDER BY population DESC LIMIT 1", "super"),
        _ex(d, "mountains exceeding 8000 meters",
            "SELECT name FROM mountain WHERE height > 8000", "compare"),
    ]


def wild_for(name: str, database: Database) -> list[QuestionExample]:
    if name == "fleet":
        return fleet_wild(database)
    if name == "company":
        return company_wild(database)
    if name == "geography":
        return geography_wild(database)
    raise ValueError(f"unknown domain {name!r}")


# ==========================================================================
# Bundles
# ==========================================================================


def load_bundle(name: str) -> DomainBundle:
    """Build database + domain model + corpora for ``name``."""
    if name == "fleet":
        db = fleet_mod.build_database()
        return DomainBundle(
            "fleet", db, fleet_mod.domain(), fleet_corpus(db),
            fleet_dialogues(db), fleet_wild(db),
        )
    if name == "company":
        db = company_mod.build_database()
        return DomainBundle(
            "company", db, company_mod.domain(),
            company_corpus(db), company_dialogues(db), company_wild(db),
        )
    if name == "geography":
        db = geography_mod.build_database()
        return DomainBundle(
            "geography", db, geography_mod.domain(),
            geography_corpus(db), geography_dialogues(db), geography_wild(db),
        )
    raise ValueError(f"unknown domain {name!r}")


ALL_DOMAINS = ("fleet", "company", "geography")


def load_all_bundles() -> list[DomainBundle]:
    return [load_bundle(name) for name in ALL_DOMAINS]
