"""The events domain — a time-series/operations world of datacenters,
hosts, services and the event stream they emit.

Schema (a fact table ``event`` with two dimension chains)::

    datacenter(id, name, country)
    host(id, name, cpus, datacenter_id->datacenter)
    service(id, name, tier)
    event(id, kind, severity, duration, day,
          host_id->host, service_id->service)

The location chain matters: "how many errors happened in frankfurt" must
route event -> host -> datacenter through a table the question never
names (the Steiner-tree join-inference case), while ``day`` gives the
corpus a time axis for range questions.
"""

from __future__ import annotations

from repro.datasets.base import rng_for
from repro.lexicon.domain import (
    AdjectiveSpec,
    AttributeSpec,
    CategoricalEntitySpec,
    DomainModel,
    EntitySpec,
    ValueSynonymSpec,
)
from repro.sqlengine import Column, Database, ForeignKey, SqlType, TableSchema

# (name, country)
_DATACENTERS = [
    ("frankfurt", "germany"),
    ("dublin", "ireland"),
    ("oregon", "usa"),
    ("virginia", "usa"),
    ("singapore", "singapore"),
    ("sydney", "australia"),
    ("tokyo", "japan"),
]

# NATO alphabet hostnames: word-like, distinct from every service name.
_HOST_NAMES = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliett", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
    "victor", "whiskey", "zulu",
]

_CPU_SIZES = [8, 16, 32, 64]

# (name, tier)
_SERVICES = [
    ("checkout", "critical"), ("billing", "critical"), ("search", "standard"),
    ("auth", "critical"), ("gateway", "standard"), ("reports", "batch"),
    ("ingest", "batch"), ("notify", "standard"),
]

_KINDS = ["error", "warning", "deploy", "restart", "alert"]


def build_database(seed: int = 23, events: int = 240) -> Database:
    """Build the events database (deterministic in ``seed``)."""
    db = Database("events")
    db.create_table(TableSchema(
        "datacenter",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("country", SqlType.TEXT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "host",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("cpus", SqlType.INT),
            Column("datacenter_id", SqlType.INT),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("datacenter_id", "datacenter", "id")],
    ))
    db.create_table(TableSchema(
        "service",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("tier", SqlType.TEXT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "event",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("kind", SqlType.TEXT, nullable=False),
            Column("severity", SqlType.INT, comment="1 (info) .. 5 (page)"),
            Column("duration", SqlType.INT, comment="milliseconds"),
            Column("day", SqlType.INT, comment="observation day 1..90"),
            Column("host_id", SqlType.INT),
            Column("service_id", SqlType.INT),
        ],
        primary_key="id",
        foreign_keys=[
            ForeignKey("host_id", "host", "id"),
            ForeignKey("service_id", "service", "id"),
        ],
    ))

    for i, (name, country) in enumerate(_DATACENTERS, start=1):
        db.insert("datacenter", (i, name, country))

    rng = rng_for(seed, "hosts")
    for i, name in enumerate(_HOST_NAMES, start=1):
        db.insert(
            "host",
            (i, name, rng.choice(_CPU_SIZES), rng.randint(1, len(_DATACENTERS))),
        )
    for i, (name, tier) in enumerate(_SERVICES, start=1):
        db.insert("service", (i, name, tier))

    rng = rng_for(seed, "events")
    for i in range(1, events + 1):
        db.insert(
            "event",
            (
                i,
                rng.choice(_KINDS),
                rng.randint(1, 5),
                rng.randint(5, 5000),
                rng.randint(1, 90),
                rng.randint(1, len(_HOST_NAMES)),
                rng.randint(1, len(_SERVICES)),
            ),
        )
    return db


def domain() -> DomainModel:
    """NL configuration for the events database."""
    return DomainModel(
        name="events",
        entities=[
            EntitySpec("datacenter", ("datacenter", "site"), ("name",)),
            EntitySpec("host", ("host", "machine", "server", "box"), ("name",)),
            EntitySpec("service", ("service",), ("name",)),
            EntitySpec("event", ("event", "incident"), ("id",)),
        ],
        attributes=[
            AttributeSpec("datacenter", "country", ("country",)),
            AttributeSpec("host", "cpus", ("cpus", "cores", "cpu count"), ("cores",)),
            AttributeSpec("service", "tier", ("tier",)),
            AttributeSpec("event", "kind", ("kind",)),
            AttributeSpec("event", "severity", ("severity",)),
            AttributeSpec(
                "event", "duration",
                ("duration", "latency"),
                ("milliseconds", "ms"),
            ),
            AttributeSpec("event", "day", ("day",)),
        ],
        adjectives=[
            AdjectiveSpec(
                "event", "duration",
                superlative_max=("longest", "slowest"),
                superlative_min=("shortest", "quickest"),
                comparative_more=("longer", "slower"),
                comparative_less=("shorter", "quicker"),
            ),
            AdjectiveSpec(
                "event", "severity",
                superlative_max=("gravest", "most severe"),
                superlative_min=("mildest",),
                comparative_more=("graver",),
                comparative_less=("milder",),
            ),
            AdjectiveSpec(
                "event", "day",
                superlative_max=("latest", "newest"),
                superlative_min=("earliest", "oldest"),
                comparative_more=("later",),
                comparative_less=("earlier",),
            ),
            AdjectiveSpec(
                "host", "cpus",
                superlative_max=("beefiest", "largest"),
                superlative_min=("smallest",),
                comparative_more=("beefier",),
                comparative_less=("leaner",),
            ),
        ],
        value_synonyms=[
            ValueSynonymSpec("failure", "event", "kind", "error"),
            ValueSynonymSpec("failures", "event", "kind", "error"),
            ValueSynonymSpec("rollout", "event", "kind", "deploy"),
        ],
        categorical_entities=[
            # "the errors", "every deploy" — kinds as event nouns
            CategoricalEntitySpec("event", "event", "kind"),
        ],
    )
