"""The navy/fleet domain — LADDER's world, rebuilt synthetically.

Schema (snowflake around ``ship``)::

    fleet(id, name, ocean, headquarters)
    port(id, name, country)
    officer(id, name, rank, nationality)
    shiptype(id, name, category)
    ship(id, name, type_id->shiptype, fleet_id->fleet,
         home_port_id->port, commander_id->officer,
         displacement, length, speed, commissioned, crew)
    deployment(id, ship_id->ship, mission, ocean, year)

Ship and officer names deliberately overlap ("Kennedy" is both) so that
ambiguity handling is exercised.
"""

from __future__ import annotations

from repro.datasets.base import pick_unique, rng_for
from repro.lexicon.domain import (
    AdjectiveSpec,
    AttributeSpec,
    CategoricalEntitySpec,
    DomainModel,
    EntitySpec,
    ValueSynonymSpec,
)
from repro.sqlengine import Column, Database, ForeignKey, SqlType, TableSchema

_FLEETS = [
    ("Pacific", "Pacific", "Pearl Harbor"),
    ("Atlantic", "Atlantic", "Norfolk"),
    ("Mediterranean", "Mediterranean", "Naples"),
    ("Indian", "Indian", "Diego Garcia"),
]

_PORTS = [
    ("Norfolk", "usa"), ("San Diego", "usa"), ("Pearl Harbor", "usa"),
    ("Yokosuka", "japan"), ("Naples", "italy"), ("Rota", "spain"),
    ("Bremerton", "usa"), ("Mayport", "usa"), ("Sasebo", "japan"),
    ("Groton", "usa"), ("Charleston", "usa"), ("Apra", "guam"),
]

_SHIP_TYPES = [
    ("carrier", "surface"), ("cruiser", "surface"), ("destroyer", "surface"),
    ("frigate", "surface"), ("submarine", "subsurface"),
]

_SHIP_NAMES = [
    "Kennedy", "Enterprise", "Nimitz", "Midway", "Saratoga", "Forrestal",
    "Ranger", "Independence", "Kitty Hawk", "Constellation", "America",
    "Eisenhower", "Vinson", "Long Beach", "Bainbridge", "Truxtun",
    "California", "South Carolina", "Virginia", "Texas", "Mississippi",
    "Arkansas", "Spruance", "Foster", "Kinkaid", "Hewitt", "Elliot",
    "Arthur", "Peterson", "Caron", "David Ray", "Oldendorf", "John Young",
    "Knox", "Roark", "Gray", "Hepburn", "Connole", "Rathburne", "Meyerkord",
    "Sturgeon", "Whale", "Tautog", "Grayling", "Pogy", "Aspro", "Sunfish",
    "Pargo", "Queenfish", "Puffer", "Flasher", "Greenling", "Gato",
    "Haddock", "Guitarro", "Hawkbill", "Bergall", "Spadefish", "Seahorse",
    "Finback",
]

_OFFICER_FIRST = [
    "Hall", "Kennedy", "Rickover", "Halsey", "Nimitz", "Spruance", "Burke",
    "Mitscher", "King", "Leahy", "Zumwalt", "Holloway", "Hayward", "Watkins",
    "Trost", "Kelso", "Moorer", "McDonald", "Anderson", "Carney", "Fechteler",
    "Sherman", "Denfeld", "Stark", "Leary", "Ingersoll", "Edwards", "Horne",
    "Royal", "Blandy", "Ramsey", "Towers", "Fitch", "Jacobs", "McCain",
    "Radford", "Ofstie", "Duncan", "Price", "Boone", "Combs", "Gardner",
    "Sallada", "Sprague", "Bogan", "Durgin", "Ballentine", "Pride", "Soucek",
    "Cassady", "Whitehead", "Tomlinson", "Greer", "Martin", "Sides",
    "Clark", "Wright", "Struble", "Ewen", "Hoskins",
]

_RANKS = ["admiral", "captain", "commander", "lieutenant"]
_NATIONALITIES = ["usa", "uk", "canada", "australia"]
_MISSIONS = ["patrol", "exercise", "escort", "survey", "transit"]
_OCEANS = ["Pacific", "Atlantic", "Mediterranean", "Indian"]

#: Displacement ranges (tons) per ship type — keeps adjectives meaningful.
_DISPLACEMENT = {
    "carrier": (60000, 95000),
    "cruiser": (9000, 18000),
    "destroyer": (5000, 9000),
    "frigate": (3000, 4500),
    "submarine": (4000, 7000),
}
_LENGTH = {
    "carrier": (990, 1100),
    "cruiser": (550, 720),
    "destroyer": (500, 565),
    "frigate": (410, 445),
    "submarine": (290, 365),
}
_SPEED = {
    "carrier": (30, 34),
    "cruiser": (30, 34),
    "destroyer": (30, 33),
    "frigate": (27, 29),
    "submarine": (20, 30),
}
_CREW = {
    "carrier": (4500, 5600),
    "cruiser": (500, 1100),
    "destroyer": (250, 350),
    "frigate": (220, 280),
    "submarine": (100, 140),
}


def build_database(seed: int = 7, ships: int = 60) -> Database:
    """Build the fleet database (deterministic in ``seed``)."""
    db = Database("fleet")
    db.create_table(TableSchema(
        "fleet",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("ocean", SqlType.TEXT),
            Column("headquarters", SqlType.TEXT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "port",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("country", SqlType.TEXT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "officer",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("rank", SqlType.TEXT),
            Column("nationality", SqlType.TEXT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "shiptype",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("category", SqlType.TEXT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "ship",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("type_id", SqlType.INT),
            Column("fleet_id", SqlType.INT),
            Column("home_port_id", SqlType.INT),
            Column("commander_id", SqlType.INT),
            Column("displacement", SqlType.INT, comment="full-load tons"),
            Column("length", SqlType.INT, comment="feet"),
            Column("speed", SqlType.INT, comment="knots"),
            Column("commissioned", SqlType.INT, comment="year"),
            Column("crew", SqlType.INT),
        ],
        primary_key="id",
        foreign_keys=[
            ForeignKey("type_id", "shiptype", "id"),
            ForeignKey("fleet_id", "fleet", "id"),
            ForeignKey("home_port_id", "port", "id"),
            ForeignKey("commander_id", "officer", "id"),
        ],
    ))
    db.create_table(TableSchema(
        "deployment",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("ship_id", SqlType.INT),
            Column("mission", SqlType.TEXT),
            Column("ocean", SqlType.TEXT),
            Column("year", SqlType.INT),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("ship_id", "ship", "id")],
    ))

    for i, (name, ocean, hq) in enumerate(_FLEETS, start=1):
        db.insert("fleet", (i, name, ocean, hq))
    for i, (name, country) in enumerate(_PORTS, start=1):
        db.insert("port", (i, name, country))
    rng = rng_for(seed, "officers")
    officer_names = pick_unique(rng, _OFFICER_FIRST, ships)
    for i, name in enumerate(officer_names, start=1):
        db.insert("officer", (i, name, rng.choice(_RANKS), rng.choice(_NATIONALITIES)))
    for i, (name, category) in enumerate(_SHIP_TYPES, start=1):
        db.insert("shiptype", (i, name, category))

    rng = rng_for(seed, "ships")
    ship_names = pick_unique(rng, _SHIP_NAMES, ships)
    for i, name in enumerate(ship_names, start=1):
        type_id = rng.randint(1, len(_SHIP_TYPES))
        type_name = _SHIP_TYPES[type_id - 1][0]
        displacement = rng.randint(*_DISPLACEMENT[type_name])
        db.insert(
            "ship",
            (
                i,
                name,
                type_id,
                rng.randint(1, len(_FLEETS)),
                rng.randint(1, len(_PORTS)),
                i,  # each ship gets its own commander
                displacement,
                rng.randint(*_LENGTH[type_name]),
                rng.randint(*_SPEED[type_name]),
                rng.randint(1955, 1977),
                rng.randint(*_CREW[type_name]),
            ),
        )

    rng = rng_for(seed, "deployments")
    deployment_id = 1
    for ship_id in range(1, ships + 1):
        for _ in range(rng.randint(1, 3)):
            db.insert(
                "deployment",
                (
                    deployment_id,
                    ship_id,
                    rng.choice(_MISSIONS),
                    rng.choice(_OCEANS),
                    rng.randint(1970, 1977),
                ),
            )
            deployment_id += 1
    return db


def domain() -> DomainModel:
    """NL configuration for the fleet database."""
    def ship_attr(column, phrases, units=()):
        return AttributeSpec("ship", column, tuple(phrases), tuple(units))
    return DomainModel(
        name="fleet",
        entities=[
            EntitySpec("ship", ("ship", "vessel", "boat"), ("name",)),
            EntitySpec("fleet", ("fleet",), ("name",)),
            EntitySpec("port", ("port", "harbor", "base"), ("name",)),
            EntitySpec(
                "officer",
                ("officer", "commander", "captain", "skipper"),
                ("name",),
            ),
            EntitySpec("shiptype", ("type", "class"), ("name",)),
            EntitySpec("deployment", ("deployment", "mission", "cruise"), ("mission",)),
        ],
        attributes=[
            ship_attr("displacement", ("displacement", "tonnage", "weight"), ("tons", "ton")),
            ship_attr("length", ("length",), ("feet", "foot")),
            ship_attr("speed", ("speed",), ("knots", "knot")),
            ship_attr(
                "commissioned",
                ("commissioned", "built", "launched", "commissioning year"),
            ),
            ship_attr("crew", ("crew", "complement", "crew size"), ("men", "sailors")),
            AttributeSpec("fleet", "ocean", ("ocean",)),
            AttributeSpec("fleet", "headquarters", ("headquarters",)),
            AttributeSpec("port", "country", ("country",)),
            AttributeSpec("officer", "rank", ("rank",)),
            AttributeSpec("officer", "nationality", ("nationality",)),
            AttributeSpec("deployment", "year", ("year",)),
        ],
        adjectives=[
            AdjectiveSpec(
                "ship", "displacement",
                superlative_max=("largest", "biggest", "heaviest"),
                superlative_min=("smallest", "lightest"),
                comparative_more=("larger", "bigger", "heavier"),
                comparative_less=("smaller", "lighter"),
            ),
            AdjectiveSpec(
                "ship", "length",
                superlative_max=("longest",),
                superlative_min=("shortest",),
                comparative_more=("longer",),
                comparative_less=("shorter",),
            ),
            AdjectiveSpec(
                "ship", "speed",
                superlative_max=("fastest",),
                superlative_min=("slowest",),
                comparative_more=("faster",),
                comparative_less=("slower",),
            ),
            AdjectiveSpec(
                "ship", "commissioned",
                superlative_max=("newest",),
                superlative_min=("oldest",),
                comparative_more=("newer",),
                comparative_less=("older",),
            ),
        ],
        value_synonyms=[
            ValueSynonymSpec("sub", "shiptype", "name", "submarine"),
            ValueSynonymSpec("subs", "shiptype", "name", "submarine"),
            ValueSynonymSpec("flattop", "shiptype", "name", "carrier"),
        ],
        categorical_entities=[
            # "the carriers", "all submarines" — type names as ship nouns
            CategoricalEntitySpec("ship", "shiptype", "name"),
            # "the admirals", "every captain" — ranks as officer nouns
            CategoricalEntitySpec("officer", "officer", "rank"),
        ],
    )
