"""The geography domain — a GEOBASE-style world of countries, cities,
rivers and mountains.

Real names, synthetic-but-plausible numbers (fixed, not random, so the
domain doubles as a readable demo).  "largest" is deliberately ambiguous
(population for countries and cities, length for rivers, height for
mountains) to exercise the adjective machinery across tables.
"""

from __future__ import annotations

from repro.lexicon.domain import (
    AdjectiveSpec,
    AttributeSpec,
    DomainModel,
    EntitySpec,
    ValueSynonymSpec,
)
from repro.sqlengine import Column, Database, ForeignKey, SqlType, TableSchema

# (name, continent, population-in-thousands, area 1000 km^2)
_COUNTRIES = [
    ("usa", "north america", 216000, 9363),
    ("canada", "north america", 23300, 9976),
    ("mexico", "north america", 64600, 1973),
    ("brazil", "south america", 116000, 8512),
    ("argentina", "south america", 26400, 2777),
    ("peru", "south america", 16800, 1285),
    ("france", "europe", 53100, 547),
    ("germany", "europe", 61400, 357),
    ("spain", "europe", 36400, 505),
    ("italy", "europe", 56400, 301),
    ("poland", "europe", 34700, 313),
    ("egypt", "africa", 38700, 1001),
    ("nigeria", "africa", 66600, 924),
    ("zaire", "africa", 26300, 2345),
    ("china", "asia", 958000, 9597),
    ("india", "asia", 638000, 3288),
    ("japan", "asia", 114000, 372),
    ("australia", "oceania", 14100, 7687),
]

# (name, country, population-in-thousands, capital?)
_CITIES = [
    ("washington", "usa", 700, True), ("new york", "usa", 7400, False),
    ("chicago", "usa", 3100, False), ("los angeles", "usa", 2800, False),
    ("ottawa", "canada", 300, True), ("toronto", "canada", 2800, False),
    ("mexico city", "mexico", 8900, True), ("brasilia", "brazil", 800, True),
    ("sao paulo", "brazil", 7200, False), ("buenos aires", "argentina", 2900, True),
    ("lima", "peru", 3300, True), ("paris", "france", 2300, True),
    ("berlin", "germany", 3100, True), ("madrid", "spain", 3200, True),
    ("rome", "italy", 2900, True), ("warsaw", "poland", 1500, True),
    ("cairo", "egypt", 5100, True), ("lagos", "nigeria", 1100, True),
    ("kinshasa", "zaire", 2000, True), ("peking", "china", 8500, True),
    ("shanghai", "china", 10900, False), ("delhi", "india", 4700, True),
    ("bombay", "india", 6000, False), ("tokyo", "japan", 8600, True),
    ("osaka", "japan", 2700, False), ("canberra", "australia", 220, True),
    ("sydney", "australia", 3100, False),
]

# (name, country, length in km)
_RIVERS = [
    ("mississippi", "usa", 3770), ("missouri", "usa", 3725),
    ("rio grande", "usa", 3030), ("mackenzie", "canada", 4240),
    ("amazon", "brazil", 6400), ("parana", "argentina", 4880),
    ("seine", "france", 776), ("rhine", "germany", 1230),
    ("ebro", "spain", 930), ("po", "italy", 652),
    ("vistula", "poland", 1047), ("nile", "egypt", 6650),
    ("niger", "nigeria", 4180), ("congo", "zaire", 4700),
    ("yangtze", "china", 6300), ("yellow", "china", 5460),
    ("ganges", "india", 2525), ("murray", "australia", 2508),
]

# (name, country, height in meters)
_MOUNTAINS = [
    ("mckinley", "usa", 6194), ("whitney", "usa", 4418),
    ("logan", "canada", 5959), ("orizaba", "mexico", 5700),
    ("aconcagua", "argentina", 6961), ("huascaran", "peru", 6768),
    ("mont blanc", "france", 4808), ("zugspitze", "germany", 2962),
    ("mulhacen", "spain", 3479), ("gran paradiso", "italy", 4061),
    ("rysy", "poland", 2499), ("kilimanjaro", "nigeria", 5895),
    ("everest", "china", 8848), ("k2", "india", 8611),
    ("fuji", "japan", 3776), ("kosciuszko", "australia", 2228),
]


def build_database(seed: int = 0) -> Database:
    """Build the geography database (fixed contents; seed kept for API parity)."""
    db = Database("geography")
    db.create_table(TableSchema(
        "country",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("continent", SqlType.TEXT),
            Column("population", SqlType.INT, comment="thousands"),
            Column("area", SqlType.INT, comment="1000 km^2"),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "city",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("country_id", SqlType.INT),
            Column("population", SqlType.INT, comment="thousands"),
            Column("capital", SqlType.BOOL),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("country_id", "country", "id")],
    ))
    db.create_table(TableSchema(
        "river",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("country_id", SqlType.INT),
            Column("length", SqlType.INT, comment="km"),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("country_id", "country", "id")],
    ))
    db.create_table(TableSchema(
        "mountain",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("country_id", SqlType.INT),
            Column("height", SqlType.INT, comment="meters"),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("country_id", "country", "id")],
    ))

    country_ids = {}
    for i, (name, continent, population, area) in enumerate(_COUNTRIES, start=1):
        db.insert("country", (i, name, continent, population, area))
        country_ids[name] = i
    for i, (name, country, population, capital) in enumerate(_CITIES, start=1):
        db.insert("city", (i, name, country_ids[country], population, capital))
    for i, (name, country, length) in enumerate(_RIVERS, start=1):
        db.insert("river", (i, name, country_ids[country], length))
    for i, (name, country, height) in enumerate(_MOUNTAINS, start=1):
        db.insert("mountain", (i, name, country_ids[country], height))
    return db


def domain() -> DomainModel:
    """NL configuration for the geography database."""
    return DomainModel(
        name="geography",
        entities=[
            EntitySpec("country", ("country", "nation", "state"), ("name",)),
            EntitySpec("city", ("city", "town"), ("name",)),
            EntitySpec("river", ("river",), ("name",)),
            EntitySpec("mountain", ("mountain", "peak"), ("name",)),
        ],
        attributes=[
            AttributeSpec("country", "population", ("population", "people"),
                          ("inhabitants",)),
            AttributeSpec("country", "area", ("area", "size", "surface")),
            AttributeSpec("country", "continent", ("continent",)),
            AttributeSpec("city", "population", ("population", "people"),
                          ("inhabitants",)),
            AttributeSpec("river", "length", ("length",), ("km", "kilometers")),
            AttributeSpec("mountain", "height", ("height", "elevation", "altitude"),
                          ("meters", "metres")),
        ],
        adjectives=[
            AdjectiveSpec(
                "country", "population",
                superlative_max=("largest", "biggest", "most populous"),
                superlative_min=("smallest", "least populous"),
                comparative_more=("larger", "bigger", "more populous"),
                comparative_less=("smaller",),
            ),
            AdjectiveSpec(
                "city", "population",
                superlative_max=("largest", "biggest"),
                superlative_min=("smallest",),
                comparative_more=("larger", "bigger"),
                comparative_less=("smaller",),
            ),
            AdjectiveSpec(
                "river", "length",
                superlative_max=("longest",),
                superlative_min=("shortest",),
                comparative_more=("longer",),
                comparative_less=("shorter",),
            ),
            AdjectiveSpec(
                "mountain", "height",
                superlative_max=("highest", "tallest"),
                superlative_min=("lowest",),
                comparative_more=("higher", "taller"),
                comparative_less=("lower",),
            ),
        ],
        value_synonyms=[
            ValueSynonymSpec("america", "country", "name", "usa"),
            ValueSynonymSpec("united states", "country", "name", "usa"),
            ValueSynonymSpec("us", "country", "name", "usa"),
            # BOOL flags work as value synonyms too: "the capitals"
            ValueSynonymSpec("capital", "city", "capital", True),  # type: ignore[arg-type]
        ],
    )
