"""The saas domain — a multi-tenant SaaS back office.

Schema (a chain, deliberately deeper than the star/snowflake domains)::

    tenant(id, name, plan, region, seats)
    member(id, name, role, tenant_id->tenant)
    project(id, name, stage, tenant_id->tenant)
    ticket(id, code, status, priority, opened,
           project_id->project, assignee_id->member)

Tickets hang off *projects*, not tenants, so a question like "how many
tickets does acme have" must route ticket -> project -> tenant through an
intermediate table the question never mentions — exactly the Steiner-tree
join-inference case the snowflake domains cannot exercise.
"""

from __future__ import annotations

from repro.datasets.base import pick_unique, rng_for
from repro.lexicon.domain import (
    AdjectiveSpec,
    AttributeSpec,
    CategoricalEntitySpec,
    DomainModel,
    EntitySpec,
    ValueSynonymSpec,
)
from repro.sqlengine import Column, Database, ForeignKey, SqlType, TableSchema

# (name, plan, region, seats)
_TENANTS = [
    ("Acme", "enterprise", "americas", 500),
    ("Globex", "starter", "europe", 40),
    ("Initech", "professional", "americas", 120),
    ("Umbrella", "enterprise", "europe", 800),
    ("Hooli", "free", "americas", 15),
    ("Vandelay", "starter", "asia", 30),
    ("Cyberdyne", "professional", "asia", 200),
    ("Soylent", "free", "europe", 10),
]

_MEMBER_NAMES = [
    "Okafor", "Svensson", "Tanaka", "Rossi", "Dubois", "Novak", "Silva",
    "Haddad", "Olsen", "Weber", "Moreau", "Costa", "Petrov", "Yamada",
    "Iyer", "Fischer", "Brennan", "Kowalski", "Lindgren", "Vargas",
    "Nakamura", "Bauer", "Eriksen", "Fontaine", "Marino", "Castro",
    "Jensen", "Keller", "Bianchi", "Duval", "Soto", "Larsen", "Meier",
    "Romano", "Vega", "Holm", "Klein", "Ricci", "Berg", "Aalto",
]

_ROLES = ["owner", "admin", "developer", "viewer"]

_PROJECT_NAMES = [
    "Apollo", "Zephyr", "Borealis", "Cascade", "Drift", "Ember",
    "Flux", "Granite", "Harbor", "Ivory", "Juniper", "Krypton",
    "Lumen", "Meridian", "Nimbus", "Orbit",
]

_STAGES = ["alpha", "beta", "live"]
_STATUSES = ["open", "closed", "pending"]


def build_database(seed: int = 17, members: int = 40, tickets: int = 160) -> Database:
    """Build the saas database (deterministic in ``seed``)."""
    db = Database("saas")
    db.create_table(TableSchema(
        "tenant",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("plan", SqlType.TEXT),
            Column("region", SqlType.TEXT),
            Column("seats", SqlType.INT),
        ],
        primary_key="id",
    ))
    db.create_table(TableSchema(
        "member",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("role", SqlType.TEXT),
            Column("tenant_id", SqlType.INT),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("tenant_id", "tenant", "id")],
    ))
    db.create_table(TableSchema(
        "project",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("name", SqlType.TEXT, nullable=False),
            Column("stage", SqlType.TEXT),
            Column("tenant_id", SqlType.INT),
        ],
        primary_key="id",
        foreign_keys=[ForeignKey("tenant_id", "tenant", "id")],
    ))
    db.create_table(TableSchema(
        "ticket",
        [
            Column("id", SqlType.INT, nullable=False),
            Column("code", SqlType.TEXT, nullable=False),
            Column("status", SqlType.TEXT),
            Column("priority", SqlType.INT, comment="1 (low) .. 5 (urgent)"),
            Column("opened", SqlType.INT, comment="year"),
            Column("project_id", SqlType.INT),
            Column("assignee_id", SqlType.INT),
        ],
        primary_key="id",
        foreign_keys=[
            ForeignKey("project_id", "project", "id"),
            ForeignKey("assignee_id", "member", "id"),
        ],
    ))

    for i, (name, plan, region, seats) in enumerate(_TENANTS, start=1):
        db.insert("tenant", (i, name, plan, region, seats))

    rng = rng_for(seed, "members")
    names = pick_unique(rng, _MEMBER_NAMES, members)
    # Round-robin tenants so every tenant has members; a ticket's assignee
    # is then drawn from the *owning* tenant's members, which keeps the two
    # 2-hop join readings of "tickets of acme" (via project vs via
    # assignee) extensionally equivalent — the corpus gold SQL stays
    # well-defined whichever tree the Steiner inference picks.
    members_of: dict[int, list[int]] = {}
    for i, name in enumerate(names, start=1):
        tenant_id = (i - 1) % len(_TENANTS) + 1
        members_of.setdefault(tenant_id, []).append(i)
        db.insert("member", (i, name, rng.choice(_ROLES), tenant_id))

    rng = rng_for(seed, "projects")
    # Two projects per tenant, so every tenant answers ticket questions.
    for i, name in enumerate(_PROJECT_NAMES, start=1):
        tenant_id = (i - 1) % len(_TENANTS) + 1
        db.insert("project", (i, name, rng.choice(_STAGES), tenant_id))

    rng = rng_for(seed, "tickets")
    for i in range(1, tickets + 1):
        project_id = rng.randint(1, len(_PROJECT_NAMES))
        tenant_id = (project_id - 1) % len(_TENANTS) + 1
        db.insert(
            "ticket",
            (
                i,
                f"T{1000 + i}",
                rng.choice(_STATUSES),
                rng.randint(1, 5),
                rng.randint(1970, 1977),
                project_id,
                rng.choice(members_of[tenant_id]),
            ),
        )
    return db


def domain() -> DomainModel:
    """NL configuration for the saas database."""
    return DomainModel(
        name="saas",
        entities=[
            EntitySpec("tenant", ("tenant", "customer", "organization"), ("name",)),
            EntitySpec("member", ("member", "user", "teammate"), ("name",)),
            EntitySpec("project", ("project", "workspace"), ("name",)),
            EntitySpec("ticket", ("ticket", "issue", "bug"), ("code",)),
        ],
        attributes=[
            AttributeSpec("tenant", "plan", ("plan", "tier", "subscription")),
            AttributeSpec("tenant", "region", ("region",)),
            AttributeSpec("tenant", "seats", ("seats", "seat count"), ("seats",)),
            AttributeSpec("member", "role", ("role",)),
            AttributeSpec("project", "stage", ("stage",)),
            AttributeSpec("ticket", "status", ("status",)),
            AttributeSpec("ticket", "priority", ("priority", "urgency")),
            AttributeSpec("ticket", "opened", ("opened", "filed", "opening year")),
        ],
        adjectives=[
            AdjectiveSpec(
                "tenant", "seats",
                superlative_max=("largest", "biggest"),
                superlative_min=("smallest",),
                comparative_more=("larger", "bigger"),
                comparative_less=("smaller",),
            ),
            AdjectiveSpec(
                "ticket", "priority",
                superlative_max=("hottest", "most urgent"),
                superlative_min=("mildest",),
                comparative_more=("hotter",),
                comparative_less=("milder",),
            ),
            AdjectiveSpec(
                "ticket", "opened",
                superlative_max=("newest", "latest"),
                superlative_min=("oldest", "earliest"),
                comparative_more=("newer",),
                comparative_less=("older",),
            ),
        ],
        value_synonyms=[
            ValueSynonymSpec("pro", "tenant", "plan", "professional"),
            ValueSynonymSpec("dev", "member", "role", "developer"),
            ValueSynonymSpec("devs", "member", "role", "developer"),
        ],
        categorical_entities=[
            # "the admins", "every developer" — roles as member nouns
            CategoricalEntitySpec("member", "member", "role"),
        ],
    )
