"""Exception hierarchy for the ``repro`` library.

Every layer raises a subclass of :class:`ReproError`, so applications can
catch one base class at the API boundary while tests can assert on the
specific failure mode.

Service-layer note: the user-input failures of the NL pipeline —
:class:`ParseFailure`, :class:`InterpretationError`,
:class:`AmbiguityError`, :class:`DialogueError` — are not *raised* by
``NaturalLanguageInterface.ask``.  They are reported as structured
diagnostics on :class:`repro.service.Response`, which records the
exception class name as ``Response.error_type``; callers that want
exception control flow use ``Response.raise_for_status()``.  The classes
themselves remain importable from here and are still raised by the
lower-level pipeline stages (``parse``, ``interpret``, …).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --------------------------------------------------------------------------
# SQL engine errors
# --------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for relational-engine failures."""


class SchemaError(EngineError):
    """Invalid schema definition or violated schema constraint."""


class TypeMismatchError(EngineError):
    """A value does not match the declared column type."""


class IntegrityError(EngineError):
    """Primary-key or foreign-key constraint violation."""


class UnknownTableError(EngineError):
    """Referenced table does not exist in the catalog."""


class UnknownColumnError(EngineError):
    """Referenced column does not exist in the table or scope."""


class SqlSyntaxError(EngineError):
    """The SQL text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class PlanError(EngineError):
    """The parsed statement cannot be turned into an executable plan."""


class ExecutionError(EngineError):
    """Runtime failure while executing a plan (e.g. divide by zero)."""


class TransactionError(EngineError):
    """Invalid transaction control: nested BEGIN, or COMMIT/ROLLBACK
    with no open transaction."""


# --------------------------------------------------------------------------
# Storage errors
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Durable-storage failure: unreadable data directory, or a WAL /
    checkpoint file written by a newer (unsupported) format version."""


# --------------------------------------------------------------------------
# NL pipeline errors
# --------------------------------------------------------------------------


class NliError(ReproError):
    """Base class for natural-language pipeline failures."""


class LexiconError(NliError):
    """Invalid lexicon entry or lexicon construction failure."""


class GrammarError(NliError):
    """Malformed grammar definition."""


class ParseFailure(NliError):
    """No complete parse could be found for the question."""

    def __init__(self, message: str, tokens: list[str] | None = None) -> None:
        super().__init__(message)
        self.tokens = tokens or []


class InterpretationError(NliError):
    """A parse was found but could not be mapped onto the schema."""


class AmbiguityError(NliError):
    """Multiple interpretations survive and clarification is required."""

    def __init__(self, message: str, choices: list[str] | None = None) -> None:
        super().__init__(message)
        self.choices = choices or []


class DialogueError(NliError):
    """Follow-up could not be resolved against the session context."""


# --------------------------------------------------------------------------
# Service-layer errors
# --------------------------------------------------------------------------


class ClarificationError(NliError):
    """A clarification could not be resolved: unknown (or already consumed)
    clarification id, or a choice index outside the offered range.

    Unlike the user-input failures above — which since the Response
    envelope redesign are *reported* on :class:`repro.service.Response`
    rather than raised — this is a caller programming error, so it raises.
    """
