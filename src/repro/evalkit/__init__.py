"""Evaluation kit: metrics, harness, corruption, report tables."""

from repro.evalkit.corruption import corrupt_question, corrupt_word
from repro.evalkit.harness import (
    DialogueEval,
    EvalResult,
    NliSystem,
    evaluate_dialogues,
    evaluate_nli,
    evaluate_system,
    per_feature_accuracy,
)
from repro.evalkit.metrics import (
    ResponseScore,
    StageCounts,
    Tally,
    answer_set_matches,
    answers_match,
    failure_stage,
    score_response,
)
from repro.evalkit.report import format_series, format_table, pct

__all__ = [
    "DialogueEval",
    "EvalResult",
    "NliSystem",
    "ResponseScore",
    "StageCounts",
    "Tally",
    "answer_set_matches",
    "answers_match",
    "corrupt_question",
    "corrupt_word",
    "evaluate_dialogues",
    "evaluate_nli",
    "evaluate_system",
    "failure_stage",
    "format_series",
    "format_table",
    "pct",
    "per_feature_accuracy",
    "score_response",
]
