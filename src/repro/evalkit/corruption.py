"""Typo injection for the spelling-robustness experiment (F3)."""

from __future__ import annotations

import random

_KEYBOARD_NEIGHBORS = {
    "a": "sq", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "ry", "u": "yi", "v": "cb", "w": "qe", "x": "zc",
    "y": "tu", "z": "x",
}


def corrupt_word(word: str, rng: random.Random) -> str:
    """Apply one random edit (swap, drop, double, neighbor-substitute)."""
    if len(word) < 4 or not word.isalpha():
        return word
    kind = rng.choice(["swap", "drop", "double", "substitute"])
    i = rng.randrange(1, len(word) - 1)
    if kind == "swap" and i + 1 < len(word):
        return word[:i] + word[i + 1] + word[i] + word[i + 2 :]
    if kind == "drop":
        return word[:i] + word[i + 1 :]
    if kind == "double":
        return word[:i] + word[i] + word[i:]
    neighbors = _KEYBOARD_NEIGHBORS.get(word[i], word[i])
    return word[:i] + rng.choice(neighbors) + word[i + 1 :]


def corrupt_question(question: str, rate: float, rng: random.Random) -> str:
    """Corrupt each eligible word with probability ``rate``.

    Words shorter than 4 characters and numbers are left alone (matching
    the corrector's own threshold, so the experiment measures correction,
    not hopeless cases).
    """
    words = question.split()
    out = []
    for word in words:
        if len(word) >= 4 and word.isalpha() and rng.random() < rate:
            corrupted = corrupt_word(word, rng)
            out.append(corrupted)
        else:
            out.append(word)
    return " ".join(out)
