"""Evaluation harness: run systems over corpora and collect metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.config import NliConfig
from repro.core.dialogue import Session
from repro.core.pipeline import NaturalLanguageInterface
from repro.datasets.corpus import DialogueTurn, DomainBundle, QuestionExample
from repro.errors import NliError, ReproError
from repro.evalkit.metrics import StageCounts, Tally, answers_match
from repro.sqlengine.executor import Engine
from repro.sqlengine.result import ResultSet


class QuestionAnswerer(Protocol):
    """Anything that turns an English question into a ResultSet."""

    def answer(self, question: str) -> ResultSet:  # pragma: no cover
        ...


class NliSystem:
    """Adapter: the full NLI pipeline as a QuestionAnswerer."""

    name = "semantic-grammar NLI"

    def __init__(self, bundle: DomainBundle, config: NliConfig | None = None) -> None:
        self.nli = NaturalLanguageInterface(
            bundle.database, domain=bundle.model, config=config
        )

    def answer(self, question: str) -> ResultSet:
        return self.nli.ask(question).result


@dataclass
class EvalResult:
    """Accuracy + per-stage coverage over one corpus."""

    system: str
    domain: str
    stages: StageCounts = field(default_factory=StageCounts)

    @property
    def accuracy(self) -> float:
        return self.stages.accuracy


def evaluate_nli(
    bundle: DomainBundle,
    config: NliConfig | None = None,
    examples: list[QuestionExample] | None = None,
) -> EvalResult:
    """Run the full pipeline over a corpus with stage accounting."""
    nli = NaturalLanguageInterface(bundle.database, domain=bundle.model, config=config)
    gold_engine = Engine(bundle.database)
    result = EvalResult("nli", bundle.name)
    for example in examples if examples is not None else bundle.corpus:
        gold = gold_engine.execute(example.gold_sql)
        try:
            tokens, _ = nli.normalize(example.question)
            if not tokens:
                result.stages.record(example.question, "tokenize")
                continue
            try:
                sketches = nli._parse_tokens(tokens, None)
            except NliError:
                result.stages.record(example.question, "tokenize")
                continue
            full = [s for s in sketches if not s.fragment]
            if not full:
                result.stages.record(example.question, "parse")
                continue
            try:
                interpretations = nli.interpreter.interpret(full)
            except NliError:
                result.stages.record(example.question, "parse")
                continue
            best = interpretations[0]
            try:
                produced = nli.engine.execute(nli.sqlgen.generate(best.query))
            except ReproError:
                result.stages.record(example.question, "interpret")
                continue
            correct = answers_match(produced, gold)
            result.stages.record(example.question, "answered", correct=correct)
        except ReproError:
            result.stages.record(example.question, "tokenize")
    return result


def evaluate_system(
    system: QuestionAnswerer,
    bundle: DomainBundle,
    examples: list[QuestionExample] | None = None,
) -> Tally:
    """Answer-accuracy only (for baselines)."""
    gold_engine = Engine(bundle.database)
    tally = Tally()
    for example in examples if examples is not None else bundle.corpus:
        gold = gold_engine.execute(example.gold_sql)
        try:
            produced = system.answer(example.question)
        except ReproError:
            tally.add(False)
            continue
        tally.add(answers_match(produced, gold))
    return tally


@dataclass
class DialogueEval:
    """Outcome of scripted multi-turn sessions."""

    first_turns: Tally = field(default_factory=Tally)
    followups: Tally = field(default_factory=Tally)


def evaluate_dialogues(
    bundle: DomainBundle, config: NliConfig | None = None
) -> DialogueEval:
    """Run scripted sessions; follow-ups are scored separately (T4)."""
    nli = NaturalLanguageInterface(bundle.database, domain=bundle.model, config=config)
    gold_engine = Engine(bundle.database)
    outcome = DialogueEval()
    for session_script in bundle.dialogues:
        session = Session()
        for turn in session_script:
            gold = gold_engine.execute(turn.gold_sql)
            try:
                answer = nli.ask(turn.question, session=session)
                correct = answers_match(answer.result, gold)
            except ReproError:
                correct = False
            if turn.is_followup:
                outcome.followups.add(correct)
            else:
                outcome.first_turns.add(correct)
    return outcome


def per_feature_accuracy(
    bundle: DomainBundle, config: NliConfig | None = None
) -> dict[str, Tally]:
    """Accuracy partitioned by construct tag (drives Table 3)."""
    nli = NaturalLanguageInterface(bundle.database, domain=bundle.model, config=config)
    gold_engine = Engine(bundle.database)
    buckets: dict[str, Tally] = {}
    for example in bundle.corpus:
        gold = gold_engine.execute(example.gold_sql)
        try:
            produced = nli.ask(example.question).result
            correct = answers_match(produced, gold)
        except ReproError:
            correct = False
        for feature in example.features:
            buckets.setdefault(feature, Tally()).add(correct)
    return buckets
