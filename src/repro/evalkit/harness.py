"""Evaluation harness: run systems over corpora and collect metrics.

Every system under evaluation — the full pipeline and both baselines —
speaks the same :class:`~repro.service.Response` protocol, so the evalkit
compares like with like: an ``ask()`` that returns a structured envelope
whose diagnostics say *where* the pipeline gave up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.config import NliConfig
from repro.core.dialogue import Session
from repro.core.pipeline import NaturalLanguageInterface
from repro.datasets.corpus import DomainBundle, QuestionExample
from repro.evalkit.metrics import StageCounts, Tally, answers_match, failure_stage
from repro.service.response import Response
from repro.sqlengine.executor import Engine

__all__ = [
    "DialogueEval",
    "EvalResult",
    "NliSystem",
    "QuestionAnswerer",
    "evaluate_dialogues",
    "evaluate_nli",
    "evaluate_system",
    "failure_stage",
    "per_feature_accuracy",
]


class QuestionAnswerer(Protocol):
    """Anything that answers an English question with a Response."""

    def ask(self, question: str) -> Response:  # pragma: no cover
        ...


class NliSystem:
    """Adapter: the full NLI pipeline as a QuestionAnswerer."""

    name = "semantic-grammar NLI"

    def __init__(self, bundle: DomainBundle, config: NliConfig | None = None) -> None:
        self.nli = NaturalLanguageInterface(
            bundle.database, domain=bundle.model, config=config
        )

    def ask(self, question: str) -> Response:
        return self.nli.ask(question)

    def answer(self, question: str):
        """Legacy accessor: the raw ResultSet (raises on failure)."""
        response = self.nli.ask(question)
        response.raise_for_status()
        assert response.answer is not None
        return response.answer.result


@dataclass
class EvalResult:
    """Accuracy + per-stage coverage over one corpus."""

    system: str
    domain: str
    stages: StageCounts = field(default_factory=StageCounts)

    @property
    def accuracy(self) -> float:
        return self.stages.accuracy


def evaluate_nli(
    bundle: DomainBundle,
    config: NliConfig | None = None,
    examples: list[QuestionExample] | None = None,
) -> EvalResult:
    """Run the full pipeline over a corpus with stage accounting."""
    nli = NaturalLanguageInterface(bundle.database, domain=bundle.model, config=config)
    gold_engine = Engine(bundle.database)
    result = EvalResult("nli", bundle.name)
    for example in examples if examples is not None else bundle.corpus:
        gold = gold_engine.execute(example.gold_sql)
        response = nli.ask(example.question)
        if response.ok:
            correct = answers_match(response.answer.result, gold)
            result.stages.record(example.question, "answered", correct=correct)
        else:
            result.stages.record(example.question, failure_stage(response))
    return result


def evaluate_system(
    system: QuestionAnswerer,
    bundle: DomainBundle,
    examples: list[QuestionExample] | None = None,
) -> Tally:
    """Answer-accuracy only (for baselines)."""
    gold_engine = Engine(bundle.database)
    tally = Tally()
    for example in examples if examples is not None else bundle.corpus:
        gold = gold_engine.execute(example.gold_sql)
        response = system.ask(example.question)
        tally.add(response.ok and answers_match(response.answer.result, gold))
    return tally


@dataclass
class DialogueEval:
    """Outcome of scripted multi-turn sessions."""

    first_turns: Tally = field(default_factory=Tally)
    followups: Tally = field(default_factory=Tally)


def evaluate_dialogues(
    bundle: DomainBundle, config: NliConfig | None = None
) -> DialogueEval:
    """Run scripted sessions; follow-ups are scored separately (T4)."""
    nli = NaturalLanguageInterface(bundle.database, domain=bundle.model, config=config)
    gold_engine = Engine(bundle.database)
    outcome = DialogueEval()
    for session_script in bundle.dialogues:
        session = Session()
        for turn in session_script:
            gold = gold_engine.execute(turn.gold_sql)
            response = nli.ask(turn.question, session=session)
            correct = response.ok and answers_match(response.answer.result, gold)
            if turn.is_followup:
                outcome.followups.add(correct)
            else:
                outcome.first_turns.add(correct)
    return outcome


def per_feature_accuracy(
    bundle: DomainBundle, config: NliConfig | None = None
) -> dict[str, Tally]:
    """Accuracy partitioned by construct tag (drives Table 3)."""
    nli = NaturalLanguageInterface(bundle.database, domain=bundle.model, config=config)
    gold_engine = Engine(bundle.database)
    buckets: dict[str, Tally] = {}
    for example in bundle.corpus:
        gold = gold_engine.execute(example.gold_sql)
        response = nli.ask(example.question)
        correct = response.ok and answers_match(response.answer.result, gold)
        for feature in example.features:
            buckets.setdefault(feature, Tally()).add(correct)
    return buckets
