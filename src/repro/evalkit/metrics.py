"""Evaluation metrics: answer-set accuracy and stage-coverage accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlengine.result import ResultSet


def answers_match(produced: ResultSet, gold: ResultSet) -> bool:
    """Answer-set equality: same column count, same set of rows.

    Floats are rounded (6 places) inside ``answer_set``; row order and
    column names are ignored — the standard NLIDB correctness notion.
    """
    if produced.columns and gold.columns and len(produced.columns) != len(gold.columns):
        return False
    return produced.answer_set() == gold.answer_set()


@dataclass
class StageCounts:
    """Per-question pipeline outcome tally (drives Table 1)."""

    total: int = 0
    parsed: int = 0
    interpreted: int = 0
    executed: int = 0
    correct: int = 0
    failures: list[tuple[str, str]] = field(default_factory=list)  # (question, stage)

    def record(self, question: str, stage: str, correct: bool = False) -> None:
        """``stage`` in {'tokenize','parse','interpret','execute','answered'}."""
        self.total += 1
        order = ["tokenize", "parse", "interpret", "execute", "answered"]
        reached = order.index(stage)
        if reached >= 1:
            self.parsed += 1
        if reached >= 2:
            self.interpreted += 1
        if reached >= 3:
            self.executed += 1
        if correct:
            self.correct += 1
        if stage != "answered" or not correct:
            self.failures.append((question, stage))

    @property
    def parse_rate(self) -> float:
        return self.parsed / self.total if self.total else 0.0

    @property
    def interpret_rate(self) -> float:
        return self.interpreted / self.total if self.total else 0.0

    @property
    def execute_rate(self) -> float:
        return self.executed / self.total if self.total else 0.0

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


@dataclass
class Tally:
    """Simple correct/total accumulator with accuracy."""

    correct: int = 0
    total: int = 0

    def add(self, is_correct: bool) -> None:
        self.total += 1
        if is_correct:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def __str__(self) -> str:
        return f"{self.correct}/{self.total} ({100 * self.accuracy:.1f}%)"
