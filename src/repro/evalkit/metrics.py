"""Evaluation metrics: answer-set accuracy and stage-coverage accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.service.response import (
    EMPTY_QUESTION,
    EXECUTION_ERROR,
    INTERPRETATION_ERROR,
    MISSING_CONTEXT,
    PARSE_FAILURE,
    Response,
    Status,
)
from repro.sqlengine.result import ResultSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sqlengine.executor import Engine


def answers_match(produced: ResultSet, gold: ResultSet) -> bool:
    """Answer-set equality: same column count, same set of rows.

    Floats are rounded (6 places) inside ``answer_set``; row order and
    column names are ignored — the standard NLIDB correctness notion.
    """
    if produced.columns and gold.columns and len(produced.columns) != len(gold.columns):
        return False
    return produced.answer_set() == gold.answer_set()


def answer_set_matches(
    produced: ResultSet,
    expected_rows: Iterable[tuple[Any, ...]],
    expected_columns: int | None = None,
) -> bool:
    """Like :func:`answers_match`, against a *stored* answer set.

    The gold side is plain rows (e.g. deserialized from a gold JSONL
    file) rather than a live :class:`ResultSet`, so a regression in the
    engine itself cannot silently re-derive a wrong gold answer.
    """
    if (
        expected_columns is not None
        and produced.columns
        and len(produced.columns) != expected_columns
    ):
        return False
    return produced.answer_set() == frozenset(tuple(row) for row in expected_rows)


#: Primary diagnostic code -> last pipeline stage *reached* (StageCounts
#: vocabulary).  A parse failure means only tokenization succeeded; an
#: interpretation error means a parse existed; an execution error means an
#: interpretation existed.
_STAGE_BY_CODE = {
    EMPTY_QUESTION: "tokenize",
    PARSE_FAILURE: "tokenize",
    MISSING_CONTEXT: "parse",
    INTERPRETATION_ERROR: "parse",
    EXECUTION_ERROR: "interpret",
}


def failure_stage(response: Response) -> str:
    """The stage a non-answered response got stuck after."""
    for diagnostic in response.diagnostics:
        stage = _STAGE_BY_CODE.get(diagnostic.code)
        if stage is not None:
            return stage
    return "tokenize"


@dataclass(frozen=True)
class ResponseScore:
    """One response's outcome against a stored gold answer.

    ``outcome`` is the failure-taxonomy label:

    * ``correct`` — answered with the gold answer set;
    * ``wrong_answer`` — answered, but with a different answer set;
    * ``clarification_hit`` — ambiguous, and one offered choice's SQL
      yields the gold answer (an attentive user recovers the answer);
    * ``clarification_miss`` — ambiguous with no gold choice on offer;
    * a stage name (``tokenize``/``parse``/``interpret``/``execute``) —
      where a failed response got stuck.

    ``strict`` counts toward headline accuracy; ``resolved`` additionally
    credits clarification hits (the clarification-path score).
    """

    outcome: str
    strict: bool
    resolved: bool
    clarified: bool


def score_response(
    response: Response,
    expected_rows: Iterable[tuple[Any, ...]],
    expected_columns: int | None = None,
    engine: "Engine | None" = None,
) -> ResponseScore:
    """Score one response against a stored answer set.

    Pass ``engine`` to score the clarification path: each choice offered
    by an AMBIGUOUS response is executed and a hit is credited when any
    of them produces the gold answer.  Without an engine, every
    ambiguous response scores as a miss.
    """
    expected = frozenset(tuple(row) for row in expected_rows)
    if response.status is Status.ANSWERED:
        if answer_set_matches(response.answer.result, expected, expected_columns):
            return ResponseScore("correct", True, True, False)
        return ResponseScore("wrong_answer", False, False, False)
    if response.status is Status.AMBIGUOUS:
        if engine is not None:
            for choice in response.choices:
                try:
                    produced = engine.execute(choice.sql)
                except Exception:
                    continue
                if answer_set_matches(produced, expected, expected_columns):
                    return ResponseScore("clarification_hit", False, True, True)
        return ResponseScore("clarification_miss", False, False, True)
    return ResponseScore(failure_stage(response), False, False, False)


@dataclass
class StageCounts:
    """Per-question pipeline outcome tally (drives Table 1)."""

    total: int = 0
    parsed: int = 0
    interpreted: int = 0
    executed: int = 0
    correct: int = 0
    failures: list[tuple[str, str]] = field(default_factory=list)  # (question, stage)

    def record(self, question: str, stage: str, correct: bool = False) -> None:
        """``stage`` in {'tokenize','parse','interpret','execute','answered'}."""
        self.total += 1
        order = ["tokenize", "parse", "interpret", "execute", "answered"]
        reached = order.index(stage)
        if reached >= 1:
            self.parsed += 1
        if reached >= 2:
            self.interpreted += 1
        if reached >= 3:
            self.executed += 1
        if correct:
            self.correct += 1
        if stage != "answered" or not correct:
            self.failures.append((question, stage))

    @property
    def parse_rate(self) -> float:
        return self.parsed / self.total if self.total else 0.0

    @property
    def interpret_rate(self) -> float:
        return self.interpreted / self.total if self.total else 0.0

    @property
    def execute_rate(self) -> float:
        return self.executed / self.total if self.total else 0.0

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


@dataclass
class Tally:
    """Simple correct/total accumulator with accuracy."""

    correct: int = 0
    total: int = 0

    def add(self, is_correct: bool) -> None:
        self.total += 1
        if is_correct:
            self.correct += 1

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def __str__(self) -> str:
        return f"{self.correct}/{self.total} ({100 * self.accuracy:.1f}%)"
