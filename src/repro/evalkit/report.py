"""ASCII report tables shared by all benchmarks."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a separator under the header."""
    cells = [[str(h) for h in headers]] + [
        [("" if c is None else str(c)) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def pct(value: float) -> str:
    """Percentage with one decimal."""
    return f"{100 * value:.1f}%"


def format_series(
    x_label: str,
    y_labels: Sequence[str],
    points: Sequence[tuple[Any, Sequence[Any]]],
    title: str | None = None,
) -> str:
    """A "figure" as a data series table (x, y1, y2, ...)."""
    headers = [x_label, *y_labels]
    rows = [[x, *ys] for x, ys in points]
    return format_table(headers, rows, title=title)
