"""Gold-dataset evaluation matrix.

Per-domain gold datasets (versioned JSONL: question, gold SQL, expected
answer, question-class tags), a runner executing every
(domain × configuration) cell, and an aggregator emitting one comparison
table with per-cell accuracy, clarification rate and failure taxonomy.
See ``docs/evaluation.md``.
"""

from repro.evaluation.configs import (
    CONFIGURATION_NAMES,
    CONFIGURATIONS,
    EvalConfiguration,
    get_configuration,
)
from repro.evaluation.goldsets import (
    GOLD_DIR,
    GoldItem,
    build_goldset,
    gold_path,
    load_goldset,
    normalize_answer,
    regenerate,
    write_goldset,
)
from repro.evaluation.runner import (
    CellResult,
    cell_questions,
    run_cell,
    run_matrix,
)

__all__ = [
    "CONFIGURATIONS",
    "CONFIGURATION_NAMES",
    "CellResult",
    "EvalConfiguration",
    "GOLD_DIR",
    "GoldItem",
    "build_goldset",
    "cell_questions",
    "gold_path",
    "get_configuration",
    "load_goldset",
    "normalize_answer",
    "regenerate",
    "run_cell",
    "run_matrix",
    "write_goldset",
]
