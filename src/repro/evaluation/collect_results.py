"""Aggregate per-cell results into one comparison matrix + CI gate.

``python -m repro.evaluation.collect_results`` runs any cells missing
from the results directory, then emits the full comparison table as
markdown (``matrix.md``) and JSON (``matrix.json``), prints it, and —
with ``--check-baseline`` — fails (exit 2) when any cell's accuracy
drops below the committed ``baseline_matrix.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.datasets import ALL_DOMAINS
from repro.evalkit import format_table, pct
from repro.evaluation.configs import CONFIGURATIONS, get_configuration
from repro.evaluation.runner import CellResult, run_matrix

#: The committed per-cell accuracy floor CI diffs against.
BASELINE_PATH = Path(__file__).resolve().parent / "baseline_matrix.json"

#: Accuracies are ratios of small integers; any real drop is >= 1/total.
TOLERANCE = 1e-9

DEFAULT_RESULTS_DIR = Path("benchmarks/results/evaluation")


def matrix_json(cells: list[CellResult]) -> dict:
    """The aggregate document (also the shape of ``baseline_matrix.json``)."""
    out: dict = {"cells": {}}
    for cell in cells:
        out["cells"].setdefault(cell.configuration, {})[cell.domain] = {
            "accuracy": round(cell.accuracy, 6),
            "resolved_accuracy": round(cell.resolved_accuracy, 6),
            "clarification_rate": round(cell.clarification_rate, 6),
            "total": cell.total,
            "taxonomy": dict(cell.taxonomy),
        }
    return out


def matrix_markdown(cells: list[CellResult]) -> str:
    """One markdown table: rows = configurations, columns = domains."""
    domains = sorted({cell.domain for cell in cells}, key=list(ALL_DOMAINS).index)
    by_key = {(c.configuration, c.domain): c for c in cells}
    configurations = [
        c.name for c in CONFIGURATIONS
        if any(cell.configuration == c.name for cell in cells)
    ]
    lines = [
        "# Evaluation matrix",
        "",
        "Cell format: `accuracy (resolved / clarified)` — `resolved`",
        "credits AMBIGUOUS responses whose offered choices include the",
        "gold reading; `clarified` is the clarification rate.",
        "",
        "| configuration | " + " | ".join(domains) + " |",
        "|" + "---|" * (len(domains) + 1),
    ]
    for name in configurations:
        row = [f"`{name}`"]
        for domain in domains:
            cell = by_key.get((name, domain))
            if cell is None:
                row.append("—")
            else:
                row.append(
                    f"{pct(cell.accuracy)} ({pct(cell.resolved_accuracy)}"
                    f" / {pct(cell.clarification_rate)})"
                )
        lines.append("| " + " | ".join(row) + " |")
    lines += [
        "",
        "## Failure taxonomy (summed over domains)",
        "",
        "| configuration | wrong answer | clarification miss | no parse |"
        " no interpretation | execution |",
        "|" + "---|" * 6,
    ]
    for name in configurations:
        tax = {"wrong_answer": 0, "clarification_miss": 0, "tokenize": 0,
               "parse": 0, "interpret": 0, "execute": 0}
        for domain in domains:
            cell = by_key.get((name, domain))
            if cell is not None:
                for bucket, count in cell.taxonomy.items():
                    tax[bucket] = tax.get(bucket, 0) + count
        lines.append(
            f"| `{name}` | {tax['wrong_answer']} | {tax['clarification_miss']}"
            f" | {tax['tokenize'] + tax['parse']} | {tax['interpret']}"
            f" | {tax['execute']} |"
        )
    return "\n".join(lines) + "\n"


def console_table(cells: list[CellResult]) -> str:
    domains = sorted({cell.domain for cell in cells}, key=list(ALL_DOMAINS).index)
    by_key = {(c.configuration, c.domain): c for c in cells}
    configurations = [
        c.name for c in CONFIGURATIONS
        if any(cell.configuration == c.name for cell in cells)
    ]
    rows = []
    for name in configurations:
        row: list[str] = [name]
        for domain in domains:
            cell = by_key.get((name, domain))
            row.append("—" if cell is None else pct(cell.accuracy))
        rows.append(row)
    return format_table(
        ["configuration", *domains], rows,
        title="Evaluation matrix — answer accuracy",
    )


def check_baseline(
    cells: list[CellResult], baseline_path: Path = BASELINE_PATH
) -> list[str]:
    """Regressions of the current cells vs the committed baseline.

    A cell below its recorded accuracy is a regression; so is a baseline
    cell with no current counterpart (a silently dropped domain or
    configuration).  New cells without a baseline entry pass — they gain
    a floor once the baseline is regenerated.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = {(c.configuration, c.domain): c for c in cells}
    problems = []
    for configuration, domains in baseline["cells"].items():
        for domain, recorded in domains.items():
            cell = current.get((configuration, domain))
            if cell is None:
                problems.append(
                    f"cell ({configuration}, {domain}) missing from this run"
                )
            elif round(cell.accuracy, 6) < recorded["accuracy"] - TOLERANCE:
                problems.append(
                    f"cell ({configuration}, {domain}) regressed: "
                    f"{cell.accuracy:.3f} < baseline {recorded['accuracy']:.3f}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.collect_results",
        description="Run + aggregate the (domain x configuration) "
        "evaluation matrix.",
    )
    parser.add_argument(
        "--results-dir", type=Path, default=DEFAULT_RESULTS_DIR,
        help=f"per-cell result directory (default: {DEFAULT_RESULTS_DIR})",
    )
    parser.add_argument(
        "--domains", nargs="+", default=list(ALL_DOMAINS),
        choices=ALL_DOMAINS, metavar="DOMAIN",
        help="domains to cover (default: all)",
    )
    parser.add_argument(
        "--configurations", nargs="+",
        default=[c.name for c in CONFIGURATIONS], metavar="CONFIG",
        help="configurations to cover (default: all)",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="re-run cells even when their result files exist",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="exit 2 when any cell drops below baseline_matrix.json",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite baseline_matrix.json from this run",
    )
    args = parser.parse_args(argv)

    configurations = tuple(
        get_configuration(name) for name in args.configurations
    )
    print(
        f"evaluation matrix: {len(args.domains)} domains x "
        f"{len(configurations)} configurations -> {args.results_dir}"
    )
    cells = run_matrix(
        args.results_dir,
        domains=tuple(args.domains),
        configurations=configurations,
        force=args.force,
        verbose=True,
    )

    document = matrix_json(cells)
    args.results_dir.mkdir(parents=True, exist_ok=True)
    (args.results_dir / "matrix.json").write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    (args.results_dir / "matrix.md").write_text(
        matrix_markdown(cells), encoding="utf-8"
    )
    print()
    print(console_table(cells))
    print(f"\nwrote {args.results_dir / 'matrix.md'} and matrix.json")

    drifted = [c for c in cells if c.gold_drift]
    if drifted:
        for cell in drifted:
            print(
                f"WARNING: gold drift in ({cell.configuration}, {cell.domain}): "
                f"{cell.gold_drift} stored answers no longer match their SQL",
                file=sys.stderr,
            )

    if args.write_baseline:
        BASELINE_PATH.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(f"baseline written: {BASELINE_PATH}")

    if args.check_baseline:
        problems = check_baseline(cells)
        if problems:
            print("\nBASELINE REGRESSIONS:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 2
        print("baseline check: all cells at or above recorded accuracy")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
