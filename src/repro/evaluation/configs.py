"""Named pipeline configurations — the columns of the evaluation matrix.

Each configuration fixes everything that varies between cells: which
system answers (full NLI vs the two baselines), whether questions are
spelling-corrupted before being asked (and at what rate/seed), whether
the speller is enabled, and the clarification margin.  Corruption seeds
are fixed so every run of a corrupted cell asks byte-identical questions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NliConfig


@dataclass(frozen=True)
class EvalConfiguration:
    """One column of the matrix."""

    name: str
    description: str
    system: str = "nli"  # nli | keyword | template
    corruption_rate: float = 0.0
    corruption_seed: int = 0
    spelling_correction: bool = True
    clarification_margin: float = 0.0

    def nli_config(self) -> NliConfig:
        return NliConfig(
            spelling_correction=self.spelling_correction,
            clarification_margin=self.clarification_margin,
        )


CONFIGURATIONS: tuple[EvalConfiguration, ...] = (
    EvalConfiguration(
        "nli",
        "full pipeline, clean questions",
    ),
    EvalConfiguration(
        "nli-clarify-0.25",
        "full pipeline, clarification margin 0.25",
        clarification_margin=0.25,
    ),
    EvalConfiguration(
        "nli-clarify-0.75",
        "full pipeline, clarification margin 0.75",
        clarification_margin=0.75,
    ),
    EvalConfiguration(
        "nli-corrupt",
        "full pipeline, questions corrupted at rate 0.3, speller on",
        corruption_rate=0.3,
        corruption_seed=71,
    ),
    EvalConfiguration(
        "nli-corrupt-nospell",
        "corrupted questions with the speller disabled (ablation)",
        corruption_rate=0.3,
        corruption_seed=71,
        spelling_correction=False,
    ),
    EvalConfiguration(
        "keyword",
        "keyword-matching baseline",
        system="keyword",
    ),
    EvalConfiguration(
        "template",
        "template-matching baseline",
        system="template",
    ),
)

#: Matrix column order, by name.
CONFIGURATION_NAMES: tuple[str, ...] = tuple(c.name for c in CONFIGURATIONS)


def get_configuration(name: str) -> EvalConfiguration:
    for configuration in CONFIGURATIONS:
        if configuration.name == name:
            return configuration
    raise ValueError(
        f"unknown configuration {name!r} (known: {', '.join(CONFIGURATION_NAMES)})"
    )
