"""Versioned gold datasets: one JSONL file per domain.

Each file starts with a header record pinning the format and the domain,
followed by one record per question::

    {"format": "repro-gold", "version": 1, "domain": "fleet", "count": 94}
    {"question": "...", "gold_sql": "...", "tags": [...],
     "columns": 1, "answer": [[...], ...]}

``answer`` is the *stored* expected answer set — the rows the gold SQL
produced when the file was generated (floats rounded to 6 places, row
order normalized).  Cells are scored against these stored rows, not
against a re-execution of the gold SQL, so an engine regression cannot
silently re-derive a wrong gold answer; a separate integrity pass
(``gold_drift`` in the runner, plus a tier-1 test) re-executes the SQL
and flags any divergence.

Regenerate with ``python -m repro.evaluation.make_gold`` after changing
a corpus or a dataset seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.datasets import DomainBundle, load_bundle
from repro.sqlengine.executor import Engine
from repro.sqlengine.result import ResultSet

GOLD_FORMAT = "repro-gold"
GOLD_VERSION = 1

#: Directory holding the committed per-domain gold files.
GOLD_DIR = Path(__file__).resolve().parent / "gold"


@dataclass(frozen=True)
class GoldItem:
    """One gold question: text, SQL shape, tags and the expected answer."""

    domain: str
    question: str
    gold_sql: str
    tags: tuple[str, ...]
    columns: int
    answer: tuple[tuple[Any, ...], ...]

    @property
    def answer_set(self) -> frozenset[tuple[Any, ...]]:
        return frozenset(self.answer)


def normalize_answer(result: ResultSet) -> list[list[Any]]:
    """The result's answer set as JSON-able rows in a stable order.

    Rows may mix value types across columns (and contain NULLs), so the
    sort key is the repr of the row — deterministic without requiring
    inter-type comparability.
    """
    return [list(row) for row in sorted(result.answer_set(), key=repr)]


def gold_path(domain: str, directory: Path | None = None) -> Path:
    return (directory or GOLD_DIR) / f"{domain}.jsonl"


def build_goldset(bundle: DomainBundle) -> list[GoldItem]:
    """Derive the gold items for one domain from its corpus."""
    engine = Engine(bundle.database)
    items = []
    for example in bundle.corpus:
        gold = engine.execute(example.gold_sql)
        items.append(GoldItem(
            domain=bundle.name,
            question=example.question,
            gold_sql=example.gold_sql,
            tags=tuple(sorted(example.features)),
            columns=len(gold.columns),
            answer=tuple(tuple(row) for row in normalize_answer(gold)),
        ))
    return items


def write_goldset(items: list[GoldItem], path: Path) -> None:
    """Serialize one domain's gold items (header first)."""
    if not items:
        raise ValueError("refusing to write an empty goldset")
    domains = {item.domain for item in items}
    if len(domains) != 1:
        raise ValueError(f"one goldset per domain, got {sorted(domains)}")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "format": GOLD_FORMAT,
            "version": GOLD_VERSION,
            "domain": items[0].domain,
            "count": len(items),
        }
        fh.write(json.dumps(header) + "\n")
        for item in items:
            fh.write(json.dumps({
                "question": item.question,
                "gold_sql": item.gold_sql,
                "tags": list(item.tags),
                "columns": item.columns,
                "answer": [list(row) for row in item.answer],
            }) + "\n")


def load_goldset(domain: str, directory: Path | None = None) -> list[GoldItem]:
    """Load one domain's committed gold items, validating the header."""
    path = gold_path(domain, directory)
    with path.open(encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty gold file")
    header = json.loads(lines[0])
    if header.get("format") != GOLD_FORMAT:
        raise ValueError(f"{path}: not a {GOLD_FORMAT} file")
    if header.get("version") != GOLD_VERSION:
        raise ValueError(
            f"{path}: version {header.get('version')} != {GOLD_VERSION}"
        )
    if header.get("domain") != domain:
        raise ValueError(f"{path}: header domain {header.get('domain')!r}")
    items = []
    for line in lines[1:]:
        record = json.loads(line)
        items.append(GoldItem(
            domain=domain,
            question=record["question"],
            gold_sql=record["gold_sql"],
            tags=tuple(record["tags"]),
            columns=record["columns"],
            answer=tuple(tuple(row) for row in record["answer"]),
        ))
    if len(items) != header.get("count"):
        raise ValueError(
            f"{path}: header count {header.get('count')} != {len(items)} items"
        )
    return items


def regenerate(domain: str, directory: Path | None = None) -> Path:
    """Rebuild one domain's gold file from its live corpus."""
    path = gold_path(domain, directory)
    write_goldset(build_goldset(load_bundle(domain)), path)
    return path
