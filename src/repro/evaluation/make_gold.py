"""Regenerate the committed gold JSONL files from the live corpora.

Usage::

    python -m repro.evaluation.make_gold [DOMAIN ...]

With no arguments, every domain is regenerated.  Run this after editing
a corpus or changing a dataset seed, then re-run
``python -m repro.evaluation.collect_results --force --write-baseline``
so the committed matrix matches the new gold answers.
"""

from __future__ import annotations

import argparse

from repro.datasets import ALL_DOMAINS
from repro.evaluation.goldsets import regenerate


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.make_gold",
        description="Regenerate per-domain gold JSONL files.",
    )
    parser.add_argument(
        "domains", nargs="*", metavar="DOMAIN",
        help="domains to regenerate (default: all)",
    )
    args = parser.parse_args(argv)
    unknown = sorted(set(args.domains) - set(ALL_DOMAINS))
    if unknown:
        parser.error(f"unknown domain(s): {', '.join(unknown)}")
    for domain in args.domains or ALL_DOMAINS:
        path = regenerate(domain)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
