"""Run (domain × configuration) cells against the committed gold files.

One *cell* asks every gold question of one domain under one
configuration and scores the responses against the stored gold answers
(clarification choices are executed, so an AMBIGUOUS response whose
offered readings include the gold one is credited separately as a
clarification hit).  ``run_matrix`` lays cells out on disk as::

    <results_dir>/<configuration>/<domain>.json

which is the layout ``collect_results`` aggregates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.baselines import KeywordBaseline, TemplateBaseline
from repro.core.pipeline import NaturalLanguageInterface
from repro.datasets import ALL_DOMAINS, load_bundle
from repro.datasets.base import rng_for
from repro.evalkit import corrupt_question, score_response
from repro.evaluation.configs import (
    CONFIGURATIONS,
    EvalConfiguration,
)
from repro.evaluation.goldsets import GoldItem, load_goldset
from repro.sqlengine.executor import Engine

#: Failure-taxonomy buckets, in report order.
TAXONOMY = (
    "wrong_answer",
    "clarification_miss",
    "tokenize",
    "parse",
    "interpret",
    "execute",
)

#: Cap on the per-cell list of missed questions kept in the result JSON.
MAX_RECORDED_MISSES = 25


@dataclass
class CellResult:
    """Scored outcome of one (domain, configuration) cell."""

    domain: str
    configuration: str
    total: int = 0
    strict_correct: int = 0
    resolved_correct: int = 0
    clarifications: int = 0
    gold_drift: int = 0
    taxonomy: dict[str, int] = field(
        default_factory=lambda: {bucket: 0 for bucket in TAXONOMY}
    )
    misses: list[dict[str, str]] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        return self.strict_correct / self.total if self.total else 0.0

    @property
    def resolved_accuracy(self) -> float:
        return self.resolved_correct / self.total if self.total else 0.0

    @property
    def clarification_rate(self) -> float:
        return self.clarifications / self.total if self.total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "domain": self.domain,
            "configuration": self.configuration,
            "total": self.total,
            "strict_correct": self.strict_correct,
            "resolved_correct": self.resolved_correct,
            "clarifications": self.clarifications,
            "gold_drift": self.gold_drift,
            "accuracy": round(self.accuracy, 6),
            "resolved_accuracy": round(self.resolved_accuracy, 6),
            "clarification_rate": round(self.clarification_rate, 6),
            "taxonomy": dict(self.taxonomy),
            "misses": list(self.misses),
        }


class _ClarifyingNli:
    """The pipeline with the clarification protocol switched on.

    ``clarify=True`` is what interactive front-ends (the CLI, the HTTP
    service) pass, so the margin sweep measures the deployed behavior:
    readings within ``clarification_margin`` of the best come back
    AMBIGUOUS with choices instead of being silently auto-resolved.
    """

    def __init__(self, bundle, config) -> None:
        self._nli = NaturalLanguageInterface(
            bundle.database, domain=bundle.model, config=config
        )

    def ask(self, question: str):
        return self._nli.ask(question, clarify=True)


def _build_system(bundle, configuration: EvalConfiguration):
    if configuration.system == "nli":
        return _ClarifyingNli(bundle, configuration.nli_config())
    if configuration.system == "keyword":
        return KeywordBaseline(bundle.database, bundle.model)
    if configuration.system == "template":
        return TemplateBaseline(bundle.database, bundle.model)
    raise ValueError(f"unknown system {configuration.system!r}")


def cell_questions(
    domain: str,
    configuration: EvalConfiguration,
    items: list[GoldItem],
) -> list[str]:
    """The questions a cell actually asks (corrupted when configured).

    The corruption RNG is seeded per (seed, configuration, domain), so a
    cell's question list is reproducible on its own — byte-identical
    across runs and independent of cell execution order.
    """
    if configuration.corruption_rate <= 0.0:
        return [item.question for item in items]
    rng = rng_for(
        configuration.corruption_seed, f"{configuration.name}:{domain}"
    )
    return [
        corrupt_question(item.question, configuration.corruption_rate, rng)
        for item in items
    ]


def run_cell(
    domain: str,
    configuration: EvalConfiguration,
    items: list[GoldItem] | None = None,
) -> CellResult:
    """Ask every gold question of ``domain`` under ``configuration``."""
    if items is None:
        items = load_goldset(domain)
    bundle = load_bundle(domain)
    engine = Engine(bundle.database)
    system = _build_system(bundle, configuration)
    cell = CellResult(domain=domain, configuration=configuration.name)
    questions = cell_questions(domain, configuration, items)
    for item, question in zip(items, questions):
        # Integrity: the committed answer must still be what the gold SQL
        # produces.  Drift means a stale gold file or an engine change.
        gold = engine.execute(item.gold_sql)
        if gold.answer_set() != item.answer_set:
            cell.gold_drift += 1
        response = system.ask(question)
        score = score_response(
            response, item.answer, expected_columns=item.columns, engine=engine
        )
        cell.total += 1
        if score.strict:
            cell.strict_correct += 1
        if score.resolved:
            cell.resolved_correct += 1
        if score.clarified:
            cell.clarifications += 1
        if score.outcome in cell.taxonomy:
            cell.taxonomy[score.outcome] += 1
            if len(cell.misses) < MAX_RECORDED_MISSES:
                cell.misses.append(
                    {"question": question, "outcome": score.outcome}
                )
    return cell


def cell_path(results_dir: Path, configuration: str, domain: str) -> Path:
    return results_dir / configuration / f"{domain}.json"


def run_matrix(
    results_dir: Path,
    domains: tuple[str, ...] = ALL_DOMAINS,
    configurations: tuple[EvalConfiguration, ...] = CONFIGURATIONS,
    force: bool = False,
    verbose: bool = False,
) -> list[CellResult]:
    """Run every missing cell, writing one JSON file per cell.

    Existing cell files are reused unless ``force`` — the matrix is
    resumable, and a partial results directory is completed rather than
    recomputed.
    """
    cells: list[CellResult] = []
    for configuration in configurations:
        for domain in domains:
            path = cell_path(results_dir, configuration.name, domain)
            if path.exists() and not force:
                data = json.loads(path.read_text(encoding="utf-8"))
                cell = CellResult(
                    domain=data["domain"],
                    configuration=data["configuration"],
                    total=data["total"],
                    strict_correct=data["strict_correct"],
                    resolved_correct=data["resolved_correct"],
                    clarifications=data["clarifications"],
                    gold_drift=data["gold_drift"],
                    taxonomy=data["taxonomy"],
                    misses=data["misses"],
                )
            else:
                cell = run_cell(domain, configuration)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(
                    json.dumps(cell.to_dict(), indent=2) + "\n", encoding="utf-8"
                )
            if verbose:
                print(
                    f"  {configuration.name:<22} {domain:<10} "
                    f"accuracy={cell.accuracy:.3f} "
                    f"clarified={cell.clarification_rate:.3f}"
                )
            cells.append(cell)
    return cells
