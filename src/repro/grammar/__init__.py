"""Semantic grammar engine: formalism, Earley lattice parser, English grammar."""

from repro.grammar.earley import EarleyParser, ParseResult, StaticMatcher, TerminalMatch
from repro.grammar.english import build_english_grammar, grammar_literal_words
from repro.grammar.rules import Grammar, GrammarBuilder, Production
from repro.grammar.sketch import Sketch, Tag

__all__ = [
    "EarleyParser",
    "Grammar",
    "GrammarBuilder",
    "ParseResult",
    "Production",
    "Sketch",
    "StaticMatcher",
    "Tag",
    "TerminalMatch",
    "build_english_grammar",
    "grammar_literal_words",
]
