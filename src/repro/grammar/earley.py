"""Earley chart parser over a token *lattice*.

Classic Earley (predict/scan/complete), with one extension the semantic
grammar needs: category terminals may span several tokens ("pacific
fleet" is one VALUE), so scanning advances by the match length reported
by the :class:`TerminalMatcher`.

Items carry their accumulated semantic children, so completed start items
hold finished semantic values directly.  Ambiguity produces multiple
completed items; the parser returns every distinct semantic value (up to
``max_parses``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

from repro.errors import ParseFailure
from repro.grammar.rules import Grammar, Production, is_category, is_literal, literal_word


@dataclass(frozen=True)
class TerminalMatch:
    """One tagger match: ``category`` spans tokens [start, end)."""

    category: str
    start: int
    end: int
    payload: Any
    weight: float = 1.0


class TerminalMatcher(Protocol):
    """Supplies category-terminal matches at each position."""

    def matches_at(self, position: int) -> list[TerminalMatch]:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class _Item:
    production: Production
    dot: int
    origin: int
    values: tuple[Any, ...]

    @property
    def complete(self) -> bool:
        return self.dot >= len(self.production.rhs)

    @property
    def next_symbol(self) -> str | None:
        if self.complete:
            return None
        return self.production.rhs[self.dot]


@dataclass(frozen=True)
class ParseResult:
    """One complete parse: the start symbol's semantic value."""

    value: Any
    production: Production


class EarleyParser:
    """Parser instance bound to a grammar.

    ``max_items_per_position`` bounds chart growth on pathological input
    (the practical ambiguity of the question grammar is tiny).
    """

    def __init__(self, grammar: Grammar, max_items_per_position: int = 4000) -> None:
        self.grammar = grammar
        self.max_items = max_items_per_position

    def parse(
        self,
        tokens: list[str],
        matcher: TerminalMatcher,
        max_parses: int = 16,
    ) -> list[ParseResult]:
        """All complete parses of ``tokens`` (distinct semantic values).

        Raises :class:`ParseFailure` when no parse covers the input.
        """
        n = len(tokens)
        chart: list[list[_Item]] = [[] for _ in range(n + 1)]
        seen: list[set[tuple]] = [set() for _ in range(n + 1)]

        def add(position: int, item: _Item) -> None:
            if len(chart[position]) >= self.max_items:
                return
            key = (
                id(item.production),
                item.dot,
                item.origin,
                repr(item.values),
            )
            if key in seen[position]:
                return
            seen[position].add(key)
            chart[position].append(item)

        for production in self.grammar.productions_for(self.grammar.start):
            add(0, _Item(production, 0, 0, ()))

        for position in range(n + 1):
            index = 0
            # Chart rows grow while being processed (agenda style).
            while index < len(chart[position]):
                item = chart[position][index]
                index += 1
                symbol = item.next_symbol
                if symbol is None:
                    self._complete(chart, add, position, item)
                elif is_literal(symbol):
                    if position < n and tokens[position] == literal_word(symbol):
                        add(
                            position + 1,
                            _Item(
                                item.production,
                                item.dot + 1,
                                item.origin,
                                item.values + (tokens[position],),
                            ),
                        )
                elif is_category(symbol):
                    for match in matcher.matches_at(position):
                        if match.category != symbol:
                            continue
                        add(
                            match.end,
                            _Item(
                                item.production,
                                item.dot + 1,
                                item.origin,
                                item.values + (match.payload,),
                            ),
                        )
                else:  # nonterminal: predict
                    for production in self.grammar.productions_for(symbol):
                        add(position, _Item(production, 0, position, ()))

        results: list[ParseResult] = []
        result_keys: set[str] = set()
        for item in chart[n]:
            if not item.complete:
                continue
            if item.production.lhs != self.grammar.start or item.origin != 0:
                continue
            value = item.production.action(list(item.values))
            key = repr(value)
            if key not in result_keys:
                result_keys.add(key)
                results.append(ParseResult(value, item.production))
            if len(results) >= max_parses:
                break
        if not results:
            raise ParseFailure(
                f"no parse for: {' '.join(tokens)!r}", tokens=list(tokens)
            )
        return results

    def _complete(self, chart, add, position: int, completed: _Item) -> None:
        value = completed.production.action(list(completed.values))
        lhs = completed.production.lhs
        for parent in list(chart[completed.origin]):
            if parent.next_symbol == lhs:
                add(
                    position,
                    _Item(
                        parent.production,
                        parent.dot + 1,
                        parent.origin,
                        parent.values + (value,),
                    ),
                )

    def recognizes(self, tokens: list[str], matcher: TerminalMatcher) -> bool:
        try:
            self.parse(tokens, matcher, max_parses=1)
            return True
        except ParseFailure:
            return False


class StaticMatcher:
    """A fixed table of matches — handy for tests and for pre-tagged input."""

    def __init__(self, matches: list[TerminalMatch]) -> None:
        self._by_position: dict[int, list[TerminalMatch]] = {}
        for match in matches:
            self._by_position.setdefault(match.start, []).append(match)

    def matches_at(self, position: int) -> list[TerminalMatch]:
        return self._by_position.get(position, [])
