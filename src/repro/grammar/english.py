"""The English question grammar — a reusable semantic grammar.

The 1978 systems wrote one semantic grammar per application ("LIST the
SHIPS ...").  Here the same effect is achieved once, generically: the
grammar's category terminals (ENTITY, ATTR, VALUE, SUPER, COMP, UNIT,
NUMBER) are bound to a concrete database by the lexicon, so a single
grammar serves every domain.

Covered question forms (each exercised by tests and the corpora):

* listing — "show the ships in the pacific fleet"
* counting — "how many ships are there", "how many ships does X have"
* aggregates — "what is the average displacement of the carriers"
* attribute lookup — "what is the displacement of the kennedy"
* superlatives — "the 3 largest ships", "which ship has the newest ..."
* comparisons — "ships with displacement over 3000 tons",
  "ships heavier than the kennedy", "ships heavier than average"
* membership — "ships from norfolk or san diego"
* negation — "ships that are not in the pacific fleet"
* ranges — "ships with displacement between 2000 and 5000"
* grouping — "how many ships are in each fleet"
* ordering — "list the ships by displacement descending"
* elliptical fragments — "what about the atlantic fleet?"
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.grammar.rules import Action, Grammar, GrammarBuilder, Production
from repro.grammar.sketch import Sketch, Tag, cond, flatten_tags, penalty_tag
from repro.logical.forms import (
    AttrRef,
    BetweenCondition,
    CompareCondition,
    CompareToAggregate,
    CompareToInstance,
    EntityRef,
    MembershipCondition,
    NullCondition,
    OrderSpec,
    Superlative,
    ValueCondition,
    ValueRef,
)

# --------------------------------------------------------------------------
# Optional-symbol expansion (our Earley core has no epsilon rules)
# --------------------------------------------------------------------------


def _expand_optionals(rhs_spec: str) -> list[tuple[tuple[str, ...], tuple[int, ...]]]:
    """Expand ``"Det? ENTITY PostMods?"`` into all concrete alternatives.

    Returns ``(symbols, positions)`` pairs where ``positions[i]`` is the
    index of ``symbols[i]`` in the full padded child list.
    """
    parts = rhs_spec.split()
    required = [not p.endswith("?") for p in parts]
    names = [p.rstrip("?") for p in parts]
    expansions: list[tuple[tuple[str, ...], tuple[int, ...]]] = []
    optional_indices = [i for i, req in enumerate(required) if not req]
    for mask in range(1 << len(optional_indices)):
        included = set(
            optional_indices[bit]
            for bit in range(len(optional_indices))
            if mask & (1 << bit)
        )
        symbols = []
        positions = []
        for i, name in enumerate(names):
            if required[i] or i in included:
                symbols.append(name)
                positions.append(i)
        if symbols:
            expansions.append((tuple(symbols), tuple(positions)))
    return expansions


class _Rules(GrammarBuilder):
    """GrammarBuilder with optional-symbol expansion.

    Actions always receive a *padded* child list: one slot per symbol in
    the spec, ``None`` where an optional symbol was absent.
    """

    def opt(self, lhs: str, rhs_spec: str, action: Action, name: str = "") -> "_Rules":
        total = len(rhs_spec.split())
        for symbols, positions in _expand_optionals(rhs_spec):
            def padded_action(children, positions=positions, action=action, total=total):
                padded: list[Any] = [None] * total
                for child, position in zip(children, positions):
                    padded[position] = child
                return action(padded)

            self._productions.append(Production(lhs, symbols, padded_action, name))
        return self


# --------------------------------------------------------------------------
# Small semantic helpers used by actions
# --------------------------------------------------------------------------


def _values_condition(values: tuple[ValueRef, ...], negated: bool = False):
    if len(values) == 1:
        return ValueCondition(values[0], negated=negated)
    return MembershipCondition(values, negated=negated)


def _unwrap_entity(payload) -> tuple[EntityRef, list[Tag]]:
    """ENTITY payloads are EntityRef or CategoricalEntity (value-as-noun)."""
    from repro.lexicon.entries import CategoricalEntity

    if isinstance(payload, CategoricalEntity):
        return payload.entity, [cond(payload.condition)]
    return payload, []


def _np_sketch(padded) -> Sketch:
    """EntityNP action: Det? PreMods? ENTITY PostMods?"""
    _, premods, entity_payload, postmods = padded
    entity, implied = _unwrap_entity(entity_payload)
    sketch = Sketch(qtype="list", entity=entity)
    return sketch.merge_tags(
        implied + flatten_tags(premods) + flatten_tags(postmods)
    )


def _merge_np(sketch: Sketch, base: Sketch) -> Sketch:
    """Fold an EntityNP sketch into a query sketch."""
    return replace(
        base,
        entity=sketch.entity,
        conditions=base.conditions + sketch.conditions,
        superlative=base.superlative or sketch.superlative,
        order_by=base.order_by or sketch.order_by,
        group_by=base.group_by or sketch.group_by,
        limit=base.limit if base.limit is not None else sketch.limit,
        penalty=base.penalty + sketch.penalty,
    )


def _head_noun_tags(values: tuple[ValueRef, ...], entity_payload,
                    negated: bool = False) -> list[Tag]:
    """Condition for "<value> <entity-noun>" with an agreement check.

    "the pacific fleet" only makes sense when 'pacific' is a value from
    the fleet table; a mismatched head noun costs a heavy penalty so the
    reading survives only if nothing better parses.
    """
    entity, implied = _unwrap_entity(entity_payload)
    tags = implied + [cond(_values_condition(values, negated=negated))]
    if any(v.table != entity.table for v in values):
        tags.append(penalty_tag(5.0))
    return tags


def _attr_value_tags(attr: AttrRef, values: tuple[ValueRef, ...],
                     negated: bool = False) -> list[Tag]:
    """Condition for "whose <attr> is <value>" with column agreement."""
    tags = [cond(_values_condition(values, negated=negated))]
    if any((v.table, v.column) != (attr.table, attr.column) for v in values):
        tags.append(penalty_tag(5.0))
    return tags


_COMP_OPS = {
    ("more", "than"): ">",
    ("greater", "than"): ">",
    ("less", "than"): "<",
    ("fewer", "than"): "<",
    ("at", "least"): ">=",
    ("at", "most"): "<=",
    ("over",): ">",
    ("above",): ">",
    ("exceeding",): ">",
    ("under",): "<",
    ("below",): "<",
    ("exactly",): "=",
}


# --------------------------------------------------------------------------
# The grammar
# --------------------------------------------------------------------------


def build_english_grammar() -> Grammar:
    """Construct the question grammar (domain-independent)."""
    g = _Rules("Query")

    # ===== top level =========================================================
    g.alias("Query", "ListQ", "CountQ", "CountHaveQ", "AggQ", "AttrQ", "SuperQ",
            "Fragment")
    # polite / conversational prefixes wrap any query
    g.rule("Query", "Polite Query", lambda c: c[1])
    g.rule("Polite", "'could' 'you' 'tell' 'me'", lambda c: None)
    g.rule("Polite", "'could' 'you' 'possibly' 'tell' 'me'", lambda c: None)
    g.rule("Polite", "'can' 'you' 'tell' 'me'", lambda c: None)
    g.rule("Polite", "'can' 'you' 'show' 'me'", lambda c: None)
    g.rule("Polite", "'please'", lambda c: None)
    g.rule("Polite", "'i' 'would' 'like' 'to' 'see'", lambda c: None)
    g.rule("Polite", "'i' 'would' 'like' 'to' 'know'", lambda c: None)
    g.rule("Polite", "'i' 'want' 'to' 'see'", lambda c: None)
    g.rule("Polite", "'i' 'want' 'to' 'know'", lambda c: None)

    # ===== determiners & function words =====================================
    g.words("DetWord", "the", "a", "an", "all", "every", "any", "each")
    g.alias("Det", "DetWord")
    g.rule("Det", "'all' 'the'", lambda c: "all the")
    g.rule("Det", "'all' 'of' 'the'", lambda c: "all of the")

    g.words("IsVerb", "is", "are", "was", "were")
    g.words("HaveVerb", "has", "have", "had")
    g.words("Prep", "in", "at", "from", "on", "of", "for", "to")
    # participle prepositions: "ships belonging to the atlantic fleet"
    for participle, prep in (
        ("belonging", "to"), ("based", "in"), ("based", "at"),
        ("living", "in"), ("located", "in"), ("stationed", "in"),
        ("stationed", "at"), ("assigned", "to"), ("homeported", "in"),
    ):
        g.rule("Prep", f"'{participle}' '{prep}'", lambda c: c[0])
    g.words("RelPron", "that", "which", "who")

    # ===== leads =============================================================
    for lead in ("show", "list", "find", "display", "name", "print", "give",
                 "get", "enumerate"):
        g.rule("ListLead", f"'{lead}'", lambda c: None)
    g.rule("ListLead", "'are' 'there'", lambda c: None)
    g.rule("ListLead", "'i' 'want'", lambda c: None)
    g.rule("ListLead", "'i' 'need'", lambda c: None)
    g.rule("ListLead", "'show' 'me'", lambda c: None)
    g.rule("ListLead", "'give' 'me'", lambda c: None)
    g.rule("ListLead", "'tell' 'me'", lambda c: None)
    g.rule("ListLead", "'what' IsVerb", lambda c: None)
    g.rule("ListLead", "'which' IsVerb", lambda c: None)
    g.rule("ListLead", "'who' IsVerb", lambda c: None)
    g.rule("ListLead", "'what'", lambda c: None)
    g.rule("ListLead", "'which'", lambda c: None)
    g.rule("ListLead", "'please' 'show'", lambda c: None)
    g.rule("ListLead", "'show' 'me' 'all'", lambda c: None)
    g.rule("ListLead", "'which' 'of'", lambda c: None)

    # ===== list queries ======================================================
    g.opt(
        "ListQ",
        "ListLead? EntityNP OrderSuffix?",
        lambda p: _merge_np(p[1], Sketch(qtype="list")).merge_tags(flatten_tags(p[2])),
        name="list",
    )
    # "which ships are in norfolk" — verb-linked condition
    g.opt(
        "ListQ",
        "ListLead? EntityNP VerbPhrase OrderSuffix?",
        lambda p: _merge_np(p[1], Sketch(qtype="list")).merge_tags(
            flatten_tags(p[2]) + flatten_tags(p[3])
        ),
        name="list-vp",
    )
    # value-only listing with a mandatory lead: "name the capitals" —
    # the entity is inferred from the value's table.  This is a fallback
    # reading: when a categorical-entity noun also matches ("show the
    # destroyers"), the penalty makes the entity reading win.
    g.opt(
        "ListQ",
        "ListLead Det? ValueDisj",
        lambda p: Sketch(
            qtype="list", conditions=(_values_condition(p[2]),), penalty=2.5
        ),
        name="list-value",
    )

    # ===== count queries =====================================================
    g.opt(
        "CountQ",
        "'how' 'many' EntityNP ThereSuffix? GroupSuffix?",
        lambda p: _merge_np(
            p[2], Sketch(qtype="count", agg_function="count")
        ).merge_tags(flatten_tags(p[4])),
        name="count",
    )
    g.opt(
        "CountQ",
        "'how' 'many' 'of' EntityNP ThereSuffix? GroupSuffix?",
        lambda p: _merge_np(
            p[3], Sketch(qtype="count", agg_function="count")
        ).merge_tags(flatten_tags(p[5])),
        name="count-of-pronoun",
    )
    g.rule("ThereSuffix", "IsVerb 'there'", lambda c: None)
    g.rule("ThereSuffix", "'exist'", lambda c: None)
    g.rule("ThereSuffix", "'do' 'we' 'have'", lambda c: None)
    g.rule("ThereSuffix", "IsVerb", lambda c: None)  # "... are in each fleet"

    # "how many ships are in norfolk" — verb-linked condition
    g.opt(
        "CountQ",
        "'how' 'many' EntityNP VerbPhrase GroupSuffix?",
        lambda p: _merge_np(
            p[2], Sketch(qtype="count", agg_function="count")
        ).merge_tags(flatten_tags(p[3]) + flatten_tags(p[4])),
        name="count-vp",
    )
    g.opt(
        "CountQ",
        "'how' 'many' 'of' EntityNP VerbPhrase GroupSuffix?",
        lambda p: _merge_np(
            p[3], Sketch(qtype="count", agg_function="count")
        ).merge_tags(flatten_tags(p[4]) + flatten_tags(p[5])),
        name="count-of-vp",
    )

    g.words("DoVerb", "does", "do", "did")
    g.opt(
        "CountHaveQ",
        "'how' 'many' EntityNP DoVerb Det? ValueDisj HaveVerb?",
        lambda p: _merge_np(
            p[2],
            Sketch(qtype="count", agg_function="count").merge_tags(
                [cond(_values_condition(p[5]))]
            ),
        ),
        name="count-have",
    )
    g.opt(
        "CountHaveQ",
        "'how' 'many' EntityNP DoVerb Det? ValueDisj ENTITY HaveVerb?",
        lambda p: _merge_np(
            p[2],
            Sketch(qtype="count", agg_function="count").merge_tags(
                _head_noun_tags(p[5], p[6])
            ),
        ),
        name="count-have-head",
    )

    # "the number of ships ..." / "count of ships"
    g.opt(
        "CountQ",
        "AggLead? Det? NumberWord 'of' EntityNP GroupSuffix?",
        lambda p: _merge_np(
            p[4], Sketch(qtype="count", agg_function="count")
        ).merge_tags(flatten_tags(p[5])),
        name="number-of",
    )
    g.words("NumberWord", "number", "count")

    # ===== aggregate queries =================================================
    g.rule("AggLead", "'what' IsVerb", lambda c: None)
    g.rule("AggLead", "'show' 'me'", lambda c: None)
    g.rule("AggLead", "'give' 'me'", lambda c: None)
    g.rule("AggLead", "'tell' 'me'", lambda c: None)
    g.rule("AggLead", "'find'", lambda c: None)
    g.rule("AggLead", "'compute'", lambda c: None)
    g.rule("AggLead", "'show'", lambda c: None)
    g.rule("AggLead", "'give'", lambda c: None)
    g.rule("AggLead", "'i' 'want'", lambda c: None)
    g.rule("AggLead", "'i' 'need'", lambda c: None)

    g.words("AvgWord", "average", "mean")
    g.words("SumWord", "total", "sum", "combined")
    g.words("MaxWord", "maximum", "highest", "largest", "greatest", "biggest",
            "most", "top", "longest")
    g.words("MinWord", "minimum", "lowest", "smallest", "least", "fewest",
            "shortest")
    g.rule("AggWord", "AvgWord", lambda c: "avg")
    g.rule("AggWord", "SumWord", lambda c: "sum")
    g.rule("AggWord", "MaxWord", lambda c: "max")
    g.rule("AggWord", "MinWord", lambda c: "min")
    g.rule("AggWord", "'sum' 'up'", lambda c: "sum")

    def _agg_action(p):
        base = Sketch(qtype="agg", agg_function=p[2], agg_attr=p[4])
        if p[5] is not None:
            base = _merge_np(p[5], base)
        return base.merge_tags(flatten_tags(p[6]))

    g.opt(
        "AggQ",
        "AggLead? Det? AggWord Det? ATTR OfEntity? GroupSuffix?",
        _agg_action,
        name="aggregate",
    )
    # PP-conditioned aggregate: "sum up the salaries in engineering"
    g.opt(
        "AggQ",
        "AggLead? Det? AggWord Det? ATTR PrepPhrase GroupSuffix?",
        lambda p: Sketch(qtype="agg", agg_function=p[2], agg_attr=p[4])
        .merge_tags(flatten_tags(p[5]) + flatten_tags(p[6])),
        name="aggregate-pp",
    )
    g.rule("OfEntity", "'of' EntityNP", lambda c: c[1])
    g.rule("OfEntity", "'for' EntityNP", lambda c: c[1])
    g.rule("OfEntity", "'among' EntityNP", lambda c: c[1])

    # "what is the average displacement of the kennedy"-style lookups where
    # the of-target is a VALUE are attribute lookups with aggregation; the
    # interpreter treats agg over a single instance as plain lookup.
    g.opt(
        "AggQ",
        "AggLead? Det? AggWord ATTR 'of' Det? VALUE",
        lambda p: Sketch(
            qtype="agg",
            agg_function=p[2],
            agg_attr=p[3],
            conditions=(ValueCondition(p[6]),),
        ),
        name="aggregate-instance",
    )

    # ===== attribute lookup ==================================================
    g.rule("AttrList", "ATTR", lambda c: (c[0],))
    g.rule("AttrList", "ATTR 'and' AttrList", lambda c: (c[0],) + c[2])

    def _attr_q(p):
        attrs, target = p[2], p[3]
        if isinstance(target, Sketch):
            base = replace(target, qtype="attr", projections=attrs)
            return base
        return Sketch(qtype="attr", projections=attrs,
                      conditions=(ValueCondition(target),))

    g.opt("AttrQ", "AggLead? Det? AttrList OfTarget", _attr_q, name="attr-of")
    g.rule("OfTarget", "'of' EntityNP", lambda c: c[1])
    g.rule("OfTarget", "'for' EntityNP", lambda c: c[1])
    g.opt("OfTarget", "'of' Det? VALUE", lambda p: p[2])
    g.opt("OfTarget", "'for' Det? VALUE", lambda p: p[2])

    # possessive style: "the kennedy displacement" / "kennedy's displacement"
    g.opt(
        "AttrQ",
        "AggLead? Det? VALUE AttrList",
        lambda p: Sketch(qtype="attr", projections=p[3],
                         conditions=(ValueCondition(p[2]),)),
        name="attr-possessive",
    )
    # PP-conditioned lookup: "people living in china"
    g.opt(
        "AttrQ",
        "AggLead? Det? AttrList PrepPhrase",
        lambda p: Sketch(qtype="attr", projections=p[2]).merge_tags(
            flatten_tags(p[3])
        ),
        name="attr-pp",
    )

    # ===== which-superlative =================================================
    g.rule("WhichLead", "'which'", lambda c: None)
    g.rule("WhichLead", "'what'", lambda c: None)
    g.rule("WhichLead", "'who'", lambda c: None)
    g.rule("HasVerb", "'has'", lambda c: None)
    g.rule("HasVerb", "'have'", lambda c: None)
    g.rule("HasVerb", "'with'", lambda c: None)

    g.rule("SuperAttr", "SUPER", lambda c: Superlative(c[0][0], c[0][1], 1))
    g.rule("SuperAttr", "MaxWord ATTR", lambda c: Superlative(c[1], "max", 1))
    g.rule("SuperAttr", "MinWord ATTR", lambda c: Superlative(c[1], "min", 1))

    g.opt(
        "SuperQ",
        "WhichLead? EntityNP HasVerb Det? SuperAttr",
        lambda p: replace(_merge_np(p[1], Sketch(qtype="list")), superlative=p[4]),
        name="which-superlative",
    )

    # ===== noun phrases ======================================================
    g.opt("EntityNP", "Det? PreMods? ENTITY PostMods?", _np_sketch, name="np")

    g.rule("PreMods", "PreMod", lambda c: flatten_tags(c[0]))
    g.rule("PreMods", "PreMod PreMods", lambda c: flatten_tags(c[0]) + c[1])
    g.rule("PreMod", "VALUE", lambda c: cond(ValueCondition(c[0])))
    g.rule("PreMod", "SUPER", lambda c: Tag("super", Superlative(c[0][0], c[0][1], 1)))
    g.rule(
        "PreMod",
        "NUMBER SUPER",
        lambda c: Tag("super", Superlative(c[1][0], c[1][1], int(c[0]))),
    )
    g.rule("PreMod", "'top' NUMBER", lambda c: Tag("limit", int(c[1])))

    g.rule("PostMods", "PostMod", lambda c: flatten_tags(c[0]))
    g.rule("PostMods", "PostMod PostMods", lambda c: flatten_tags(c[0]) + c[1])
    g.alias("PostMod", "PrepPhrase", "WithPhrase", "RelClause", "CompClause",
            "AttrTimeClause")
    # bare comparisons: "ships exceeding 50000 tons"
    g.rule("PostMod", "AttrComp", lambda c: c[0])
    g.rule("PostMod", "'not' AttrComp", lambda c: _negate_tag(c[1], True))

    # --- prepositional phrases ("in the pacific fleet") ---------------------
    g.opt("PrepPhrase", "Prep Det? ValueDisj", lambda p: cond(_values_condition(p[2])))
    g.opt(
        "PrepPhrase",
        "Prep Det? ValueDisj ENTITY",
        lambda p: _head_noun_tags(p[2], p[3]),
    )
    # attribute head noun: "in the software or finance industry"
    g.opt(
        "PrepPhrase",
        "Prep Det? ValueDisj ATTR",
        lambda p: _attr_value_tags(p[3], p[2]),
    )
    g.rule("ValueDisj", "VALUE", lambda c: (c[0],))
    g.rule("ValueDisj", "VALUE 'or' ValueDisj", lambda c: (c[0],) + c[2])
    g.rule("ValueDisj", "VALUE 'and' ValueDisj", lambda c: (c[0],) + c[2])

    # --- with-phrases ("with displacement over 3000 tons") ------------------
    g.opt("WithPhrase", "'with' Det? AttrComp", lambda p: p[2])
    g.opt(
        "WithPhrase",
        "'with' 'no' ATTR",
        lambda p: cond(NullCondition(p[2])),
    )
    g.opt(
        "WithPhrase",
        "'with' 'unknown' ATTR",
        lambda p: cond(NullCondition(p[2])),
    )

    # comparison operators
    for words, op in _COMP_OPS.items():
        quoted = " ".join(f"'{w}'" for w in words)
        g.rule("CompOp", quoted, lambda c, op=op: op)

    g.rule("NumValue", "NUMBER", lambda c: (c[0], None))
    g.rule("NumValue", "NUMBER UNIT", lambda c: (c[0], c[1]))

    g.opt(
        "AttrComp",
        "ATTR 'of'? CompOp NumValue",
        lambda p: cond(CompareCondition(p[0], p[2], p[3][0])),
    )
    g.opt(
        "AttrComp",
        "ATTR 'of'? NUMBER UNIT?",
        lambda p: cond(CompareCondition(p[0], "=", p[2])),
    )
    g.rule(
        "AttrComp",
        "ATTR 'between' NUMBER 'and' NUMBER",
        lambda c: cond(BetweenCondition(c[0], c[2], c[4])),
    )
    # unit-implied attribute: "with more than 3000 tons"
    g.rule(
        "AttrComp",
        "CompOp NUMBER UNIT",
        lambda c: cond(CompareCondition(c[2], c[0], c[1])),
    )
    # against the global average: "with displacement above average"
    g.opt(
        "AttrComp",
        "ATTR CompOp Det? AvgWord",
        lambda p: cond(CompareToAggregate(p[0], p[1], "avg", p[0])),
    )

    # --- relative clauses ----------------------------------------------------
    g.rule("RelClause", "RelPron VerbPhrase", lambda c: c[1])
    # "whose <attr/entity> is <value>" forms with agreement checks
    g.opt(
        "RelClause",
        "'whose' ENTITY IsVerb Neg? ValueDisj",
        lambda p: _head_noun_tags(p[4], p[1], negated=p[3] is not None),
    )
    g.opt(
        "RelClause",
        "'whose' ATTR IsVerb Neg? Det? ValueDisj",
        lambda p: _attr_value_tags(p[1], p[5], negated=p[3] is not None),
    )
    g.rule(
        "RelClause",
        "'whose' ATTR IsVerb CompOp NumValue",
        lambda c: cond(CompareCondition(c[1], c[3], c[4][0])),
    )
    g.rule(
        "RelClause",
        "'whose' ATTR IsVerb 'between' NUMBER 'and' NUMBER",
        lambda c: cond(BetweenCondition(c[1], c[4], c[6])),
    )
    g.rule(
        "RelClause",
        "'whose' ATTR IsVerb 'unknown'",
        lambda c: cond(NullCondition(c[1])),
    )
    g.rule(
        "RelClause",
        "'whose' ATTR IsVerb NUMBER",
        lambda c: cond(CompareCondition(c[1], "=", c[3])),
    )
    g.opt("VerbPhrase", "IsVerb Neg? PrepPhrase", lambda p: _negate_tag(p[2], p[1] is not None))
    g.opt(
        "VerbPhrase",
        "IsVerb Neg? Det? ValueDisj",
        lambda p: cond(_values_condition(p[3], negated=p[1] is not None)),
    )
    g.opt("VerbPhrase", "HaveVerb Det? AttrComp", lambda p: p[2])
    g.opt(
        "VerbPhrase",
        "HaveVerb 'no' ATTR",
        lambda p: cond(NullCondition(p[2])),
    )
    g.opt("VerbPhrase", "IsVerb Neg? CompClause", lambda p: _negate_tag(p[2], p[1] is not None))
    # "which vessels were commissioned in 1970" / "that are over 3000 tons"
    g.rule("VerbPhrase", "IsVerb AttrTimeClause", lambda c: c[1])
    g.opt("VerbPhrase", "IsVerb Neg? AttrComp",
          lambda p: _negate_tag(p[2], p[1] is not None))
    g.rule("Neg", "'not'", lambda c: True)

    # --- adjective comparatives ("heavier than ...") --------------------------
    g.rule("CompClause", "COMP 'than' CompRHS", lambda c: _comp_clause(c[0], c[2]))
    # participle + operator: "earning more than 60000" (attr from COMP,
    # direction from the explicit operator)
    g.rule(
        "CompClause",
        "COMP CompOp NumValue",
        lambda c: cond(CompareCondition(c[0][0], c[1], c[2][0])),
    )

    g.rule("CompRHS", "NumValue", lambda c: ("number", c[0][0]))
    g.opt("CompRHS", "Det? VALUE", lambda p: ("instance", p[1]))
    g.opt("CompRHS", "Det? AvgWord", lambda p: ("average", None))

    # --- temporal/equality attribute clauses ("built after 1970") -------------
    g.rule(
        "AttrTimeClause",
        "ATTR 'after' NUMBER",
        lambda c: cond(CompareCondition(c[0], ">", c[2])),
    )
    g.rule(
        "AttrTimeClause",
        "ATTR 'before' NUMBER",
        lambda c: cond(CompareCondition(c[0], "<", c[2])),
    )
    g.rule(
        "AttrTimeClause",
        "ATTR 'since' NUMBER",
        lambda c: cond(CompareCondition(c[0], ">=", c[2])),
    )
    g.rule(
        "AttrTimeClause",
        "ATTR 'in' NUMBER",
        lambda c: cond(CompareCondition(c[0], "=", c[2])),
    )

    # ===== group / order suffixes =============================================
    g.rule("GroupSuffix", "'in' 'each' GroupTarget", lambda c: Tag("group", c[2]))
    g.rule("GroupSuffix", "'for' 'each' GroupTarget", lambda c: Tag("group", c[2]))
    g.rule("GroupSuffix", "'per' GroupTarget", lambda c: Tag("group", c[1]))
    g.rule("GroupSuffix", "'by' GroupTarget", lambda c: Tag("group", c[1]))
    g.rule("GroupSuffix", "'grouped' 'by' GroupTarget", lambda c: Tag("group", c[2]))
    g.rule("GroupTarget", "ENTITY", lambda c: _unwrap_entity(c[0])[0])
    g.rule("GroupTarget", "ATTR", lambda c: c[0])

    g.opt(
        "OrderSuffix",
        "'sorted' 'by' ATTR OrderDir?",
        lambda p: Tag("order", OrderSpec(p[2], p[3] == "desc")),
    )
    g.opt(
        "OrderSuffix",
        "'ordered' 'by' ATTR OrderDir?",
        lambda p: Tag("order", OrderSpec(p[2], p[3] == "desc")),
    )
    g.opt(
        "OrderSuffix",
        "'by' ATTR OrderDir?",
        lambda p: Tag("order", OrderSpec(p[1], p[2] == "desc")),
    )
    g.rule(
        "OrderSuffix",
        "'in' 'order' 'of' ATTR",
        lambda c: Tag("order", OrderSpec(c[3], False)),
    )
    g.words("OrderDirWord", "descending", "ascending", "desc", "asc",
            "decreasing", "increasing")
    g.rule(
        "OrderDir",
        "OrderDirWord",
        lambda c: "desc" if c[0] in ("descending", "desc", "decreasing") else "asc",
    )

    # ===== fragments (dialogue ellipsis) ======================================
    g.rule("Fragment", "'what' 'about' FragBody", lambda c: c[2])
    g.rule("Fragment", "'how' 'about' FragBody", lambda c: c[2])
    g.rule("Fragment", "'and' FragBody", lambda c: c[1])
    g.rule("Fragment", "'only' FragBody", lambda c: c[1])
    g.rule("Fragment", "FragBody", lambda c: c[0])

    def _frag_conditions(tag_value) -> Sketch:
        return Sketch(fragment=True).merge_tags(flatten_tags(tag_value))

    g.opt(
        "FragBody",
        "Det? ValueDisj",
        lambda p: Sketch(fragment=True, conditions=(_values_condition(p[1]),)),
    )
    # "what about the atlantic fleet" — head-noun condition fragment
    g.opt(
        "FragBody",
        "Det? ValueDisj ENTITY",
        lambda p: Sketch(fragment=True).merge_tags(_head_noun_tags(p[1], p[2])),
    )
    g.rule("FragBody", "PrepPhrase", _frag_conditions)
    g.rule("FragBody", "WithPhrase", _frag_conditions)
    g.rule("FragBody", "CompClause", _frag_conditions)
    g.rule("FragBody", "AttrTimeClause", _frag_conditions)
    g.rule(
        "FragBody",
        "EntityNP",
        lambda c: replace(c[0], fragment=True),
    )
    g.opt(
        "FragBody",
        "Det? SuperAttr",
        lambda p: Sketch(fragment=True, superlative=p[1]),
    )

    return g.build()


def _negate_tag(tag_or_tags, negated: bool):
    """Negate the condition tag(s) of a modifier (penalty tags unchanged)."""
    if not negated:
        return tag_or_tags
    tags = flatten_tags(tag_or_tags)
    out = []
    for tag in tags:
        if tag.kind == "cond":
            condition = tag.value
            out.append(Tag("cond", replace(condition, negated=not condition.negated)))
        else:
            out.append(tag)
    return out


def _comp_clause(comp_payload, rhs) -> Tag:
    attr, op = comp_payload
    kind, value = rhs
    if kind == "number":
        return cond(CompareCondition(attr, op, value))
    if kind == "instance":
        return cond(CompareToInstance(attr, op, value))
    return cond(CompareToAggregate(attr, op, "avg", attr))


#: Words the grammar consumes literally; the pipeline protects them from
#: spelling correction and the tagger never treats them as values.
def grammar_literal_words(grammar: Grammar | None = None) -> frozenset[str]:
    from repro.grammar.rules import is_literal, literal_word

    grammar = grammar or build_english_grammar()
    return frozenset(
        literal_word(symbol)
        for production in grammar.productions
        for symbol in production.rhs
        if is_literal(symbol)
    )
