"""Grammar formalism: productions with semantic actions.

Symbol conventions:

* ``'word'`` (quoted, lower-case) — literal terminal matched against the
  token text;
* ``UPPERCASE`` — category terminal supplied by the tagger (ENTITY, ATTR,
  VALUE, NUMBER, SUPER, COMP, UNIT);
* anything else — a nonterminal.

Each production carries a semantic ``action`` applied to the child values
when the production completes; the default action returns the child list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import GrammarError

Action = Callable[[list[Any]], Any]


def is_literal(symbol: str) -> bool:
    return len(symbol) >= 3 and symbol.startswith("'") and symbol.endswith("'")


def literal_word(symbol: str) -> str:
    return symbol[1:-1]


def is_category(symbol: str) -> bool:
    return symbol.isupper() and not is_literal(symbol)


def is_terminal(symbol: str) -> bool:
    return is_literal(symbol) or is_category(symbol)


@dataclass(frozen=True)
class Production:
    """``lhs -> rhs`` with a semantic action."""

    lhs: str
    rhs: tuple[str, ...]
    action: Action = field(compare=False, default=lambda children: children)
    name: str = ""

    def __post_init__(self) -> None:
        if is_terminal(self.lhs):
            raise GrammarError(f"production LHS {self.lhs!r} must be a nonterminal")

    def __repr__(self) -> str:
        return f"{self.lhs} -> {' '.join(self.rhs) or 'ε'}"


class Grammar:
    """A start symbol plus productions, indexed by LHS."""

    def __init__(self, start: str, productions: Sequence[Production]) -> None:
        if is_terminal(start):
            raise GrammarError(f"start symbol {start!r} must be a nonterminal")
        self.start = start
        self.productions = list(productions)
        self._by_lhs: dict[str, list[Production]] = {}
        for production in self.productions:
            self._by_lhs.setdefault(production.lhs, []).append(production)
        self._validate()

    def _validate(self) -> None:
        if self.start not in self._by_lhs:
            raise GrammarError(f"start symbol {self.start!r} has no productions")
        for production in self.productions:
            for symbol in production.rhs:
                if not is_terminal(symbol) and symbol not in self._by_lhs:
                    raise GrammarError(
                        f"nonterminal {symbol!r} in {production!r} has no productions"
                    )

    def productions_for(self, lhs: str) -> list[Production]:
        return self._by_lhs.get(lhs, [])

    @property
    def nonterminals(self) -> set[str]:
        return set(self._by_lhs)

    @property
    def terminals(self) -> set[str]:
        out: set[str] = set()
        for production in self.productions:
            out.update(s for s in production.rhs if is_terminal(s))
        return out

    def __len__(self) -> int:
        return len(self.productions)


class GrammarBuilder:
    """Fluent helper for writing grammars compactly.

    ``rule("Query", "'how' 'many' EntityNP", action)`` splits the RHS on
    whitespace.  ``alias`` creates pass-through unary rules.
    """

    def __init__(self, start: str) -> None:
        self.start = start
        self._productions: list[Production] = []

    def rule(self, lhs: str, rhs: str, action: Action | None = None, name: str = "") -> "GrammarBuilder":
        symbols = tuple(rhs.split())
        self._productions.append(
            Production(lhs, symbols, action or (lambda children: children), name)
        )
        return self

    def alias(self, lhs: str, *alternatives: str) -> "GrammarBuilder":
        """Unary pass-through rules: lhs -> alt (value = child value)."""
        for alternative in alternatives:
            self.rule(lhs, alternative, lambda children: children[0])
        return self

    def words(self, lhs: str, *word_list: str) -> "GrammarBuilder":
        """lhs -> 'w' for each word, value = the word itself."""
        for word in word_list:
            self.rule(lhs, f"'{word}'", lambda children: children[0])
        return self

    def build(self) -> Grammar:
        return Grammar(self.start, self._productions)
