"""Semantic sketches: the values the grammar's actions build.

A :class:`Sketch` is an under-specified :class:`~repro.logical.forms.
LogicalQuery`: the entity may be missing (fragments), conditions are raw,
and nothing has been validated against the schema yet.  The interpreter
turns sketches into logical queries.

Actions combine child sketches/tags with the small algebra below.  All
types are frozen so the parser can deduplicate semantic values by repr.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.logical.forms import (
    AttrRef,
    Condition,
    EntityRef,
    OrderSpec,
    Superlative,
)


@dataclass(frozen=True)
class Sketch:
    """Grammar-level meaning of (part of) a question."""

    qtype: str = "list"  # list | count | agg | attr
    entity: EntityRef | None = None
    projections: tuple[AttrRef, ...] = ()
    agg_function: str | None = None  # count | sum | avg | min | max
    agg_attr: AttrRef | None = None
    conditions: tuple[Condition, ...] = ()
    superlative: Superlative | None = None
    group_by: Any | None = None  # AttrRef | EntityRef (resolved later)
    order_by: OrderSpec | None = None
    limit: int | None = None
    fragment: bool = False  # elliptical follow-up, needs dialogue context
    #: Semantic-agreement penalty accumulated by grammar actions (e.g. a
    #: head noun that does not match its value's table).  Subtracted from
    #: the interpretation score, so mismatched readings lose ties.
    penalty: float = 0.0

    def merge_tags(self, tags: "list[Tag]") -> "Sketch":
        """Fold modifier tags (conditions/superlatives/order) into self."""
        sketch = self
        for tag in tags:
            if tag.kind == "cond":
                sketch = replace(sketch, conditions=sketch.conditions + (tag.value,))
            elif tag.kind == "super":
                sketch = replace(sketch, superlative=tag.value)
            elif tag.kind == "order":
                sketch = replace(sketch, order_by=tag.value)
            elif tag.kind == "group":
                sketch = replace(sketch, group_by=tag.value)
            elif tag.kind == "limit":
                sketch = replace(sketch, limit=tag.value)
            elif tag.kind == "penalty":
                sketch = replace(sketch, penalty=sketch.penalty + tag.value)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown tag kind {tag.kind!r}")
        return sketch


@dataclass(frozen=True)
class Tag:
    """A modifier produced by a post-/pre-modifier production."""

    kind: str  # cond | super | order | group | limit
    value: Any


def cond(value: Condition) -> Tag:
    return Tag("cond", value)


def super_tag(attr: AttrRef, direction: str, k: int = 1) -> Tag:
    return Tag("super", Superlative(attr, direction, k))


def order_tag(attr: AttrRef, descending: bool = False) -> Tag:
    return Tag("order", OrderSpec(attr, descending))


def group_tag(target: Any) -> Tag:
    return Tag("group", target)


def penalty_tag(amount: float) -> Tag:
    return Tag("penalty", amount)


def flatten_tags(value: Any) -> list[Tag]:
    """Normalise action children into a flat tag list."""
    if value is None:
        return []
    if isinstance(value, Tag):
        return [value]
    if isinstance(value, (list, tuple)):
        out: list[Tag] = []
        for item in value:
            out.extend(flatten_tags(item))
        return out
    raise ValueError(f"not a tag: {value!r}")
