"""Lexicon: domain model, entries, store and the automatic builder."""

from repro.lexicon.builder import build_lexicon
from repro.lexicon.domain import (
    AdjectiveSpec,
    AttributeSpec,
    DomainModel,
    EntitySpec,
    ValueSynonymSpec,
)
from repro.lexicon.entries import Category, LexicalEntry
from repro.lexicon.lexicon import Lexicon, phrase_key

__all__ = [
    "AdjectiveSpec",
    "AttributeSpec",
    "Category",
    "DomainModel",
    "EntitySpec",
    "LexicalEntry",
    "Lexicon",
    "ValueSynonymSpec",
    "build_lexicon",
    "phrase_key",
]
