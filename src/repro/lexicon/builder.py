"""Automatic lexicon generation from the database catalog + domain model.

This is the LADDER idea of deriving most of the vocabulary from the
database itself:

* every table name becomes an ENTITY phrase;
* every column name (underscores split) becomes an ATTR phrase;
* domain-model phrases add the human vocabulary on top;
* ``synonym_fraction`` throttles how much of the hand-curated synonym
  dictionary is used — the knob experiment F2 sweeps.
"""

from __future__ import annotations

import math

from repro.lexicon.domain import DomainModel
from repro.lexicon.entries import CategoricalEntity, Category
from repro.lexicon.lexicon import Lexicon
from repro.logical.forms import AttrRef, EntityRef, ValueCondition, ValueRef
from repro.sqlengine.database import Database


def _take_fraction(phrases: tuple[str, ...], fraction: float) -> tuple[str, ...]:
    """First ceil(fraction * n) phrases — deterministic for the F2 sweep.

    The first phrase of a spec is its canonical name and survives even at
    fraction 0 for entities/attributes defined by the schema itself; the
    *extra* synonyms are what the fraction controls.
    """
    if fraction >= 1.0:
        return phrases
    keep = math.ceil(len(phrases) * fraction)
    return phrases[:keep]


def data_dependent_columns(domain: DomainModel | None) -> set[tuple[str, str]]:
    """The ``(table, column)`` pairs whose *live data* feeds the lexicon.

    Everything else in the lexicon derives from the catalog and the domain
    model, which only change on DDL.  Categorical entity nouns, however,
    are enumerated from the rows of their source column — so the NLI's
    delta-driven refresh only needs to rebuild the lexicon when a mutation
    touches one of these columns.
    """
    if domain is None:
        return set()
    # Deltas carry schema-normalized (lowercase) names; domain specs may
    # not, so normalize here or mixed-case specs would never match.
    return {
        (spec.via_table.lower(), spec.via_column.lower())
        for spec in domain.categorical_entities
    }


def build_lexicon(
    database: Database,
    domain: DomainModel | None = None,
    synonym_fraction: float = 1.0,
) -> Lexicon:
    """Build the lexicon for ``database``.

    ``synonym_fraction`` in [0, 1] controls how much of the domain model's
    synonym vocabulary is loaded (1.0 = everything; 0.0 = catalog-derived
    names only).  Catalog-derived entries always load.
    """
    lexicon = Lexicon()

    # 1. Catalog-derived entries (always present).
    for table in database.tables():
        entity_ref = EntityRef(table.name, phrase=table.name.replace("_", " "))
        lexicon.add(table.name, Category.ENTITY, entity_ref, weight=1.0)
        for column in table.schema.columns:
            phrase = column.name.replace("_", " ")
            attr_ref = AttrRef(table.name, column.name, phrase=phrase)
            lexicon.add(phrase, Category.ATTR, attr_ref, weight=1.0)

    if domain is None:
        return lexicon
    domain.validate(database)

    # 2. Entity synonyms.
    for spec in domain.entities:
        for i, phrase in enumerate(_take_fraction(spec.phrases, synonym_fraction)):
            ref = EntityRef(spec.table, phrase=phrase)
            lexicon.add(phrase, Category.ENTITY, ref, weight=2.0 if i == 0 else 1.5)

    # 3. Attribute synonyms and units.
    for spec in domain.attributes:
        ref = AttrRef(spec.table, spec.column, phrase=spec.phrases[0] if spec.phrases else spec.column)
        for phrase in _take_fraction(spec.phrases, synonym_fraction):
            lexicon.add(phrase, Category.ATTR, ref, weight=2.0)
        for unit in _take_fraction(spec.units, synonym_fraction):
            lexicon.add(unit, Category.UNIT, ref, weight=1.0)

    # 4. Adjectives (superlatives / comparatives).
    for spec in domain.adjectives:
        ref = AttrRef(spec.table, spec.column, phrase=spec.column.replace("_", " "))
        for word in _take_fraction(spec.superlative_max, synonym_fraction):
            lexicon.add(word, Category.SUPER, (ref, "max"), weight=1.5)
        for word in _take_fraction(spec.superlative_min, synonym_fraction):
            lexicon.add(word, Category.SUPER, (ref, "min"), weight=1.5)
        for word in _take_fraction(spec.comparative_more, synonym_fraction):
            lexicon.add(word, Category.COMP, (ref, ">"), weight=1.5)
        for word in _take_fraction(spec.comparative_less, synonym_fraction):
            lexicon.add(word, Category.COMP, (ref, "<"), weight=1.5)

    # 5. Value synonyms ("us" -> country.name = 'usa').
    for spec in _take_fraction(tuple(domain.value_synonyms), synonym_fraction):
        ref = ValueRef(spec.table, spec.column, spec.value, phrase=spec.phrase)
        lexicon.add(spec.phrase, Category.VALUE, ref, weight=1.5)

    # 6. Categorical entity nouns ("carrier" = ship with type carrier),
    #    enumerated from the live data.  Value synonyms that point at a
    #    categorical column ("subs" -> shiptype.name = 'submarine') also
    #    become entity nouns, so "how many subs are there" counts ships.
    for spec in domain.categorical_entities:
        table = database.table(spec.via_table)
        values = sorted(
            {v for v in table.column_values(spec.via_column) if isinstance(v, str)}
        )
        for value in values:
            payload = CategoricalEntity(
                EntityRef(spec.table, phrase=value),
                ValueCondition(
                    ValueRef(spec.via_table, spec.via_column, value, phrase=value)
                ),
            )
            lexicon.add(value, Category.ENTITY, payload, weight=1.8)
        for synonym in _take_fraction(tuple(domain.value_synonyms), synonym_fraction):
            if (synonym.table, synonym.column) != (spec.via_table, spec.via_column):
                continue
            payload = CategoricalEntity(
                EntityRef(spec.table, phrase=synonym.phrase),
                ValueCondition(
                    ValueRef(
                        synonym.table, synonym.column, synonym.value,
                        phrase=synonym.phrase,
                    )
                ),
            )
            lexicon.add(synonym.phrase, Category.ENTITY, payload, weight=1.6)

    return lexicon
