"""Domain model: the hand-curated part of a 1978-style NLIDB configuration.

A :class:`DomainModel` declares how people talk about a schema — entity
nouns, attribute phrases, adjectives ("largest" means maximal
displacement for a ship), measurement units, and synonyms for stored
values.  Everything else (base table/column names, data values) is
generated automatically by :mod:`repro.lexicon.builder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LexiconError
from repro.sqlengine.database import Database


@dataclass(frozen=True)
class EntitySpec:
    """How one table is referred to in English."""

    table: str
    phrases: tuple[str, ...]  # singular noun phrases: ("ship", "vessel")
    display_columns: tuple[str, ...] = ()  # projected when no attr is asked


@dataclass(frozen=True)
class AttributeSpec:
    """How one column is referred to in English."""

    table: str
    column: str
    phrases: tuple[str, ...]
    units: tuple[str, ...] = ()  # "tons", "feet" — unit words imply the attr


@dataclass(frozen=True)
class AdjectiveSpec:
    """Adjectives grounded in a numeric attribute.

    ``bigger_is`` tells which direction the *positive* adjectives point:
    for displacement, "largest/heavier" -> max/>; for age via a build
    year, "oldest" -> min(year).
    """

    table: str
    column: str
    superlative_max: tuple[str, ...] = ()  # "largest", "heaviest"
    superlative_min: tuple[str, ...] = ()  # "smallest", "lightest"
    comparative_more: tuple[str, ...] = ()  # "larger", "heavier" (-> >)
    comparative_less: tuple[str, ...] = ()  # "smaller", "lighter" (-> <)


@dataclass(frozen=True)
class CategoricalEntitySpec:
    """Declare that values of ``via_table.via_column`` act as entity nouns
    for ``table``: with ("ship", "shiptype", "name"), every ship-type name
    ("carrier", "submarine", …) becomes an ENTITY phrase meaning "ships
    whose type is X".  Values are enumerated from the data at build time.
    """

    table: str
    via_table: str
    via_column: str


@dataclass(frozen=True)
class ValueSynonymSpec:
    """An alternative phrase for a stored value (e.g. "us" for "usa")."""

    phrase: str
    table: str
    column: str
    value: str


@dataclass
class DomainModel:
    """The full NL configuration for one database."""

    name: str
    entities: list[EntitySpec] = field(default_factory=list)
    attributes: list[AttributeSpec] = field(default_factory=list)
    adjectives: list[AdjectiveSpec] = field(default_factory=list)
    value_synonyms: list[ValueSynonymSpec] = field(default_factory=list)
    categorical_entities: list[CategoricalEntitySpec] = field(default_factory=list)

    def validate(self, database: Database) -> None:
        """Check every spec against the catalog; raise LexiconError early."""
        for entity in self.entities:
            if not database.has_table(entity.table):
                raise LexiconError(f"entity spec references unknown table {entity.table!r}")
            schema = database.table(entity.table).schema
            for column in entity.display_columns:
                if not schema.has_column(column):
                    raise LexiconError(
                        f"display column {entity.table}.{column} does not exist"
                    )
        for attr in self.attributes:
            self._check_column(database, attr.table, attr.column, "attribute")
        for adjective in self.adjectives:
            self._check_column(database, adjective.table, adjective.column, "adjective")
        for synonym in self.value_synonyms:
            self._check_column(database, synonym.table, synonym.column, "value synonym")
        for cat in self.categorical_entities:
            if not database.has_table(cat.table):
                raise LexiconError(
                    f"categorical entity references unknown table {cat.table!r}"
                )
            self._check_column(
                database, cat.via_table, cat.via_column, "categorical entity"
            )

    @staticmethod
    def _check_column(database: Database, table: str, column: str, kind: str) -> None:
        if not database.has_table(table):
            raise LexiconError(f"{kind} spec references unknown table {table!r}")
        if not database.table(table).schema.has_column(column):
            raise LexiconError(f"{kind} spec references unknown column {table}.{column}")

    def display_columns_for(self, table: str) -> tuple[str, ...]:
        for entity in self.entities:
            if entity.table == table and entity.display_columns:
                return entity.display_columns
        return ()
