"""Lexical entries and their categories.

A lexical entry grounds a (stem-normalised) phrase in the schema: its
payload is already a schema reference, so by the time a question parses,
interpretation is mostly done — the hallmark of the semantic-grammar
approach.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Category(enum.Enum):
    """Terminal categories the grammar can scan."""

    ENTITY = "ENTITY"  # payload: EntityRef
    ATTR = "ATTR"  # payload: AttrRef
    VALUE = "VALUE"  # payload: ValueRef (from value index or synonyms)
    SUPER = "SUPER"  # payload: (AttrRef, 'max'|'min')
    COMP = "COMP"  # payload: (AttrRef, '>'|'<')
    UNIT = "UNIT"  # payload: AttrRef

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class CategoricalEntity:
    """A data value used as an entity noun ("the carriers" = ships whose
    type is carrier).  ENTITY entries may carry this payload; the noun
    names ``entity`` and implies ``condition``."""

    entity: Any  # EntityRef
    condition: Any  # ValueCondition


@dataclass(frozen=True)
class LexicalEntry:
    """One phrase -> category/payload binding."""

    phrase_key: tuple[str, ...]  # stemmed words
    category: Category
    payload: Any
    surface: str  # original phrase, for paraphrase/debugging
    weight: float = 1.0  # preference among same-phrase entries

    @property
    def length(self) -> int:
        return len(self.phrase_key)
