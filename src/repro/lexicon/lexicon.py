"""The lexicon store: stemmed-phrase lookup with longest-match preference."""

from __future__ import annotations

from typing import Iterable

from repro.lexicon.entries import Category, LexicalEntry
from repro.nlg.realize import pluralize
from repro.nlp.spelling import SpellingCorrector
from repro.nlp.stemmer import stem


def phrase_key(phrase: str) -> tuple[str, ...]:
    """Stem-normalised key for a phrase ("Home Ports" -> ('home', 'port'))."""
    return tuple(stem(word) for word in phrase.lower().replace("_", " ").split())


class Lexicon:
    """Phrase-keyed store of :class:`LexicalEntry` objects.

    Lookup happens over *stemmed* token sequences, so "ships", "ship" and
    "shipped" all reach the 'ship' entry.  Multiple entries may share a
    phrase (ambiguity is resolved later by the interpreter's ranking).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, ...], list[LexicalEntry]] = {}
        self._max_len = 1
        self._vocabulary = SpellingCorrector()

    def add(self, phrase: str, category: Category, payload, weight: float = 1.0) -> LexicalEntry:
        key = phrase_key(phrase)
        if not key:
            raise ValueError("empty lexicon phrase")
        entry = LexicalEntry(key, category, payload, phrase, weight)
        bucket = self._entries.setdefault(key, [])
        if not any(
            e.category == entry.category and e.payload == entry.payload for e in bucket
        ):
            bucket.append(entry)
        self._max_len = max(self._max_len, len(key))
        for word in phrase.lower().replace("_", " ").split():
            self._vocabulary.add_word(word)
            # Plural forms let the spelling corrector fix "shps" -> "ships";
            # the stemmer folds the corrected plural back onto this entry.
            self._vocabulary.add_word(pluralize(word))
        return entry

    # -- lookup -----------------------------------------------------------------

    @property
    def max_phrase_len(self) -> int:
        return self._max_len

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())

    def entries(self) -> Iterable[LexicalEntry]:
        for bucket in self._entries.values():
            yield from bucket

    def lookup(self, stemmed_words: tuple[str, ...]) -> list[LexicalEntry]:
        return list(self._entries.get(stemmed_words, []))

    def prefix_matches(
        self, stemmed_words: list[str], start: int
    ) -> list[tuple[int, LexicalEntry]]:
        """All entries matching at ``start``; returns (match_length, entry).

        Longest matches come first so the tagger can prefer them.
        """
        out: list[tuple[int, LexicalEntry]] = []
        limit = min(len(stemmed_words) - start, self._max_len)
        for length in range(limit, 0, -1):
            key = tuple(stemmed_words[start : start + length])
            for entry in self._entries.get(key, []):
                out.append((length, entry))
        return out

    def knows_word(self, word: str) -> bool:
        return word.lower() in self._vocabulary

    def correct_word(self, word: str) -> str | None:
        """Spelling-correct a word against the lexicon vocabulary."""
        correction = self._vocabulary.correct(word)
        if correction is None or correction.distance == 0:
            return None
        return correction.corrected

    def category_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.entries():
            counts[entry.category.value] = counts.get(entry.category.value, 0) + 1
        return counts
