"""Logical query forms (IQF) and their algebra."""

from repro.logical.forms import (
    Aggregate,
    AttrRef,
    BetweenCondition,
    CompareCondition,
    CompareToAggregate,
    CompareToInstance,
    Condition,
    EntityRef,
    LogicalQuery,
    MembershipCondition,
    NullCondition,
    OrderSpec,
    Superlative,
    ValueCondition,
    ValueRef,
)

__all__ = [
    "Aggregate",
    "AttrRef",
    "BetweenCondition",
    "CompareCondition",
    "CompareToAggregate",
    "CompareToInstance",
    "Condition",
    "EntityRef",
    "LogicalQuery",
    "MembershipCondition",
    "NullCondition",
    "OrderSpec",
    "Superlative",
    "ValueCondition",
    "ValueRef",
]
