"""The intermediate logical query form (IQF).

The semantic grammar produces an IQF; the interpreter resolves it against
the schema; the SQL generator turns it into a ``repro.sqlengine`` AST.
Keeping this layer explicit is what made the 1978-era systems debuggable:
every stage's output is inspectable and paraphrasable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Union


@dataclass(frozen=True)
class EntityRef:
    """A reference to a domain entity (a table)."""

    table: str
    phrase: str = ""

    def describe(self) -> str:
        return self.phrase or self.table


@dataclass(frozen=True)
class AttrRef:
    """A reference to an entity attribute (a column)."""

    table: str
    column: str
    phrase: str = ""

    def describe(self) -> str:
        return self.phrase or self.column

    @property
    def key(self) -> tuple[str, str]:
        return (self.table, self.column)


@dataclass(frozen=True)
class ValueRef:
    """A reference to a concrete data value found in the database.

    ``approx`` marks matches reached through stem-folding ("engineers"
    matching the stored value "engineer"); ranking prefers exact hits.
    """

    table: str
    column: str
    value: Any
    phrase: str = ""
    approx: bool = False

    def describe(self) -> str:
        return str(self.value)


# --------------------------------------------------------------------------
# Conditions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ValueCondition:
    """Entity is linked to a known value, e.g. "... in the pacific fleet"."""

    value: ValueRef
    negated: bool = False

    def describe(self) -> str:
        verb = "is not" if self.negated else "is"
        return f"{self.value.column} {verb} {self.value.describe()}"


@dataclass(frozen=True)
class CompareCondition:
    """Numeric/text comparison on an attribute, e.g. displacement > 3000."""

    attr: AttrRef
    op: str  # = != < <= > >=
    operand: Any
    negated: bool = False

    def describe(self) -> str:
        words = {"=": "is", "!=": "is not", "<": "is below", "<=": "is at most",
                 ">": "is above", ">=": "is at least"}
        return f"{self.attr.describe()} {words.get(self.op, self.op)} {self.operand}"


@dataclass(frozen=True)
class BetweenCondition:
    """Attribute within an inclusive range."""

    attr: AttrRef
    low: Any
    high: Any
    negated: bool = False

    def describe(self) -> str:
        middle = "is not between" if self.negated else "is between"
        return f"{self.attr.describe()} {middle} {self.low} and {self.high}"


@dataclass(frozen=True)
class NullCondition:
    """Attribute is (not) missing."""

    attr: AttrRef
    negated: bool = False  # negated=True means IS NOT NULL

    def describe(self) -> str:
        state = "is known" if self.negated else "is unknown"
        return f"{self.attr.describe()} {state}"


@dataclass(frozen=True)
class CompareToAggregate:
    """Comparison against a global aggregate — yields a nested query.

    Example: "ships heavier than the average displacement" becomes
    ``displacement > (SELECT AVG(displacement) FROM ship)``.
    """

    attr: AttrRef
    op: str
    aggregate: str  # avg | min | max | sum
    agg_attr: AttrRef
    negated: bool = False

    def describe(self) -> str:
        return (
            f"{self.attr.describe()} {self.op} the {self.aggregate} "
            f"{self.agg_attr.describe()} of all rows"
        )


@dataclass(frozen=True)
class MembershipCondition:
    """Disjunction over values, e.g. "in norfolk or san diego".

    All values must resolve to the same column; the interpreter enforces
    that and the SQL generator emits an ``IN`` list.
    """

    values: tuple[ValueRef, ...]
    negated: bool = False

    def describe(self) -> str:
        names = " or ".join(v.describe() for v in self.values)
        verb = "is not one of" if self.negated else "is one of"
        column = self.values[0].column if self.values else "?"
        return f"{column} {verb} {names}"


@dataclass(frozen=True)
class CompareToInstance:
    """Comparison against a named instance's attribute — nested query.

    Example: "ships heavier than the kennedy" becomes
    ``displacement > (SELECT displacement FROM ship WHERE name = 'Kennedy')``.
    """

    attr: AttrRef
    op: str
    instance: ValueRef
    negated: bool = False

    def describe(self) -> str:
        return (
            f"{self.attr.describe()} {self.op} that of {self.instance.describe()}"
        )


Condition = Union[
    ValueCondition,
    CompareCondition,
    BetweenCondition,
    NullCondition,
    CompareToAggregate,
    MembershipCondition,
    CompareToInstance,
]


# --------------------------------------------------------------------------
# Aggregation / superlatives
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Aggregate:
    """COUNT/SUM/AVG/MIN/MAX over the result."""

    function: str  # count | sum | avg | min | max
    attr: AttrRef | None = None  # None only valid for count
    distinct: bool = False

    def describe(self) -> str:
        if self.function == "count":
            return "the number"
        noun = {"sum": "total", "avg": "average", "min": "smallest", "max": "largest"}
        target = self.attr.describe() if self.attr else ""
        return f"the {noun.get(self.function, self.function)} {target}".strip()


@dataclass(frozen=True)
class Superlative:
    """Top-k by an attribute, e.g. "the 3 largest ships"."""

    attr: AttrRef
    direction: str  # 'max' | 'min'
    k: int = 1

    def describe(self) -> str:
        word = "highest" if self.direction == "max" else "lowest"
        prefix = f"{self.k} " if self.k != 1 else ""
        return f"the {prefix}{word} {self.attr.describe()}"


@dataclass(frozen=True)
class OrderSpec:
    attr: AttrRef
    descending: bool = False


# --------------------------------------------------------------------------
# The query itself
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LogicalQuery:
    """A complete, schema-resolved logical question.

    ``target`` names the entity being asked about; projections default to
    the entity's display attributes when empty.
    """

    target: EntityRef
    projections: tuple[AttrRef, ...] = ()
    aggregate: Aggregate | None = None
    conditions: tuple[Condition, ...] = ()
    superlative: Superlative | None = None
    group_by: AttrRef | None = None
    order_by: OrderSpec | None = None
    limit: int | None = None

    # -- ellipsis / dialogue algebra ------------------------------------------

    def with_conditions(self, conditions: tuple[Condition, ...]) -> "LogicalQuery":
        return replace(self, conditions=conditions)

    def add_condition(self, condition: Condition) -> "LogicalQuery":
        return replace(self, conditions=self.conditions + (condition,))

    def describe(self) -> str:
        """A compact, deterministic one-line summary (used for ranking ties
        and clarification menus; the full paraphraser lives in repro.nlg)."""
        parts = []
        if self.aggregate:
            parts.append(self.aggregate.describe())
            parts.append("of")
        parts.append(self.target.describe())
        for condition in self.conditions:
            parts.append(f"[{condition.describe()}]")
        if self.superlative:
            parts.append(f"<{self.superlative.describe()}>")
        if self.group_by:
            parts.append(f"per {self.group_by.describe()}")
        return " ".join(parts)

    def condition_tables(self) -> set[str]:
        """All tables touched by the query (for join inference)."""
        tables = {self.target.table}
        for condition in self.conditions:
            if isinstance(condition, ValueCondition):
                tables.add(condition.value.table)
            elif isinstance(condition, MembershipCondition):
                tables.update(v.table for v in condition.values)
            elif isinstance(
                condition,
                (CompareCondition, BetweenCondition, NullCondition,
                 CompareToAggregate, CompareToInstance),
            ):
                tables.add(condition.attr.table)
        for attr in self.projections:
            tables.add(attr.table)
        if self.aggregate and self.aggregate.attr:
            tables.add(self.aggregate.attr.table)
        if self.superlative:
            tables.add(self.superlative.attr.table)
        if self.group_by:
            tables.add(self.group_by.table)
        if self.order_by:
            tables.add(self.order_by.attr.table)
        return tables
