"""Template-based natural language generation helpers."""

from repro.nlg.realize import (
    indefinite,
    join_words,
    number_phrase,
    op_phrase,
    pluralize,
)

__all__ = ["indefinite", "join_words", "number_phrase", "op_phrase", "pluralize"]
