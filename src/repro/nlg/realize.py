"""Surface-realization helpers for the paraphraser (RENDEZVOUS-style echo)."""

from __future__ import annotations

_IRREGULAR_PLURALS = {
    "person": "people",
    "child": "children",
    "man": "men",
    "woman": "women",
    "foot": "feet",
    "country": "countries",
    "city": "cities",
    "company": "companies",
    "navy": "navies",
    "category": "categories",
    "industry": "industries",
}


def pluralize(noun: str) -> str:
    """A small English pluraliser — enough for schema nouns.

    >>> pluralize("ship")
    'ships'
    >>> pluralize("class")
    'classes'
    >>> pluralize("city")
    'cities'
    """
    lowered = noun.lower()
    if lowered in _IRREGULAR_PLURALS:
        return _IRREGULAR_PLURALS[lowered]
    if lowered.endswith(("s", "x", "z", "ch", "sh")):
        return noun + "es"
    if lowered.endswith("y") and len(lowered) > 1 and lowered[-2] not in "aeiou":
        return noun[:-1] + "ies"
    return noun + "s"


def join_words(words: list[str], conjunction: str = "and") -> str:
    """Oxford-comma-free list joining: a, b and c."""
    if not words:
        return ""
    if len(words) == 1:
        return words[0]
    if len(words) == 2:
        return f"{words[0]} {conjunction} {words[1]}"
    return ", ".join(words[:-1]) + f" {conjunction} {words[-1]}"


def number_phrase(count: int, noun: str) -> str:
    """"1 ship" / "4 ships" / "no ships"."""
    if count == 0:
        return f"no {pluralize(noun)}"
    if count == 1:
        return f"1 {noun}"
    return f"{count} {pluralize(noun)}"


def indefinite(noun: str) -> str:
    """Prefix a/an."""
    article = "an" if noun[:1].lower() in "aeiou" else "a"
    return f"{article} {noun}"


_OP_WORDS = {
    "=": "equal to",
    "!=": "different from",
    "<": "below",
    "<=": "at most",
    ">": "above",
    ">=": "at least",
}


def op_phrase(op: str) -> str:
    return _OP_WORDS.get(op, op)
