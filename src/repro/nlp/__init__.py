"""NLP front end: tokenizer, stemmer, spelling correction, number parsing."""

from repro.nlp.numbers import (
    NUMBER_WORDS,
    parse_number_words,
    parse_numeral,
    parse_ordinal,
)
from repro.nlp.spelling import Correction, SpellingCorrector, damerau_levenshtein
from repro.nlp.stemmer import stem, stem_phrase
from repro.nlp.stopwords import PROTECTED_WORDS, QUESTION_WORDS, STOPWORDS, strip_stopwords
from repro.nlp.tokenizer import Token, Tokenization, tokenize

__all__ = [
    "Correction",
    "NUMBER_WORDS",
    "PROTECTED_WORDS",
    "QUESTION_WORDS",
    "STOPWORDS",
    "SpellingCorrector",
    "Token",
    "Tokenization",
    "damerau_levenshtein",
    "parse_number_words",
    "parse_numeral",
    "parse_ordinal",
    "stem",
    "stem_phrase",
    "strip_stopwords",
    "tokenize",
]
