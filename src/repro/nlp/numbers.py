"""Parsing of number words and numerals in questions.

Handles "five", "twenty three", "three hundred", "1,200", "2.5",
"a hundred", plus ordinals ("third") used by superlative phrases.
"""

from __future__ import annotations

_UNITS = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
    "eleven": 11, "twelve": 12, "thirteen": 13, "fourteen": 14,
    "fifteen": 15, "sixteen": 16, "seventeen": 17, "eighteen": 18,
    "nineteen": 19,
}

_TENS = {
    "twenty": 20, "thirty": 30, "forty": 40, "fifty": 50,
    "sixty": 60, "seventy": 70, "eighty": 80, "ninety": 90,
}

_SCALES = {"hundred": 100, "thousand": 1_000, "million": 1_000_000}

_ORDINALS = {
    "first": 1, "second": 2, "third": 3, "fourth": 4, "fifth": 5,
    "sixth": 6, "seventh": 7, "eighth": 8, "ninth": 9, "tenth": 10,
}

NUMBER_WORDS = frozenset(_UNITS) | frozenset(_TENS) | frozenset(_SCALES) | {"a", "an"}


def parse_numeral(text: str) -> int | float | None:
    """Parse a numeral string like '42', '1200', '2.5'; None on failure."""
    cleaned = text.replace(",", "")
    try:
        if "." in cleaned:
            return float(cleaned)
        return int(cleaned)
    except ValueError:
        return None


def parse_ordinal(word: str) -> int | None:
    """Parse 'third' -> 3 and '3rd' -> 3; None when not an ordinal."""
    lowered = word.lower()
    if lowered in _ORDINALS:
        return _ORDINALS[lowered]
    for suffix in ("st", "nd", "rd", "th"):
        if lowered.endswith(suffix) and lowered[: -len(suffix)].isdigit():
            return int(lowered[: -len(suffix)])
    return None


def parse_number_words(words: list[str]) -> tuple[int | float, int] | None:
    """Parse a number from the front of ``words``.

    Returns ``(value, tokens_consumed)`` or None.  Accepts numerals too, so
    callers can treat "3 thousand" and "three thousand" the same way.

    >>> parse_number_words(["twenty", "three", "ships"])
    (23, 2)
    >>> parse_number_words(["a", "hundred"])
    (100, 2)
    """
    if not words:
        return None
    total = 0
    current = 0
    consumed = 0
    for i, word in enumerate(words):
        lowered = word.lower()
        numeral = parse_numeral(lowered) if lowered[:1].isdigit() else None
        if numeral is not None:
            if current:
                break
            current = numeral
            consumed = i + 1
            continue
        if lowered in _UNITS:
            if current and current % 10 == 0 and current < 100:
                current += _UNITS[lowered]  # twenty three
            elif current:
                break
            else:
                current = _UNITS[lowered]
            consumed = i + 1
            continue
        if lowered in _TENS:
            if current:
                break
            current = _TENS[lowered]
            consumed = i + 1
            continue
        if lowered in ("a", "an"):
            # only meaningful before a scale word: "a hundred"
            if i + 1 < len(words) and words[i + 1].lower() in _SCALES:
                current = 1
                consumed = i + 1
                continue
            break
        if lowered in _SCALES:
            if current == 0:
                break
            current *= _SCALES[lowered]
            total += current
            current = 0
            consumed = i + 1
            continue
        break
    value = total + current
    if consumed == 0:
        return None
    if consumed == 1 and words[0].lower() in ("a", "an"):
        return None
    return value, consumed
