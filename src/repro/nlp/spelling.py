"""Spelling correction against a known vocabulary.

LADDER-era systems corrected typos before parsing, because a single
misspelled domain word would otherwise kill the whole question.  The
corrector here uses Damerau–Levenshtein distance (insert, delete,
substitute, transpose) with a length-aware threshold and a frequency
tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (valueindex → nlp)
    from repro.valueindex.pmap import PMap


def damerau_levenshtein(a: str, b: str, cap: int | None = None) -> int:
    """Damerau–Levenshtein edit distance (optimal string alignment).

    ``cap`` short-circuits: when the true distance provably exceeds it the
    function may return any value > cap.

    >>> damerau_levenshtein("ship", "sihp")
    1
    >>> damerau_levenshtein("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if cap is not None and abs(la - lb) > cap:
        return cap + 1
    if la == 0:
        return lb
    if lb == 0:
        return la
    previous2: list[int] | None = None
    previous = list(range(lb + 1))
    for i in range(1, la + 1):
        current = [i] + [0] * lb
        for j in range(1, lb + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution
            )
            if (
                previous2 is not None
                and i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                current[j] = min(current[j], previous2[j - 2] + 1)
        if cap is not None and min(current) > cap:
            return cap + 1
        previous2 = previous
        previous = current
    return previous[lb]


def _threshold(length: int) -> int:
    """Allowed edit distance by word length (short words correct less)."""
    if length <= 3:
        return 0
    if length <= 5:
        return 1
    return 2


@dataclass(frozen=True)
class Correction:
    """A corrected word with its provenance."""

    original: str
    corrected: str
    distance: int


class SpellingCorrector:
    """Corrects words to the nearest vocabulary entry.

    Vocabulary entries carry an integer weight (e.g. frequency in the
    database); among equal-distance candidates the highest weight wins, and
    ties break alphabetically for determinism.
    """

    def __init__(self) -> None:
        self._vocabulary: dict[str, int] | PMap = {}
        self._by_length: dict[int, list[str]] | PMap = {}
        #: Persistent mode: the two maps are structurally-shared PMaps
        #: (buckets become tuples), every mutation replaces the map
        #: reference, and :meth:`clone` is O(1) reference copying.
        self._persistent = False

    def add_word(self, word: str, weight: int = 1) -> None:
        lowered = word.lower()
        if not lowered:
            return
        if self._persistent:
            remaining = self._vocabulary.get(lowered)
            if remaining is None:
                bucket = self._by_length.get(len(lowered), ())
                self._by_length = self._by_length.set(
                    len(lowered), bucket + (lowered,)
                )
                self._vocabulary = self._vocabulary.set(lowered, weight)
            else:
                self._vocabulary = self._vocabulary.set(lowered, remaining + weight)
            return
        if lowered not in self._vocabulary:
            self._by_length.setdefault(len(lowered), []).append(lowered)
            self._vocabulary[lowered] = weight
        else:
            self._vocabulary[lowered] += weight

    def add_words(self, words, weight: int = 1) -> None:
        for word in words:
            self.add_word(word, weight)

    def remove_word(self, word: str, weight: int = 1) -> None:
        """Withdraw ``weight`` from a word; drop it when nothing remains.

        The inverse of :meth:`add_word`, used by incrementally maintained
        indexes (the value index removes a deleted row's words so typos no
        longer correct toward values that left the database).
        """
        lowered = word.lower()
        remaining = self._vocabulary.get(lowered)
        if remaining is None:
            return
        if self._persistent:
            if remaining > weight:
                self._vocabulary = self._vocabulary.set(lowered, remaining - weight)
                return
            self._vocabulary = self._vocabulary.delete(lowered)
            bucket = tuple(
                w for w in self._by_length.get(len(lowered), ()) if w != lowered
            )
            if bucket:
                self._by_length = self._by_length.set(len(lowered), bucket)
            else:
                self._by_length = self._by_length.delete(len(lowered))
            return
        if remaining > weight:
            self._vocabulary[lowered] = remaining - weight
            return
        del self._vocabulary[lowered]
        bucket = self._by_length.get(len(lowered), [])
        try:
            bucket.remove(lowered)
        except ValueError:  # pragma: no cover - maps kept in lockstep
            pass
        if not bucket:
            self._by_length.pop(len(lowered), None)

    def to_persistent(self) -> None:
        """Switch to persistent maps (in place); a no-op when already there.

        After conversion every mutation builds a new structurally-shared
        map, so clones share all untouched nodes with their source.
        """
        if self._persistent:
            return
        from repro.valueindex.pmap import PMap

        self._vocabulary = PMap.from_dict(self._vocabulary)
        self._by_length = PMap.from_dict(
            {length: tuple(words) for length, words in self._by_length.items()}
        )
        self._persistent = True

    def clone(self) -> SpellingCorrector:
        """Independent copy of the vocabulary (weights included), used by
        copy-on-write publishers that patch a clone instead of mutating a
        corrector other threads are reading.  In persistent mode this is
        O(1): the clone aliases the current maps, and either side's next
        mutation replaces its own reference without touching the other."""
        out = SpellingCorrector()
        if self._persistent:
            out._vocabulary = self._vocabulary
            out._by_length = self._by_length
            out._persistent = True
            return out
        out._vocabulary = dict(self._vocabulary)
        out._by_length = {
            length: list(words) for length, words in self._by_length.items()
        }
        return out

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._vocabulary

    def __len__(self) -> int:
        return len(self._vocabulary)

    def correct(self, word: str) -> Correction | None:
        """Best correction for ``word``, or None if nothing is close enough.

        Known words return distance-0 corrections immediately.
        """
        lowered = word.lower()
        if lowered in self._vocabulary:
            return Correction(word, lowered, 0)
        budget = _threshold(len(lowered))
        if budget == 0:
            return None
        best: tuple[int, int, str] | None = None  # (distance, -weight, word)
        for length in range(len(lowered) - budget, len(lowered) + budget + 1):
            for candidate in self._by_length.get(length, []):
                distance = damerau_levenshtein(lowered, candidate, cap=budget)
                if distance > budget:
                    continue
                key = (distance, -self._vocabulary[candidate], candidate)
                if best is None or key < best:
                    best = key
        if best is None:
            return None
        return Correction(word, best[2], best[0])
