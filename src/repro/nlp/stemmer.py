"""A Porter-style stemmer, implemented from scratch.

This is the classic Porter (1980) algorithm — the same family of suffix
stripping the 1970s NLIDB systems used for morphological normalisation so
that "ships", "shipped" and "ship" share a lexicon entry.

The implementation follows the five-step description of the original
paper.  It is deliberately self-contained (no NLTK).
"""

from __future__ import annotations

_VOWELS = "aeiou"


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter "measure" m: number of VC sequences in the stem."""
    m = 0
    previous_was_vowel = False
    for i in range(len(stem)):
        consonant = _is_consonant(stem, i)
        if consonant and previous_was_vowel:
            m += 1
        previous_was_vowel = not consonant
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


def _replace(word: str, suffix: str, replacement: str, min_measure: int) -> str | None:
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word = stem
            flag = True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word = stem
            flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2 = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3 = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4 = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _step2(word: str) -> str:
    for suffix, replacement in _STEP2:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step3(word: str) -> str:
    for suffix, replacement in _STEP3:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step4(word: str) -> str:
    for suffix in _STEP4:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if _measure(stem) > 1 and stem.endswith(("s", "t")):
            return stem
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step5b(word: str) -> str:
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        return word[:-1]
    return word


def stem(word: str) -> str:
    """Stem one lower-case word.

    >>> stem("ships")
    'ship'
    >>> stem("carriers")
    'carrier'
    >>> stem("relational")
    'relat'
    """
    if len(word) <= 2 or not word.isalpha():
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _step2(word)
    word = _step3(word)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word


def stem_phrase(phrase: str) -> str:
    """Stem each whitespace-separated word of a phrase."""
    return " ".join(stem(word) for word in phrase.lower().split())
