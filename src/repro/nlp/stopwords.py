"""Stopwords and closed-class word lists used across the pipeline.

These lists are *protected vocabulary*: the spelling corrector never maps
an unknown word onto a database value if it is a common function word, and
the keyword baseline drops them before matching.
"""

from __future__ import annotations

STOPWORDS = frozenset(
    """
    a an the of in on at by for with to from into over under between
    and or not no
    is are was were be been being am do does did have has had will would
    can could shall should may might must
    i you he she it we they me him her us them my your his its our their
    this that these those there here
    what which who whom whose when where why how
    show list give tell find get display print name
    all any each every some most more less than as
    please me us
    """.split()
)

#: Words that signal a question even without a question mark.
QUESTION_WORDS = frozenset(
    "what which who whom whose when where why how many much".split()
)

#: Words never offered as spelling-correction sources or targets.
PROTECTED_WORDS = STOPWORDS | QUESTION_WORDS


def strip_stopwords(words: list[str]) -> list[str]:
    """Remove stopwords, keeping order.

    >>> strip_stopwords(["show", "the", "ships", "in", "the", "pacific"])
    ['ships', 'pacific']
    """
    return [word for word in words if word.lower() not in STOPWORDS]
