"""Word-level tokenizer for English questions.

Produces :class:`Token` objects with surface form, lower-cased text and
character offsets.  Handles contractions ("what's" -> "what" + "'s"),
possessives, hyphenated words, numbers with decimal points/commas, and
strips punctuation while keeping it available for sentence-type detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_CONTRACTIONS = {
    "what's": ["what", "is"],
    "whats": ["what", "is"],
    "wheres": ["where", "is"],
    "whos": ["who", "is"],
    "who's": ["who", "is"],
    "where's": ["where", "is"],
    "how's": ["how", "is"],
    "that's": ["that", "is"],
    "there's": ["there", "is"],
    "it's": ["it", "is"],
    "isn't": ["is", "not"],
    "aren't": ["are", "not"],
    "wasn't": ["was", "not"],
    "weren't": ["were", "not"],
    "don't": ["do", "not"],
    "doesn't": ["does", "not"],
    "didn't": ["did", "not"],
    "can't": ["can", "not"],
    "couldn't": ["could", "not"],
    "won't": ["will", "not"],
    "wouldn't": ["would", "not"],
    "haven't": ["have", "not"],
    "hasn't": ["has", "not"],
    "i'm": ["i", "am"],
    "we're": ["we", "are"],
    "they're": ["they", "are"],
    "let's": ["let", "us"],
}


@dataclass(frozen=True)
class Token:
    """One token of the input question."""

    text: str  # lower-cased normal form
    surface: str  # original spelling
    start: int  # character offset in the raw question
    end: int
    is_number: bool = False
    corrected_from: str | None = None  # set by the spelling corrector

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.text


@dataclass
class Tokenization:
    """The token list plus sentence-level features."""

    raw: str
    tokens: list[Token] = field(default_factory=list)
    had_question_mark: bool = False

    @property
    def words(self) -> list[str]:
        return [token.text for token in self.tokens]


def _is_word_char(ch: str) -> bool:
    return ch.isalnum() or ch in ("_",)


def tokenize(text: str) -> Tokenization:
    """Tokenise a question.

    >>> tokenize("What's the U.S.A's largest ship?").words[:3]
    ['what', 'is', 'the']
    """
    result = Tokenization(raw=text)
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "?":
            result.had_question_mark = True
            i += 1
            continue
        if not _is_word_char(ch):
            i += 1
            continue
        # number: digits with optional , . separators and decimal part
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n:
                cj = text[j]
                if cj.isdigit():
                    j += 1
                    continue
                if cj == "," and j + 1 < n and text[j + 1].isdigit():
                    j += 1
                    continue
                if cj == "." and not seen_dot and j + 1 < n and text[j + 1].isdigit():
                    seen_dot = True
                    j += 1
                    continue
                break
            surface = text[i:j]
            result.tokens.append(
                Token(surface.replace(",", ""), surface, i, j, is_number=True)
            )
            i = j
            continue
        # word: letters, digits, internal apostrophes/hyphens/periods (U.S.A)
        j = i
        while j < n:
            cj = text[j]
            if _is_word_char(cj):
                j += 1
                continue
            if cj in ("'", "-", ".") and j + 1 < n and _is_word_char(text[j + 1]):
                j += 1
                continue
            break
        surface = text[i:j]
        _append_word(result, surface, i, j)
        i = j
    return result


def _append_word(result: Tokenization, surface: str, start: int, end: int) -> None:
    lowered = surface.lower()
    # strip abbreviation periods: u.s.a -> usa
    if "." in lowered:
        lowered = lowered.replace(".", "")
    # possessive: ship's -> ship
    if lowered.endswith("'s"):
        base = lowered[:-2]
        if base in _CONTRACTIONS_KEYS_BY_BASE:
            pass  # fall through to contraction handling below
        else:
            expansion = _CONTRACTIONS.get(lowered)
            if expansion is None:
                result.tokens.append(Token(base, surface, start, end))
                return
    if lowered in _CONTRACTIONS:
        for part in _CONTRACTIONS[lowered]:
            result.tokens.append(Token(part, surface, start, end))
        return
    if lowered.endswith("'") and lowered[:-1]:
        lowered = lowered[:-1]
    # split remaining internal apostrophes conservatively
    lowered = lowered.replace("'", "")
    if lowered:
        result.tokens.append(Token(lowered, surface, start, end))


_CONTRACTIONS_KEYS_BY_BASE = {
    key[:-2] for key in _CONTRACTIONS if key.endswith("'s")
}
