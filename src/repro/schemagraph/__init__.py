"""Schema graph and join-path inference (from-scratch graph algorithms)."""

from repro.schemagraph.graph import JoinEdge, SchemaGraph
from repro.schemagraph.steiner import (
    pairwise_join_paths,
    steiner_join_tree,
    tables_in_tree,
)

__all__ = [
    "JoinEdge",
    "SchemaGraph",
    "pairwise_join_paths",
    "steiner_join_tree",
    "tables_in_tree",
]
