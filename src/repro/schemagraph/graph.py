"""Schema graph: tables as nodes, foreign keys as edges.

Join-path inference over this graph is what lets a user say "ships in the
pacific fleet" without ever naming the link tables — the system finds the
FK chain itself.  All graph algorithms are implemented here from scratch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import InterpretationError
from repro.sqlengine.database import Database


@dataclass(frozen=True)
class JoinEdge:
    """One foreign-key edge: ``from_table.from_column -> to_table.to_column``."""

    from_table: str
    from_column: str
    to_table: str
    to_column: str

    def reversed(self) -> "JoinEdge":
        return JoinEdge(self.to_table, self.to_column, self.from_table, self.from_column)

    def describe(self) -> str:
        return (
            f"{self.from_table}.{self.from_column} = "
            f"{self.to_table}.{self.to_column}"
        )


class SchemaGraph:
    """Undirected view of a database's FK structure."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._adjacency: dict[str, list[JoinEdge]] = {
            name: [] for name in database.table_names
        }
        for schema in database.schemas():
            for fk in schema.foreign_keys:
                edge = JoinEdge(schema.name, fk.column, fk.ref_table, fk.ref_column)
                self._adjacency[schema.name].append(edge)
                self._adjacency[fk.ref_table].append(edge.reversed())

    @property
    def tables(self) -> list[str]:
        return sorted(self._adjacency)

    def neighbors(self, table: str) -> list[JoinEdge]:
        return list(self._adjacency.get(table, []))

    def degree(self, table: str) -> int:
        return len(self._adjacency.get(table, []))

    # -- paths ---------------------------------------------------------------

    def shortest_path(self, source: str, target: str) -> list[JoinEdge]:
        """BFS shortest join path; [] when source == target.

        Raises :class:`InterpretationError` when no path exists.
        """
        if source not in self._adjacency or target not in self._adjacency:
            raise InterpretationError(
                f"unknown table in join inference: {source!r} or {target!r}"
            )
        if source == target:
            return []
        parents: dict[str, JoinEdge] = {}
        visited = {source}
        queue: deque[str] = deque([source])
        while queue:
            current = queue.popleft()
            for edge in self._adjacency[current]:
                nxt = edge.to_table
                if nxt in visited:
                    continue
                visited.add(nxt)
                parents[nxt] = edge
                if nxt == target:
                    return self._rebuild(parents, source, target)
                queue.append(nxt)
        raise InterpretationError(
            f"no join path between {source!r} and {target!r}"
        )

    @staticmethod
    def _rebuild(parents: dict[str, JoinEdge], source: str, target: str) -> list[JoinEdge]:
        path: list[JoinEdge] = []
        node = target
        while node != source:
            edge = parents[node]
            path.append(edge)
            node = edge.from_table
        path.reverse()
        return path

    def distance(self, source: str, target: str) -> int:
        """Number of join hops between two tables (inf -> error)."""
        return len(self.shortest_path(source, target))

    def connected(self, source: str, target: str) -> bool:
        try:
            self.shortest_path(source, target)
            return True
        except InterpretationError:
            return False
