"""Steiner-tree approximation for join-path inference.

Given the set of tables a question touches (the *terminals*), the join
tree connecting them should be as small as possible — extra tables mean
extra joins and, worse, changed semantics.  Finding the minimum connecting
tree is the Steiner tree problem (NP-hard); the classic 2-approximation
used here grows the tree greedily by repeatedly attaching the terminal
closest to the tree so far (Takahashi–Matsuyama).
"""

from __future__ import annotations

from repro.errors import InterpretationError
from repro.schemagraph.graph import JoinEdge, SchemaGraph


def steiner_join_tree(graph: SchemaGraph, terminals: set[str]) -> list[JoinEdge]:
    """Approximate minimal set of join edges connecting all ``terminals``.

    Returns a deduplicated edge list forming a tree over the terminals
    (possibly through intermediate "Steiner" tables).  Deterministic:
    terminals are processed in sorted order, ties broken alphabetically.

    >>> # terminals of size one need no joins
    """
    missing = [t for t in terminals if t not in graph.tables]
    if missing:
        raise InterpretationError(f"unknown tables in join inference: {missing}")
    ordered = sorted(terminals)
    if len(ordered) <= 1:
        return []

    in_tree: set[str] = {ordered[0]}
    remaining = ordered[1:]
    edges: list[JoinEdge] = []
    edge_keys: set[tuple[str, str, str, str]] = set()

    while remaining:
        # Find the remaining terminal with the shortest path to the tree.
        best: tuple[int, str, list[JoinEdge]] | None = None
        for terminal in remaining:
            candidate: tuple[int, list[JoinEdge]] | None = None
            for anchor in sorted(in_tree):
                try:
                    path = graph.shortest_path(anchor, terminal)
                except InterpretationError:
                    continue
                if candidate is None or len(path) < candidate[0]:
                    candidate = (len(path), path)
            if candidate is None:
                raise InterpretationError(
                    f"table {terminal!r} cannot be joined with {sorted(in_tree)}"
                )
            if best is None or candidate[0] < best[0] or (
                candidate[0] == best[0] and terminal < best[1]
            ):
                best = (candidate[0], terminal, candidate[1])
        assert best is not None
        _, chosen, path = best
        for edge in path:
            key = _edge_key(edge)
            if key not in edge_keys:
                edge_keys.add(key)
                edges.append(edge)
            in_tree.add(edge.from_table)
            in_tree.add(edge.to_table)
        in_tree.add(chosen)
        remaining.remove(chosen)
    return edges


def pairwise_join_paths(graph: SchemaGraph, terminals: set[str]) -> list[JoinEdge]:
    """Naive alternative (ablation A4): union of shortest paths from the
    first terminal to each other terminal.  Usually produces the same tree
    on clean snowflake schemas but can include redundant hops on cyclic
    ones — the ablation benchmark quantifies the difference."""
    ordered = sorted(terminals)
    if len(ordered) <= 1:
        return []
    root = ordered[0]
    edges: list[JoinEdge] = []
    seen: set[tuple[str, str, str, str]] = set()
    for terminal in ordered[1:]:
        for edge in graph.shortest_path(root, terminal):
            key = _edge_key(edge)
            if key not in seen:
                seen.add(key)
                edges.append(edge)
    return edges


def tables_in_tree(edges: list[JoinEdge], terminals: set[str]) -> list[str]:
    """All tables covered by a join tree, terminals included, sorted."""
    tables = set(terminals)
    for edge in edges:
        tables.add(edge.from_table)
        tables.add(edge.to_table)
    return sorted(tables)


def _edge_key(edge: JoinEdge) -> tuple[str, str, str, str]:
    """Direction-insensitive identity of a join edge."""
    forward = (edge.from_table, edge.from_column, edge.to_table, edge.to_column)
    backward = (edge.to_table, edge.to_column, edge.from_table, edge.from_column)
    return min(forward, backward)
