"""Cross-process front end: a stdlib-asyncio HTTP server for the NLI.

The paper's interface was a time-shared facility — many casual users at
terminals querying one database.  This package is that shape on modern
plumbing: ``repro serve fleet`` exposes the full
:class:`~repro.service.response.Response` protocol over HTTP, speaking
exactly the ``Response.to_dict()`` JSON the in-process API produces, so
a clarification dialog started by one request can be resolved by the
next — from a different process, or after a server restart.

No dependencies beyond the standard library: the server is built
directly on :func:`asyncio.start_server` with a small HTTP/1.1 reader.
See ``docs/http.md`` for the endpoint reference.
"""

from repro.server.http import (
    ApiError,
    NliHttpServer,
    ServerHandle,
    ServiceBackend,
    response_http_code,
    serve_in_thread,
)

__all__ = [
    "ApiError",
    "NliHttpServer",
    "ServerHandle",
    "ServiceBackend",
    "response_http_code",
    "serve_in_thread",
]
