"""The asyncio HTTP front end: ``Response.to_dict()`` over the wire.

Endpoints (all JSON; see ``docs/http.md`` for shapes and curl examples):

========  =============  ====================================================
method    path           body / behaviour
========  =============  ====================================================
POST      /ask           ``{"question", "session"?, "clarify"?}`` -> envelope
POST      /ask_many      ``{"questions": [...], ...}`` -> ``{"responses"}``
POST      /resolve       ``{"clarification_id", "choice"}`` -> envelope
POST      /sql           ``{"sql"}`` -> ``{"columns", "rows"}``
GET       /stats         service + http counters
GET       /healthz       liveness probe
========  =============  ====================================================

Status mapping follows the CLI's 0/2/3 exit-code convention:
``ANSWERED`` -> 200, ``AMBIGUOUS`` / ``NEEDS_CLARIFICATION`` -> 409 (the
request needs another round trip to complete), ``FAILED`` -> 422, and a
rate-limited envelope -> 429 with a ``Retry-After`` header.  Transport
problems use transport codes: malformed JSON or a missing field is 400,
an unknown clarification id 404, an unknown path 404, a wrong method
405, an oversized body 413.

Concurrency: the event loop only parses requests and writes responses;
every service call runs on the service's bounded worker pool via the
async face (``ask_async`` & co.), so concurrent HTTP askers become
concurrent MVCC snapshot readers — each pinned to a consistent database
version, never queued behind a DML writer — while the loop stays
responsive (see ``docs/concurrency.md``).

One server-side optimization rides here: a **response cache** for
session-less ``/ask`` requests.  Those are pure reads — no dialogue
state, no parked interpretations — so the serialized envelope bytes are
cached keyed by (question, clarify, ``NliService.data_stamp()`` — the
version stamp a snapshot pinned at that moment would carry) and served
without touching the pipeline.  Anything stateful (sessions, AMBIGUOUS
responses, rate-limited envelopes) bypasses the cache, and a DML commit
anywhere moves the stamp, so a cached answer can never be served across
data versions.  The rate limiter is still charged on cache hits, so
cached traffic cannot dodge its budget.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from typing import Any, Awaitable, Callable

from repro.errors import ClarificationError, EngineError, ReproError
from repro.service.response import Response, Status
from repro.service.service import NliService
from repro.sqlengine.plancache import LruCache

__all__ = [
    "NliHttpServer",
    "ServerHandle",
    "response_http_code",
    "serve_in_thread",
]

#: ``Response.status`` -> HTTP code (the CLI's 0/2/3 convention).
STATUS_HTTP = {
    Status.ANSWERED: 200,
    Status.AMBIGUOUS: 409,
    Status.NEEDS_CLARIFICATION: 409,
    Status.FAILED: 422,
}

MAX_BODY_BYTES = 1 << 20
MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def response_http_code(response: Response) -> int:
    """Map one envelope to its HTTP status code."""
    if response.is_rate_limited:
        return 429
    return STATUS_HTTP[response.status]


class _ApiError(Exception):
    """A transport-level problem, rendered as ``{"error", "code"}`` JSON."""

    def __init__(self, http_code: int, message: str, code: str = "bad_request"):
        super().__init__(message)
        self.http_code = http_code
        self.payload = {"error": message, "code": code}
        self.headers: dict[str, str] = {}


def _rate_key(service: NliService, sid: str | None, client_ip: str) -> str:
    """Rate-limit key: the session id once it exists, else the client
    address.  Session *creation* is charged to the address, so a client
    cannot mint a fresh bucket (and a server-side Session) per request
    just by sending a new session id every time."""
    if sid is not None and service.has_session(sid):
        return sid
    return client_ip


def _retry_headers(response: Response) -> dict[str, str]:
    retry = response.retry_after_s
    if retry is None:
        return {}
    return {"Retry-After": str(max(1, math.ceil(retry)))}


class NliHttpServer:
    """One :class:`~repro.service.service.NliService` behind a socket."""

    def __init__(
        self,
        service: NliService,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; real port filled in by start()
        self._server: asyncio.AbstractServer | None = None
        #: (question, clarify, data version, catalog version) -> serialized
        #: (http code, body bytes) for session-less asks.
        self._cache: LruCache = LruCache(capacity=cache_size)
        self.stats = {
            "requests": 0,
            "responses_cached": 0,
            "cache_hits": 0,
            "transport_errors": 0,
            "internal_errors": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client_ip = peer[0] if isinstance(peer, tuple) else "local"
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ValueError:
                    # StreamReader.readline raises ValueError when a line
                    # (request line or header) exceeds its 64 KiB limit.
                    request = None
                    exc = _ApiError(
                        400, "request head too large or malformed", "bad_request"
                    )
                except _ApiError as error:
                    request = None
                    exc = error
                else:
                    exc = None
                if exc is not None:
                    # Framing problem: answer it, then hang up — the stream
                    # position is unreliable after a bad head.
                    self.stats["transport_errors"] += 1
                    blob = json.dumps(exc.payload).encode("utf-8")
                    self._write_response(
                        writer, exc.http_code, blob, False, exc.headers
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                self.stats["requests"] += 1
                try:
                    code, payload, extra = await self._route(
                        method, path, body, client_ip
                    )
                except _ApiError as exc:
                    self.stats["transport_errors"] += 1
                    code, payload, extra = exc.http_code, exc.payload, exc.headers
                except ReproError as exc:
                    # Library errors that escaped a handler's own mapping.
                    self.stats["internal_errors"] += 1
                    code, payload, extra = (
                        422,
                        {"error": str(exc), "code": type(exc).__name__},
                        {},
                    )
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    self.stats["internal_errors"] += 1
                    code, payload, extra = (
                        500,
                        {"error": str(exc), "code": "internal_error"},
                        {},
                    )
                body_blob = (
                    payload
                    if isinstance(payload, bytes)
                    else json.dumps(payload).encode("utf-8")
                )
                self._write_response(writer, code, body_blob, keep_alive, extra)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            _BadRequestLine,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None  # clean EOF between requests
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].upper().startswith("HTTP/"):
            raise _BadRequestLine(line)
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequestLine(b"too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            raise _ApiError(400, "invalid content-length header", "bad_request")
        if length > MAX_BODY_BYTES:
            # Read nothing further; answer 413 and drop the connection.
            raise _ApiError(413, "request body too large", "body_too_large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        body: bytes,
        keep_alive: bool,
        extra_headers: dict[str, str],
    ) -> None:
        reason = _REASONS.get(code, "Unknown")
        lines = [
            f"HTTP/1.1 {code} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)

    # -- routing -----------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes, client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        handlers: dict[tuple[str, str], Callable[..., Awaitable[Any]]] = {
            ("POST", "/ask"): self._handle_ask,
            ("POST", "/ask_many"): self._handle_ask_many,
            ("POST", "/resolve"): self._handle_resolve,
            ("POST", "/sql"): self._handle_sql,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/healthz"): self._handle_healthz,
        }
        handler = handlers.get((method, path))
        if handler is None:
            known_methods = [m for (m, p) in handlers if p == path]
            if known_methods:
                error = _ApiError(
                    405,
                    f"{path} only accepts {', '.join(known_methods)}",
                    "method_not_allowed",
                )
                error.headers["Allow"] = ", ".join(known_methods)
                raise error
            raise _ApiError(404, f"no such endpoint: {path}", "unknown_endpoint")
        if method == "POST":
            return await handler(_parse_json_body(body), client_ip)
        return await handler(client_ip)

    # -- handlers ----------------------------------------------------------

    async def _handle_ask(
        self, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        question = _required_str(body, "question")
        sid = _optional_str(body, "session")
        clarify = bool(body.get("clarify", False))
        client = _rate_key(self.service, sid, client_ip)
        cache_key = None
        if sid is None:
            # Captured *before* the ask: a write that lands mid-ask bumps
            # the version stamps, and storing this answer under the
            # post-write key would serve it stale forever.
            cache_key = self._ask_cache_key(question, clarify)
            cached = self._cache.get(cache_key)
            if cached is not None:
                retry_after = self.service.check_limit(client)
                if retry_after:
                    limited = Response.rate_limited(question, retry_after)
                    return 429, limited.to_dict(), _retry_headers(limited)
                self.stats["cache_hits"] += 1
                return cached[0], cached[1], {}
        else:
            self.service.ensure_session(sid)
        response = await self.service.ask_async(
            question, session=sid, clarify=clarify, client=client
        )
        code = response_http_code(response)
        payload = response.to_dict()
        if sid is not None:
            payload["session"] = sid
        if (
            cache_key is not None
            and code != 429
            and response.clarification_id is None
        ):
            # Stateless outcome: cache — and answer with — the serialized
            # bytes, so the hot path serializes exactly once.
            blob = json.dumps(payload).encode("utf-8")
            self._cache.put(cache_key, (code, blob))
            self.stats["responses_cached"] += 1
            return code, blob, _retry_headers(response)
        return code, payload, _retry_headers(response)

    def _ask_cache_key(self, question: str, clarify: bool) -> tuple:
        # The data stamp is the identity a snapshot pinned now would
        # carry; the pre-ask capture in _handle_ask means an answer is
        # only ever stored under the version it was computed against.
        return (question, clarify, self.service.data_stamp())

    async def _handle_ask_many(
        self, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        questions = body.get("questions")
        if not isinstance(questions, list) or not all(
            isinstance(q, str) for q in questions
        ):
            raise _ApiError(
                400,
                "'questions' must be a list of strings",
                "bad_field",
            )
        sid = _optional_str(body, "session")
        clarify = bool(body.get("clarify", False))
        client = _rate_key(self.service, sid, client_ip)
        if sid is not None:
            self.service.ensure_session(sid)
        responses = await self.service.ask_many_async(
            questions, session=sid, clarify=clarify, client=client
        )
        payload: dict[str, Any] = {
            "responses": [response.to_dict() for response in responses]
        }
        if sid is not None:
            payload["session"] = sid
        # The batch is charged as a unit, so rate limiting is all-or-nothing:
        # surface it as 429 + Retry-After like a single ask.
        if responses and all(response.is_rate_limited for response in responses):
            return 429, payload, _retry_headers(responses[0])
        return 200, payload, {}

    async def _handle_resolve(
        self, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        clarification_id = _required_str(body, "clarification_id")
        choice = body.get("choice")
        if not isinstance(choice, int) or isinstance(choice, bool):
            raise _ApiError(400, "'choice' must be an integer", "bad_field")
        try:
            response = await self.service.resolve_async(
                clarification_id, choice, client=client_ip
            )
        except ClarificationError as exc:
            if self.service.has_clarification(clarification_id):
                # A bad index on a live clarification: the park survives
                # and the client should simply pick again — that is a bad
                # field, not a vanished resource.
                raise _ApiError(400, str(exc), "bad_choice") from None
            raise _ApiError(404, str(exc), "unknown_clarification") from None
        return (
            response_http_code(response),
            response.to_dict(),
            _retry_headers(response),
        )

    async def _handle_sql(
        self, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        sql = _required_str(body, "sql")
        try:
            result = await self.service.execute_async(sql)
        except EngineError as exc:
            raise _ApiError(422, str(exc), "engine_error") from None
        return (
            200,
            {
                "columns": list(result.columns),
                "rows": [list(row) for row in result.rows],
            },
            {},
        )

    async def _handle_stats(self, client_ip: str) -> tuple[int, Any, dict[str, str]]:
        return (
            200,
            {"service": self.service.stats, "http": dict(self.stats)},
            {},
        )

    async def _handle_healthz(self, client_ip: str) -> tuple[int, Any, dict[str, str]]:
        return 200, {"status": "ok"}, {}


class _BadRequestLine(Exception):
    """Unparseable request head: no useful reply address, just hang up."""


def _parse_json_body(body: bytes) -> dict[str, Any]:
    try:
        parsed = json.loads(body or b"null")
    except json.JSONDecodeError as exc:
        raise _ApiError(
            400, f"request body is not valid JSON: {exc}", "malformed_json"
        ) from None
    if not isinstance(parsed, dict):
        raise _ApiError(400, "request body must be a JSON object", "malformed_json")
    return parsed


def _required_str(body: dict[str, Any], field: str) -> str:
    value = body.get(field)
    if not isinstance(value, str) or not value:
        raise _ApiError(400, f"{field!r} must be a non-empty string", "bad_field")
    return value


def _optional_str(body: dict[str, Any], field: str) -> str | None:
    value = body.get(field)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise _ApiError(
            400,
            f"{field!r} must be a non-empty string when given",
            "bad_field",
        )
    return value


# -- embedding helpers (tests, docs, benchmarks) ---------------------------


class ServerHandle:
    """A server running on its own event-loop thread.

    Returned by :func:`serve_in_thread`; ``url`` is ready immediately and
    :meth:`stop` shuts the loop down and joins the thread.
    """

    def __init__(
        self,
        server: NliHttpServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        stop_event: asyncio.Event,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=10)


def serve_in_thread(
    service: NliService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start an :class:`NliHttpServer` on a daemon thread; returns once the
    socket is bound (so ``handle.url`` is immediately usable)."""
    started = threading.Event()
    holder: dict[str, Any] = {}

    def run() -> None:
        async def main() -> None:
            server = NliHttpServer(service, host=host, port=port)
            await server.start()
            stop_event = asyncio.Event()
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = stop_event
            started.set()
            try:
                await stop_event.wait()
            finally:
                await server.aclose()

        asyncio.run(main())

    thread = threading.Thread(target=run, name="nli-http", daemon=True)
    thread.start()
    if not started.wait(timeout=10):  # pragma: no cover - startup failure
        raise RuntimeError("HTTP server failed to start within 10s")
    return ServerHandle(holder["server"], holder["loop"], thread, holder["stop"])
