"""The asyncio HTTP front end: ``Response.to_dict()`` over the wire.

Endpoints (all JSON; see ``docs/http.md`` for shapes and curl examples;
``docs/streaming.md`` for the subscription stream):

========  =====================  ===========================================
method    path                   body / behaviour
========  =====================  ===========================================
POST      /v1/ask                ``{"question", "session"?, "clarify"?,
                                 "domain"?, "limit"?, "cursor"?}`` -> envelope
POST      /v1/ask_many           ``{"questions": [...], ...}`` -> ``{"responses"}``
POST      /v1/resolve            ``{"clarification_id", "choice"}`` -> envelope
POST      /v1/sql                ``{"sql", "limit"?, "cursor"?}``
                                 -> ``{"columns", "rows", ...}``
GET       /v1/subscribe?...      standing subscription: a chunked stream of
                                 JSON answer frames (v1-only, no bare alias)
GET       /v1/stats              service + http counters
GET       /v1/healthz            liveness probe
any       /v1/d/<domain>/<ep>    the same endpoints, scoped to one domain
========  =====================  ===========================================

The API is mounted under the ``/v1`` version prefix; the bare legacy
paths (``/ask``, ``/d/geography/ask``, …) remain as aliases that answer
identically **plus** a ``Deprecation: true`` header, so pre-v1 clients
keep working while announcing their migration path.  The streaming
endpoint is v1-only.

Status mapping follows the CLI's 0/2/3 exit-code convention:
``ANSWERED`` -> 200, ``AMBIGUOUS`` / ``NEEDS_CLARIFICATION`` -> 409 (the
request needs another round trip to complete), ``FAILED`` -> 422, and a
rate-limited envelope -> 429 with a ``Retry-After`` header.  Transport
problems use transport codes: malformed JSON or a missing field is 400,
an unknown clarification id (or domain) 404, an unknown path 404, a
wrong method 405, an oversized body 413, a degraded cluster 503 — all
with one uniform body shape::

    {"error": {"code": "...", "message": "...", "retry_after_s": null}}

(``retry_after_s`` is a number on 429/503 responses that also carry a
``Retry-After`` header).  Envelope outcomes (409/422/429 *asks*) keep
the full ``Response.to_dict()`` body — they are answers, not transport
failures.

**Pagination.**  ``/sql`` and ``/ask`` accept ``limit`` (page size) and
``cursor`` (the ``next_cursor`` token from the previous page).  The
token is stable: it encodes the page offset plus a digest of the query
identity, so replaying it against a different statement is a 400 rather
than silently wrong rows.  Without ``limit``/``cursor`` the body is
byte-identical to the unpaginated behaviour.

**Backends.**  The server is split from what answers it: every handler
talks to a *backend* — either :class:`ServiceBackend` (one or more
in-process :class:`~repro.service.service.NliService`, the classic
single-process mode) or the cluster router
(:class:`repro.cluster.router.ClusterRouter`, a pool of forked worker
processes).  The protocol is envelope *dicts* (already serializable), so
the HTTP layer cannot tell local from routed.  A backend raises
:class:`ApiError` for transport-shaped failures and exposes::

    default_domain                       -> str
    domains()                            -> list[str]
    has_session(domain, sid)             -> bool        (sync, rate keys)
    check_limit(domain, key, tokens=1)   -> float       (sync, cache hits)
    data_stamp(domain)                   -> hashable    (sync, cache keys)
    await ask(domain, q, sid, clarify, client)        -> envelope dict
    await ask_many(domain, qs, sid, clarify, client)  -> [envelope, ...]
    await resolve(domain, clar_id, choice, client)    -> envelope dict
    await execute(domain, sql)           -> {"columns", "rows"}
    await subscribe(domain, q, sid, client, queue_frames) -> stream
    await stats(domain | None)           -> dict (server adds "http")
    await healthz()                      -> (code, payload, headers)
    await aclose()

A *stream* (returned by ``subscribe``) exposes ``id`` / ``question`` /
``tables`` attributes plus ``await next_frame(timeout)`` (``None`` on
timeout — the heartbeat tick) and ``await aclose()``.

**Multi-domain.**  One server hosts many databases: route by path
prefix (``/d/geography/ask``) or by a ``"domain"`` body field; bare
paths hit the default domain, so the single-domain API is unchanged.
Layered on top is an optional **per-domain rate limiter**: a token
bucket per domain, charged *before* the per-client bucket and refunded
if the per-client check rejects — all-or-nothing, so one hot domain
cannot starve the rest and a denied request consumes no budget anywhere.

Concurrency: the event loop only parses requests and writes responses;
every service call runs on the backend's worker pool (threads
in-process, forked processes in cluster mode), so concurrent HTTP
askers become concurrent MVCC snapshot readers — each pinned to a
consistent database version, never queued behind a DML writer — while
the loop stays responsive (see ``docs/concurrency.md``).

One server-side optimization rides here: a **response cache** for
session-less ``/ask`` requests.  Those are pure reads — no dialogue
state, no parked interpretations — so the serialized envelope bytes are
cached keyed by (domain, question, clarify, ``data_stamp(domain)``) and
served without touching the pipeline.  Anything stateful (sessions,
AMBIGUOUS responses, rate-limited envelopes) bypasses the cache, and a
DML commit anywhere moves the stamp, so a cached answer can never be
served across data versions.  The rate limiters are still charged on
cache hits, so cached traffic cannot dodge their budget.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import hashlib
import json
import math
import threading
import urllib.parse
from typing import Any, Awaitable, Callable

from repro.errors import ClarificationError, EngineError, ReproError
from repro.service.ratelimit import RateLimiter
from repro.service.response import Response, Status
from repro.service.service import NliService
from repro.service.subscriptions import (
    DEFAULT_QUEUE_FRAMES,
    MAX_QUEUE_FRAMES,
    Subscription,
    SubscriptionFailed,
)
from repro.sqlengine.plancache import LruCache

__all__ = [
    "ApiError",
    "NliHttpServer",
    "ServerHandle",
    "ServiceBackend",
    "envelope_http_code",
    "response_http_code",
    "serve_in_thread",
]

#: ``Response.status`` -> HTTP code (the CLI's 0/2/3 convention).
STATUS_HTTP = {
    Status.ANSWERED: 200,
    Status.AMBIGUOUS: 409,
    Status.NEEDS_CLARIFICATION: 409,
    Status.FAILED: 422,
}

MAX_BODY_BYTES = 1 << 20
MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def response_http_code(response: Response) -> int:
    """Map one envelope to its HTTP status code."""
    if response.is_rate_limited:
        return 429
    return STATUS_HTTP[response.status]


def envelope_http_code(payload: dict[str, Any]) -> int:
    """The same mapping for an already-serialized envelope dict (the
    backend protocol ships dicts, not Response objects)."""
    if payload.get("retry_after_s") is not None:
        return 429
    return STATUS_HTTP[Status(payload["status"])]


class ApiError(Exception):
    """A transport-level problem, rendered as the uniform error envelope
    ``{"error": {"code", "message", "retry_after_s"}}`` (the same shape
    for every 4xx/5xx transport failure)."""

    def __init__(
        self,
        http_code: int,
        message: str,
        code: str = "bad_request",
        retry_after_s: float | None = None,
    ):
        super().__init__(message)
        self.http_code = http_code
        self.headers: dict[str, str] = {}
        self.payload = _error_envelope(code, message)
        if retry_after_s is not None:
            self.set_retry_after(retry_after_s)

    def set_retry_after(self, seconds: float) -> None:
        """Record the backoff in both the body and the header."""
        seconds = max(seconds, 0.0)
        self.payload["error"]["retry_after_s"] = seconds
        self.headers["Retry-After"] = str(max(1, math.ceil(seconds)))


def _error_envelope(
    code: str, message: str, retry_after_s: float | None = None
) -> dict[str, Any]:
    """The one body shape every transport error uses."""
    return {
        "error": {
            "code": code,
            "message": message,
            "retry_after_s": retry_after_s,
        }
    }


def _rate_key(backend: Any, domain: str, sid: str | None, client_ip: str) -> str:
    """Rate-limit key: the session id once it exists, else the client
    address.  Session *creation* is charged to the address, so a client
    cannot mint a fresh bucket (and a server-side Session) per request
    just by sending a new session id every time."""
    if sid is not None and backend.has_session(domain, sid):
        return sid
    return client_ip


def _payload_retry_headers(payload: dict[str, Any]) -> dict[str, str]:
    retry = payload.get("retry_after_s")
    if retry is None:
        return {}
    return {"Retry-After": str(max(1, math.ceil(retry)))}


class ServiceBackend:
    """One or more in-process services behind the backend protocol.

    The single-process answer machine: each domain is a fully-owned
    :class:`~repro.service.service.NliService` (its own storage, session
    log and rate limiter), and every call is a thin adaptation of the
    service's async face to envelope dicts.
    """

    def __init__(
        self,
        services: dict[str, NliService],
        default_domain: str | None = None,
    ) -> None:
        if not services:
            raise ValueError("ServiceBackend needs at least one service")
        self.services = services
        self.default_domain = default_domain or next(iter(services))
        if self.default_domain not in services:
            raise ValueError(f"unknown default domain {self.default_domain!r}")

    def domains(self) -> list[str]:
        return list(self.services)

    def _service(self, domain: str) -> NliService:
        service = self.services.get(domain)
        if service is None:
            raise ApiError(404, f"no such domain: {domain}", "unknown_domain")
        return service

    def has_session(self, domain: str, sid: str) -> bool:
        service = self.services.get(domain)
        return service is not None and service.has_session(sid)

    def check_limit(self, domain: str, key: str, tokens: float = 1.0) -> float:
        return self._service(domain).check_limit(key, tokens)

    def data_stamp(self, domain: str) -> Any:
        return self._service(domain).data_stamp()

    async def ask(
        self,
        domain: str,
        question: str,
        sid: str | None,
        clarify: bool,
        client: str,
    ) -> dict[str, Any]:
        service = self._service(domain)
        if sid is not None:
            service.ensure_session(sid)
        response = await service.ask_async(
            question, session=sid, clarify=clarify, client=client
        )
        return response.to_dict()

    async def ask_many(
        self,
        domain: str,
        questions: list[str],
        sid: str | None,
        clarify: bool,
        client: str,
    ) -> list[dict[str, Any]]:
        service = self._service(domain)
        if sid is not None:
            service.ensure_session(sid)
        responses = await service.ask_many_async(
            questions, session=sid, clarify=clarify, client=client
        )
        return [response.to_dict() for response in responses]

    async def resolve(
        self, domain: str, clarification_id: str, choice: int, client: str
    ) -> dict[str, Any]:
        service = self._service(domain)
        try:
            response = await service.resolve_async(
                clarification_id, choice, client=client
            )
        except ClarificationError as exc:
            if service.has_clarification(clarification_id):
                # A bad index on a live clarification: the park survives
                # and the client should simply pick again — that is a bad
                # field, not a vanished resource.
                raise ApiError(400, str(exc), "bad_choice") from None
            raise ApiError(404, str(exc), "unknown_clarification") from None
        return response.to_dict()

    async def execute(self, domain: str, sql: str) -> dict[str, Any]:
        service = self._service(domain)
        try:
            result = await service.execute_async(sql)
        except EngineError as exc:
            raise ApiError(422, str(exc), "engine_error") from None
        return {
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
        }

    async def subscribe(
        self,
        domain: str,
        question: str,
        sid: str | None,
        client: str,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
    ) -> "_LocalSubscriptionStream":
        service = self._service(domain)
        if sid is not None:
            service.ensure_session(sid)
        loop = asyncio.get_running_loop()
        try:
            subscription = await loop.run_in_executor(
                None,
                lambda: service.subscribe(question, sid, queue_frames=queue_frames),
            )
        except SubscriptionFailed as exc:
            raise ApiError(
                envelope_http_code(exc.response.to_dict()),
                str(exc),
                "subscription_failed",
            ) from None
        return _LocalSubscriptionStream(service, subscription)

    async def stats(self, domain: str | None = None) -> dict[str, Any]:
        if domain is not None:
            return {"service": self._service(domain).stats}
        payload: dict[str, Any] = {
            "service": self.services[self.default_domain].stats
        }
        if len(self.services) > 1:
            payload["domains"] = {
                name: service.stats for name, service in self.services.items()
            }
        return payload

    async def healthz(self) -> tuple[int, dict[str, Any], dict[str, str]]:
        return 200, {"status": "ok"}, {}

    async def aclose(self) -> None:
        """Nothing to stop: service lifecycle belongs to whoever built
        the services (the CLI closes them after the loop exits)."""


class _LocalSubscriptionStream:
    """Async face over one in-process :class:`Subscription`.

    ``next_frame`` parks the blocking queue wait on the loop's default
    thread pool, so the event loop keeps serving other clients while a
    subscription idles between commits.
    """

    def __init__(self, service: NliService, subscription: Subscription) -> None:
        self._service = service
        self._subscription = subscription
        self.id = subscription.id
        self.question = subscription.question
        self.tables = sorted(subscription.tables)
        self.queue_frames = subscription.queue_frames

    async def next_frame(self, timeout: float) -> dict[str, Any] | None:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._subscription.next_frame, timeout)

    async def aclose(self) -> None:
        self._service.unsubscribe(self.id)


class _StreamPlan:
    """What ``/v1/subscribe`` hands back to the connection loop: the
    backend stream plus the client's streaming knobs."""

    def __init__(self, stream: Any, heartbeat_s: float, max_frames: int | None) -> None:
        self.stream = stream
        self.heartbeat_s = heartbeat_s
        self.max_frames = max_frames


class NliHttpServer:
    """One backend (local services or a worker cluster) behind a socket."""

    def __init__(
        self,
        service: NliService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
        *,
        backend: Any | None = None,
        domain_qps: float | None = None,
        domain_burst: int = 8,
    ) -> None:
        if backend is None:
            if service is None:
                raise ValueError("pass a service or a backend")
            backend = ServiceBackend({"default": service})
        self.backend = backend
        #: Convenience handle for embedders/tests: the default domain's
        #: in-process service, when there is one (None in cluster mode).
        self.service = service or getattr(backend, "services", {}).get(
            backend.default_domain
        )
        self.host = host
        self.port = port  # 0 = ephemeral; real port filled in by start()
        self._server: asyncio.AbstractServer | None = None
        #: The per-domain layer of the rate limiter: keyed by domain
        #: name, charged before the per-client bucket, refunded when the
        #: per-client bucket rejects (all-or-nothing).
        self._domain_limiter = (
            RateLimiter(domain_qps, domain_burst) if domain_qps is not None else None
        )
        #: (domain, question, clarify, data stamp) -> serialized
        #: (http code, body bytes) for session-less asks.
        self._cache: LruCache = LruCache(capacity=cache_size)
        self.stats = {
            "requests": 0,
            "responses_cached": 0,
            "cache_hits": 0,
            "transport_errors": 0,
            "internal_errors": 0,
            "subscriptions_streamed": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client_ip = peer[0] if isinstance(peer, tuple) else "local"
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ValueError:
                    # StreamReader.readline raises ValueError when a line
                    # (request line or header) exceeds its 64 KiB limit.
                    request = None
                    exc = ApiError(
                        400, "request head too large or malformed", "bad_request"
                    )
                except ApiError as error:
                    request = None
                    exc = error
                else:
                    exc = None
                if exc is not None:
                    # Framing problem: answer it, then hang up — the stream
                    # position is unreliable after a bad head.
                    self.stats["transport_errors"] += 1
                    blob = json.dumps(exc.payload).encode("utf-8")
                    self._write_response(
                        writer, exc.http_code, blob, False, exc.headers
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                self.stats["requests"] += 1
                try:
                    routed = await self._route(method, path, body, client_ip)
                    if isinstance(routed, _StreamPlan):
                        # The subscription stream owns the connection from
                        # here: chunked frames until either side closes.
                        await self._stream_subscription(writer, routed)
                        break
                    code, payload, extra = routed
                except ApiError as exc:
                    self.stats["transport_errors"] += 1
                    code, payload, extra = exc.http_code, exc.payload, exc.headers
                except ReproError as exc:
                    # Library errors that escaped a handler's own mapping.
                    self.stats["internal_errors"] += 1
                    code, payload, extra = (
                        422,
                        _error_envelope(type(exc).__name__, str(exc)),
                        {},
                    )
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    self.stats["internal_errors"] += 1
                    code, payload, extra = (
                        500,
                        _error_envelope("internal_error", str(exc)),
                        {},
                    )
                body_blob = (
                    payload
                    if isinstance(payload, bytes)
                    else json.dumps(payload).encode("utf-8")
                )
                self._write_response(writer, code, body_blob, keep_alive, extra)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            _BadRequestLine,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None  # clean EOF between requests
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].upper().startswith("HTTP/"):
            raise _BadRequestLine(line)
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequestLine(b"too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            raise ApiError(400, "invalid content-length header", "bad_request")
        if length > MAX_BODY_BYTES:
            # Read nothing further; answer 413 and drop the connection.
            raise ApiError(413, "request body too large", "body_too_large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        body: bytes,
        keep_alive: bool,
        extra_headers: dict[str, str],
    ) -> None:
        reason = _REASONS.get(code, "Unknown")
        lines = [
            f"HTTP/1.1 {code} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)

    # -- routing -----------------------------------------------------------

    def _split_domain(self, path: str) -> tuple[str | None, str]:
        """``/d/<domain>/<endpoint>`` -> (domain, /endpoint); bare paths
        pass through with no domain (resolved later from the body or the
        default)."""
        if not path.startswith("/d/"):
            return None, path
        rest = path[3:]
        domain, sep, endpoint = rest.partition("/")
        if not domain or not sep or not endpoint:
            raise ApiError(
                404, f"domain paths look like /d/<domain>/ask: {path}", "bad_path"
            )
        if domain not in self.backend.domains():
            raise ApiError(404, f"no such domain: {domain}", "unknown_domain")
        return domain, "/" + endpoint

    def _resolve_domain(
        self, path_domain: str | None, body: dict[str, Any]
    ) -> str:
        body_domain = _optional_str(body, "domain")
        if body_domain is not None and body_domain not in self.backend.domains():
            raise ApiError(
                404, f"no such domain: {body_domain}", "unknown_domain"
            )
        if path_domain is not None:
            if body_domain is not None and body_domain != path_domain:
                raise ApiError(
                    400,
                    f"path says domain {path_domain!r} but body says "
                    f"{body_domain!r}",
                    "bad_field",
                )
            return path_domain
        return body_domain or self.backend.default_domain

    async def _route(
        self, method: str, path: str, body: bytes, client_ip: str
    ) -> tuple[int, Any, dict[str, str]] | _StreamPlan:
        path, _, query_string = path.partition("?")
        versioned = path == "/v1" or path.startswith("/v1/")
        if versioned:
            path = path[3:] or "/"
        domain, endpoint = self._split_domain(path)
        if endpoint == "/subscribe":
            if method != "GET":
                error = ApiError(
                    405, "/subscribe only accepts GET", "method_not_allowed"
                )
                error.headers["Allow"] = "GET"
                raise error
            if not versioned:
                # Streaming endpoints are v1-only: no legacy alias.
                raise ApiError(
                    404,
                    "subscriptions are v1-only: GET /v1/subscribe?question=...",
                    "unknown_endpoint",
                )
            params = {
                key: values[-1]
                for key, values in urllib.parse.parse_qs(query_string).items()
            }
            return await self._handle_subscribe(domain, params, client_ip)
        handlers: dict[tuple[str, str], Callable[..., Awaitable[Any]]] = {
            ("POST", "/ask"): self._handle_ask,
            ("POST", "/ask_many"): self._handle_ask_many,
            ("POST", "/resolve"): self._handle_resolve,
            ("POST", "/sql"): self._handle_sql,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/healthz"): self._handle_healthz,
        }
        handler = handlers.get((method, endpoint))
        if handler is None:
            known_methods = [m for (m, p) in handlers if p == endpoint]
            if known_methods:
                error = ApiError(
                    405,
                    f"{endpoint} only accepts {', '.join(known_methods)}",
                    "method_not_allowed",
                )
                error.headers["Allow"] = ", ".join(known_methods)
                raise error
            raise ApiError(404, f"no such endpoint: {path}", "unknown_endpoint")
        if method == "POST":
            parsed = _parse_json_body(body)
            result = await handler(
                self._resolve_domain(domain, parsed), parsed, client_ip
            )
        else:
            result = await handler(domain, client_ip)
        if not versioned:
            # Legacy (unversioned) alias: same answer, plus the signpost.
            code, payload, extra = result
            result = code, payload, {**extra, "Deprecation": "true"}
        return result

    # -- the layered rate limiter ------------------------------------------

    def _charge_domain(self, domain: str, tokens: float = 1.0) -> float:
        """Charge the per-domain bucket; 0.0 when within budget."""
        if self._domain_limiter is None:
            return 0.0
        return self._domain_limiter.check(domain, tokens)

    def _refund_domain(self, domain: str, tokens: float = 1.0) -> None:
        """The per-client layer rejected after the domain layer charged:
        give the domain its tokens back, so a denied request consumes no
        budget anywhere (all-or-nothing across the layers)."""
        if self._domain_limiter is not None:
            self._domain_limiter.refund(domain, tokens)

    # -- handlers ----------------------------------------------------------

    async def _handle_ask(
        self, domain: str, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        question = _required_str(body, "question")
        sid = _optional_str(body, "session")
        clarify = bool(body.get("clarify", False))
        limit, cursor = _page_params(body)
        client = _rate_key(self.backend, domain, sid, client_ip)
        domain_retry = self._charge_domain(domain)
        if domain_retry:
            limited = Response.rate_limited(question, domain_retry)
            return 429, limited.to_dict(), _payload_retry_headers(limited.to_dict())
        cache_key = None
        if sid is None:
            # Captured *before* the ask: a write that lands mid-ask bumps
            # the version stamps, and storing this answer under the
            # post-write key would serve it stale forever.
            cache_key = self._ask_cache_key(domain, question, clarify)
            cached = self._cache.get(cache_key)
            if cached is not None:
                retry_after = self.backend.check_limit(domain, client)
                if retry_after:
                    self._refund_domain(domain)
                    limited = Response.rate_limited(question, retry_after)
                    payload = limited.to_dict()
                    return 429, payload, _payload_retry_headers(payload)
                self.stats["cache_hits"] += 1
                if limit is None and cursor is None:
                    return cached[0], cached[1], {}
                # Page the cached envelope: decode a private copy — the
                # cache always holds the full, unpaginated body.
                payload = self._page_envelope(
                    json.loads(cached[1]), domain, question, limit, cursor
                )
                return cached[0], payload, {}
        payload = await self.backend.ask(domain, question, sid, clarify, client)
        code = envelope_http_code(payload)
        if code == 429:
            self._refund_domain(domain)
        if sid is not None:
            payload["session"] = sid
        if (
            cache_key is not None
            and code != 429
            and payload.get("clarification_id") is None
        ):
            # Stateless outcome: cache — and answer with — the serialized
            # bytes, so the hot path serializes exactly once.
            blob = json.dumps(payload).encode("utf-8")
            self._cache.put(cache_key, (code, blob))
            self.stats["responses_cached"] += 1
            if limit is None and cursor is None:
                return code, blob, _payload_retry_headers(payload)
            payload = self._page_envelope(
                json.loads(blob), domain, question, limit, cursor
            )
            return code, payload, _payload_retry_headers(payload)
        if limit is not None or cursor is not None:
            payload = self._page_envelope(payload, domain, question, limit, cursor)
        return code, payload, _payload_retry_headers(payload)

    def _page_envelope(
        self,
        payload: dict[str, Any],
        domain: str,
        question: str,
        limit: int | None,
        cursor: str | None,
    ) -> dict[str, Any]:
        """Apply limit/cursor to an envelope's answer rows (no-op when the
        outcome carries no answer — failures page nothing)."""
        answer = payload.get("answer")
        if not answer:
            return payload
        page, next_cursor, total = _paginate(
            answer["rows"], limit, cursor, f"ask\x00{domain}\x00{question}"
        )
        payload["answer"] = {**answer, "rows": page}
        payload["next_cursor"] = next_cursor
        payload["total_rows"] = total
        return payload

    def _ask_cache_key(self, domain: str, question: str, clarify: bool) -> tuple:
        # The data stamp is the identity a snapshot pinned now would
        # carry; the pre-ask capture in _handle_ask means an answer is
        # only ever stored under the version it was computed against.
        return (domain, question, clarify, self.backend.data_stamp(domain))

    async def _handle_ask_many(
        self, domain: str, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        questions = body.get("questions")
        if not isinstance(questions, list) or not all(
            isinstance(q, str) for q in questions
        ):
            raise ApiError(
                400,
                "'questions' must be a list of strings",
                "bad_field",
            )
        sid = _optional_str(body, "session")
        clarify = bool(body.get("clarify", False))
        client = _rate_key(self.backend, domain, sid, client_ip)
        tokens = float(len(questions)) or 1.0
        domain_retry = self._charge_domain(domain, tokens)
        if domain_retry:
            limited = Response.rate_limited("batch", domain_retry).to_dict()
            payload = {"responses": [limited for _ in questions]}
            if sid is not None:
                payload["session"] = sid
            return 429, payload, _payload_retry_headers(limited)
        responses = await self.backend.ask_many(
            domain, questions, sid, clarify, client
        )
        payload = {"responses": responses}
        if sid is not None:
            payload["session"] = sid
        # The batch is charged as a unit, so rate limiting is all-or-nothing:
        # surface it as 429 + Retry-After like a single ask.
        if responses and all(
            response.get("retry_after_s") is not None for response in responses
        ):
            self._refund_domain(domain, tokens)
            return 429, payload, _payload_retry_headers(responses[0])
        return 200, payload, {}

    async def _handle_resolve(
        self, domain: str, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        clarification_id = _required_str(body, "clarification_id")
        choice = body.get("choice")
        if not isinstance(choice, int) or isinstance(choice, bool):
            raise ApiError(400, "'choice' must be an integer", "bad_field")
        domain_retry = self._charge_domain(domain)
        if domain_retry:
            limited = Response.rate_limited(clarification_id, domain_retry).to_dict()
            return 429, limited, _payload_retry_headers(limited)
        payload = await self.backend.resolve(
            domain, clarification_id, choice, client_ip
        )
        code = envelope_http_code(payload)
        if code == 429:
            self._refund_domain(domain)
        return code, payload, _payload_retry_headers(payload)

    async def _handle_sql(
        self, domain: str, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        sql = _required_str(body, "sql")
        limit, cursor = _page_params(body)
        domain_retry = self._charge_domain(domain)
        if domain_retry:
            raise ApiError(
                429,
                "domain rate limit exceeded",
                "rate_limited",
                retry_after_s=domain_retry,
            )
        payload = await self.backend.execute(domain, sql)
        if limit is None and cursor is None:
            return 200, payload, {}
        page, next_cursor, total = _paginate(
            payload["rows"], limit, cursor, f"sql\x00{domain}\x00{sql}"
        )
        payload["rows"] = page
        payload["next_cursor"] = next_cursor
        payload["total_rows"] = total
        return 200, payload, {}

    async def _handle_subscribe(
        self, domain: str | None, params: dict[str, str], client_ip: str
    ) -> _StreamPlan:
        """``GET /v1/subscribe?question=...`` — validate, register, and
        hand the connection loop a stream plan.

        Query parameters: ``question`` (required), ``session``,
        ``domain``, ``queue`` (frame-queue bound, drop-oldest beyond it),
        ``heartbeat`` (seconds between keep-alive frames while idle) and
        ``frames`` (close the stream after N answer/error frames — handy
        for scripted consumers).
        """
        question = params.get("question")
        if not question:
            raise ApiError(400, "'question' query parameter is required", "bad_field")
        sid = params.get("session") or None
        domain = self._resolve_domain(domain, {"domain": params.get("domain")})
        queue_frames = _int_param(
            params, "queue", DEFAULT_QUEUE_FRAMES, 1, MAX_QUEUE_FRAMES
        )
        heartbeat_s = _float_param(params, "heartbeat", 10.0, 0.05, 3600.0)
        max_frames = _int_param(params, "frames", 0, 0, 1 << 30) or None
        client = _rate_key(self.backend, domain, sid, client_ip)
        domain_retry = self._charge_domain(domain)
        if domain_retry:
            raise ApiError(
                429,
                "domain rate limit exceeded",
                "rate_limited",
                retry_after_s=domain_retry,
            )
        retry_after = self.backend.check_limit(domain, client)
        if retry_after:
            self._refund_domain(domain)
            raise ApiError(
                429, "rate limit exceeded", "rate_limited", retry_after_s=retry_after
            )
        stream = await self.backend.subscribe(
            domain, question, sid, client, queue_frames
        )
        return _StreamPlan(stream, heartbeat_s, max_frames)

    async def _stream_subscription(
        self, writer: asyncio.StreamWriter, plan: _StreamPlan
    ) -> None:
        """Write the subscription as a chunked-transfer NDJSON stream.

        One JSON object per chunk: a ``subscribed`` hello first, then
        ``answer`` / ``error`` frames as commits touch the subscribed
        tables, ``heartbeat`` frames while idle, and a final ``closed``
        frame (followed by the terminating chunk) when the subscription
        ends server-side.  A client disconnect tears the subscription
        down (the ``finally`` unsubscribes), so an abandoned stream does
        not keep re-evaluating forever.
        """
        self.stats["subscriptions_streamed"] += 1
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "Cache-Control: no-store\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head)
            self._write_chunk(
                writer,
                {
                    "type": "subscribed",
                    "subscription": plan.stream.id,
                    "question": plan.stream.question,
                    "tables": list(plan.stream.tables),
                    "queue_frames": plan.stream.queue_frames,
                    "heartbeat_s": plan.heartbeat_s,
                },
            )
            await writer.drain()
            sent = 0
            while True:
                frame = await plan.stream.next_frame(plan.heartbeat_s)
                if frame is None:
                    frame = {
                        "type": "heartbeat",
                        "subscription": plan.stream.id,
                    }
                self._write_chunk(writer, frame)
                await writer.drain()
                if frame.get("type") == "closed":
                    break
                if frame.get("type") in ("answer", "error"):
                    sent += 1
                    if plan.max_frames is not None and sent >= plan.max_frames:
                        break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; cleanup below
        finally:
            await plan.stream.aclose()

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, frame: dict[str, Any]) -> None:
        data = json.dumps(frame).encode("utf-8") + b"\n"
        writer.write(f"{len(data):X}\r\n".encode("latin-1") + data + b"\r\n")

    async def _handle_stats(
        self, domain: str | None, client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        payload = await self.backend.stats(domain)
        payload["http"] = dict(self.stats)
        return 200, payload, {}

    async def _handle_healthz(
        self, domain: str | None, client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        return await self.backend.healthz()


class _BadRequestLine(Exception):
    """Unparseable request head: no useful reply address, just hang up."""


# -- pagination -------------------------------------------------------------


def _page_params(body: dict[str, Any]) -> tuple[int | None, str | None]:
    """Validate the optional ``limit`` / ``cursor`` body fields."""
    limit = body.get("limit")
    if limit is not None and (
        not isinstance(limit, int) or isinstance(limit, bool) or limit < 1
    ):
        raise ApiError(400, "'limit' must be a positive integer", "bad_field")
    cursor = body.get("cursor")
    if cursor is not None and (not isinstance(cursor, str) or not cursor):
        raise ApiError(
            400, "'cursor' must be a non-empty string when given", "bad_field"
        )
    return limit, cursor


def _identity_digest(identity: str) -> str:
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]


def _encode_cursor(offset: int, limit: int, identity: str) -> str:
    token = json.dumps(
        {"v": 1, "o": offset, "l": limit, "k": _identity_digest(identity)},
        separators=(",", ":"),
    )
    return base64.urlsafe_b64encode(token.encode("ascii")).decode("ascii")


def _decode_cursor(cursor: str, identity: str) -> tuple[int, int]:
    """Offset + page size from a cursor token; 400 on garbage or a token
    minted for a different statement (the identity digest mismatch)."""
    try:
        raw = base64.urlsafe_b64decode(cursor.encode("ascii"))
        data = json.loads(raw)
        offset, limit, key = data["o"], data["l"], data["k"]
        if not isinstance(offset, int) or not isinstance(limit, int):
            raise ValueError("bad cursor fields")
    except (
        ValueError,
        KeyError,
        TypeError,
        binascii.Error,
        UnicodeDecodeError,
    ):
        raise ApiError(400, "malformed cursor token", "bad_cursor") from None
    if key != _identity_digest(identity) or offset < 0 or limit < 1:
        raise ApiError(
            400,
            "cursor does not belong to this query",
            "bad_cursor",
        )
    return offset, limit


def _paginate(
    rows: list[Any], limit: int | None, cursor: str | None, identity: str
) -> tuple[list[Any], str | None, int]:
    """One page of ``rows``: (page, next_cursor, total row count).

    The cursor token remembers the page size, so follow-up requests may
    send just the cursor; an explicit ``limit`` on a follow-up overrides
    the remembered size from that page on.
    """
    offset = 0
    if cursor is not None:
        offset, cursor_limit = _decode_cursor(cursor, identity)
        if limit is None:
            limit = cursor_limit
    assert limit is not None  # _page_params guarantees one of the two
    page = rows[offset : offset + limit]
    next_offset = offset + limit
    next_cursor = (
        _encode_cursor(next_offset, limit, identity)
        if next_offset < len(rows)
        else None
    )
    return page, next_cursor, len(rows)


# -- query-string parameter validation --------------------------------------


def _int_param(
    params: dict[str, str], name: str, default: int, lo: int, hi: int
) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ApiError(400, f"{name!r} must be an integer", "bad_field") from None
    if not lo <= value <= hi:
        raise ApiError(400, f"{name!r} must be between {lo} and {hi}", "bad_field")
    return value


def _float_param(
    params: dict[str, str], name: str, default: float, lo: float, hi: float
) -> float:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ApiError(400, f"{name!r} must be a number", "bad_field") from None
    if not lo <= value <= hi or value != value:
        raise ApiError(400, f"{name!r} must be between {lo} and {hi}", "bad_field")
    return value


def _parse_json_body(body: bytes) -> dict[str, Any]:
    try:
        parsed = json.loads(body or b"null")
    except json.JSONDecodeError as exc:
        raise ApiError(
            400, f"request body is not valid JSON: {exc}", "malformed_json"
        ) from None
    if not isinstance(parsed, dict):
        raise ApiError(400, "request body must be a JSON object", "malformed_json")
    return parsed


def _required_str(body: dict[str, Any], field: str) -> str:
    value = body.get(field)
    if not isinstance(value, str) or not value:
        raise ApiError(400, f"{field!r} must be a non-empty string", "bad_field")
    return value


def _optional_str(body: dict[str, Any], field: str) -> str | None:
    value = body.get(field)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise ApiError(
            400,
            f"{field!r} must be a non-empty string when given",
            "bad_field",
        )
    return value


# -- embedding helpers (tests, docs, benchmarks) ---------------------------


class ServerHandle:
    """A server running on its own event-loop thread.

    Returned by :func:`serve_in_thread`; ``url`` is ready immediately and
    :meth:`stop` shuts the loop down and joins the thread.
    """

    def __init__(
        self,
        server: NliHttpServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        stop_event: asyncio.Event,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=10)


def serve_in_thread(
    service: NliService | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    backend: Any | None = None,
    domain_qps: float | None = None,
    domain_burst: int = 8,
) -> ServerHandle:
    """Start an :class:`NliHttpServer` on a daemon thread; returns once the
    socket is bound (so ``handle.url`` is immediately usable)."""
    started = threading.Event()
    holder: dict[str, Any] = {}

    def run() -> None:
        async def main() -> None:
            server = NliHttpServer(
                service,
                host=host,
                port=port,
                backend=backend,
                domain_qps=domain_qps,
                domain_burst=domain_burst,
            )
            await server.start()
            stop_event = asyncio.Event()
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = stop_event
            started.set()
            try:
                await stop_event.wait()
            finally:
                await server.aclose()

        asyncio.run(main())

    thread = threading.Thread(target=run, name="nli-http", daemon=True)
    thread.start()
    if not started.wait(timeout=10):  # pragma: no cover - startup failure
        raise RuntimeError("HTTP server failed to start within 10s")
    return ServerHandle(holder["server"], holder["loop"], thread, holder["stop"])
