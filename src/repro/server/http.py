"""The asyncio HTTP front end: ``Response.to_dict()`` over the wire.

Endpoints (all JSON; see ``docs/http.md`` for shapes and curl examples):

========  ==================  ==============================================
method    path                body / behaviour
========  ==================  ==============================================
POST      /ask                ``{"question", "session"?, "clarify"?,
                              "domain"?}`` -> envelope
POST      /ask_many           ``{"questions": [...], ...}`` -> ``{"responses"}``
POST      /resolve            ``{"clarification_id", "choice"}`` -> envelope
POST      /sql                ``{"sql"}`` -> ``{"columns", "rows"}``
GET       /stats              service + http counters
GET       /healthz            liveness probe
any       /d/<domain>/<ep>    the same six endpoints, scoped to one domain
========  ==================  ==============================================

Status mapping follows the CLI's 0/2/3 exit-code convention:
``ANSWERED`` -> 200, ``AMBIGUOUS`` / ``NEEDS_CLARIFICATION`` -> 409 (the
request needs another round trip to complete), ``FAILED`` -> 422, and a
rate-limited envelope -> 429 with a ``Retry-After`` header.  Transport
problems use transport codes: malformed JSON or a missing field is 400,
an unknown clarification id (or domain) 404, an unknown path 404, a
wrong method 405, an oversized body 413, a degraded cluster 503.

**Backends.**  The server is split from what answers it: every handler
talks to a *backend* — either :class:`ServiceBackend` (one or more
in-process :class:`~repro.service.service.NliService`, the classic
single-process mode) or the cluster router
(:class:`repro.cluster.router.ClusterRouter`, a pool of forked worker
processes).  The protocol is envelope *dicts* (already serializable), so
the HTTP layer cannot tell local from routed.  A backend raises
:class:`ApiError` for transport-shaped failures and exposes::

    default_domain                       -> str
    domains()                            -> list[str]
    has_session(domain, sid)             -> bool        (sync, rate keys)
    check_limit(domain, key, tokens=1)   -> float       (sync, cache hits)
    data_stamp(domain)                   -> hashable    (sync, cache keys)
    await ask(domain, q, sid, clarify, client)        -> envelope dict
    await ask_many(domain, qs, sid, clarify, client)  -> [envelope, ...]
    await resolve(domain, clar_id, choice, client)    -> envelope dict
    await execute(domain, sql)           -> {"columns", "rows"}
    await stats(domain | None)           -> dict (server adds "http")
    await healthz()                      -> (code, payload, headers)
    await aclose()

**Multi-domain.**  One server hosts many databases: route by path
prefix (``/d/geography/ask``) or by a ``"domain"`` body field; bare
paths hit the default domain, so the single-domain API is unchanged.
Layered on top is an optional **per-domain rate limiter**: a token
bucket per domain, charged *before* the per-client bucket and refunded
if the per-client check rejects — all-or-nothing, so one hot domain
cannot starve the rest and a denied request consumes no budget anywhere.

Concurrency: the event loop only parses requests and writes responses;
every service call runs on the backend's worker pool (threads
in-process, forked processes in cluster mode), so concurrent HTTP
askers become concurrent MVCC snapshot readers — each pinned to a
consistent database version, never queued behind a DML writer — while
the loop stays responsive (see ``docs/concurrency.md``).

One server-side optimization rides here: a **response cache** for
session-less ``/ask`` requests.  Those are pure reads — no dialogue
state, no parked interpretations — so the serialized envelope bytes are
cached keyed by (domain, question, clarify, ``data_stamp(domain)``) and
served without touching the pipeline.  Anything stateful (sessions,
AMBIGUOUS responses, rate-limited envelopes) bypasses the cache, and a
DML commit anywhere moves the stamp, so a cached answer can never be
served across data versions.  The rate limiters are still charged on
cache hits, so cached traffic cannot dodge their budget.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from typing import Any, Awaitable, Callable

from repro.errors import ClarificationError, EngineError, ReproError
from repro.service.ratelimit import RateLimiter
from repro.service.response import Response, Status
from repro.service.service import NliService
from repro.sqlengine.plancache import LruCache

__all__ = [
    "ApiError",
    "NliHttpServer",
    "ServerHandle",
    "ServiceBackend",
    "envelope_http_code",
    "response_http_code",
    "serve_in_thread",
]

#: ``Response.status`` -> HTTP code (the CLI's 0/2/3 convention).
STATUS_HTTP = {
    Status.ANSWERED: 200,
    Status.AMBIGUOUS: 409,
    Status.NEEDS_CLARIFICATION: 409,
    Status.FAILED: 422,
}

MAX_BODY_BYTES = 1 << 20
MAX_HEADER_LINES = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def response_http_code(response: Response) -> int:
    """Map one envelope to its HTTP status code."""
    if response.is_rate_limited:
        return 429
    return STATUS_HTTP[response.status]


def envelope_http_code(payload: dict[str, Any]) -> int:
    """The same mapping for an already-serialized envelope dict (the
    backend protocol ships dicts, not Response objects)."""
    if payload.get("retry_after_s") is not None:
        return 429
    return STATUS_HTTP[Status(payload["status"])]


class ApiError(Exception):
    """A transport-level problem, rendered as ``{"error", "code"}`` JSON."""

    def __init__(self, http_code: int, message: str, code: str = "bad_request"):
        super().__init__(message)
        self.http_code = http_code
        self.payload = {"error": message, "code": code}
        self.headers: dict[str, str] = {}


def _rate_key(backend: Any, domain: str, sid: str | None, client_ip: str) -> str:
    """Rate-limit key: the session id once it exists, else the client
    address.  Session *creation* is charged to the address, so a client
    cannot mint a fresh bucket (and a server-side Session) per request
    just by sending a new session id every time."""
    if sid is not None and backend.has_session(domain, sid):
        return sid
    return client_ip


def _payload_retry_headers(payload: dict[str, Any]) -> dict[str, str]:
    retry = payload.get("retry_after_s")
    if retry is None:
        return {}
    return {"Retry-After": str(max(1, math.ceil(retry)))}


class ServiceBackend:
    """One or more in-process services behind the backend protocol.

    The single-process answer machine: each domain is a fully-owned
    :class:`~repro.service.service.NliService` (its own storage, session
    log and rate limiter), and every call is a thin adaptation of the
    service's async face to envelope dicts.
    """

    def __init__(
        self,
        services: dict[str, NliService],
        default_domain: str | None = None,
    ) -> None:
        if not services:
            raise ValueError("ServiceBackend needs at least one service")
        self.services = services
        self.default_domain = default_domain or next(iter(services))
        if self.default_domain not in services:
            raise ValueError(f"unknown default domain {self.default_domain!r}")

    def domains(self) -> list[str]:
        return list(self.services)

    def _service(self, domain: str) -> NliService:
        service = self.services.get(domain)
        if service is None:
            raise ApiError(404, f"no such domain: {domain}", "unknown_domain")
        return service

    def has_session(self, domain: str, sid: str) -> bool:
        service = self.services.get(domain)
        return service is not None and service.has_session(sid)

    def check_limit(self, domain: str, key: str, tokens: float = 1.0) -> float:
        return self._service(domain).check_limit(key, tokens)

    def data_stamp(self, domain: str) -> Any:
        return self._service(domain).data_stamp()

    async def ask(
        self,
        domain: str,
        question: str,
        sid: str | None,
        clarify: bool,
        client: str,
    ) -> dict[str, Any]:
        service = self._service(domain)
        if sid is not None:
            service.ensure_session(sid)
        response = await service.ask_async(
            question, session=sid, clarify=clarify, client=client
        )
        return response.to_dict()

    async def ask_many(
        self,
        domain: str,
        questions: list[str],
        sid: str | None,
        clarify: bool,
        client: str,
    ) -> list[dict[str, Any]]:
        service = self._service(domain)
        if sid is not None:
            service.ensure_session(sid)
        responses = await service.ask_many_async(
            questions, session=sid, clarify=clarify, client=client
        )
        return [response.to_dict() for response in responses]

    async def resolve(
        self, domain: str, clarification_id: str, choice: int, client: str
    ) -> dict[str, Any]:
        service = self._service(domain)
        try:
            response = await service.resolve_async(
                clarification_id, choice, client=client
            )
        except ClarificationError as exc:
            if service.has_clarification(clarification_id):
                # A bad index on a live clarification: the park survives
                # and the client should simply pick again — that is a bad
                # field, not a vanished resource.
                raise ApiError(400, str(exc), "bad_choice") from None
            raise ApiError(404, str(exc), "unknown_clarification") from None
        return response.to_dict()

    async def execute(self, domain: str, sql: str) -> dict[str, Any]:
        service = self._service(domain)
        try:
            result = await service.execute_async(sql)
        except EngineError as exc:
            raise ApiError(422, str(exc), "engine_error") from None
        return {
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
        }

    async def stats(self, domain: str | None = None) -> dict[str, Any]:
        if domain is not None:
            return {"service": self._service(domain).stats}
        payload: dict[str, Any] = {
            "service": self.services[self.default_domain].stats
        }
        if len(self.services) > 1:
            payload["domains"] = {
                name: service.stats for name, service in self.services.items()
            }
        return payload

    async def healthz(self) -> tuple[int, dict[str, Any], dict[str, str]]:
        return 200, {"status": "ok"}, {}

    async def aclose(self) -> None:
        """Nothing to stop: service lifecycle belongs to whoever built
        the services (the CLI closes them after the loop exits)."""


class NliHttpServer:
    """One backend (local services or a worker cluster) behind a socket."""

    def __init__(
        self,
        service: NliService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
        *,
        backend: Any | None = None,
        domain_qps: float | None = None,
        domain_burst: int = 8,
    ) -> None:
        if backend is None:
            if service is None:
                raise ValueError("pass a service or a backend")
            backend = ServiceBackend({"default": service})
        self.backend = backend
        #: Convenience handle for embedders/tests: the default domain's
        #: in-process service, when there is one (None in cluster mode).
        self.service = service or getattr(backend, "services", {}).get(
            backend.default_domain
        )
        self.host = host
        self.port = port  # 0 = ephemeral; real port filled in by start()
        self._server: asyncio.AbstractServer | None = None
        #: The per-domain layer of the rate limiter: keyed by domain
        #: name, charged before the per-client bucket, refunded when the
        #: per-client bucket rejects (all-or-nothing).
        self._domain_limiter = (
            RateLimiter(domain_qps, domain_burst) if domain_qps is not None else None
        )
        #: (domain, question, clarify, data stamp) -> serialized
        #: (http code, body bytes) for session-less asks.
        self._cache: LruCache = LruCache(capacity=cache_size)
        self.stats = {
            "requests": 0,
            "responses_cached": 0,
            "cache_hits": 0,
            "transport_errors": 0,
            "internal_errors": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client_ip = peer[0] if isinstance(peer, tuple) else "local"
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ValueError:
                    # StreamReader.readline raises ValueError when a line
                    # (request line or header) exceeds its 64 KiB limit.
                    request = None
                    exc = ApiError(
                        400, "request head too large or malformed", "bad_request"
                    )
                except ApiError as error:
                    request = None
                    exc = error
                else:
                    exc = None
                if exc is not None:
                    # Framing problem: answer it, then hang up — the stream
                    # position is unreliable after a bad head.
                    self.stats["transport_errors"] += 1
                    blob = json.dumps(exc.payload).encode("utf-8")
                    self._write_response(
                        writer, exc.http_code, blob, False, exc.headers
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                self.stats["requests"] += 1
                try:
                    code, payload, extra = await self._route(
                        method, path, body, client_ip
                    )
                except ApiError as exc:
                    self.stats["transport_errors"] += 1
                    code, payload, extra = exc.http_code, exc.payload, exc.headers
                except ReproError as exc:
                    # Library errors that escaped a handler's own mapping.
                    self.stats["internal_errors"] += 1
                    code, payload, extra = (
                        422,
                        {"error": str(exc), "code": type(exc).__name__},
                        {},
                    )
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    self.stats["internal_errors"] += 1
                    code, payload, extra = (
                        500,
                        {"error": str(exc), "code": "internal_error"},
                        {},
                    )
                body_blob = (
                    payload
                    if isinstance(payload, bytes)
                    else json.dumps(payload).encode("utf-8")
                )
                self._write_response(writer, code, body_blob, keep_alive, extra)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            _BadRequestLine,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None  # clean EOF between requests
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].upper().startswith("HTTP/"):
            raise _BadRequestLine(line)
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequestLine(b"too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            raise ApiError(400, "invalid content-length header", "bad_request")
        if length > MAX_BODY_BYTES:
            # Read nothing further; answer 413 and drop the connection.
            raise ApiError(413, "request body too large", "body_too_large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        body: bytes,
        keep_alive: bool,
        extra_headers: dict[str, str],
    ) -> None:
        reason = _REASONS.get(code, "Unknown")
        lines = [
            f"HTTP/1.1 {code} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)

    # -- routing -----------------------------------------------------------

    def _split_domain(self, path: str) -> tuple[str | None, str]:
        """``/d/<domain>/<endpoint>`` -> (domain, /endpoint); bare paths
        pass through with no domain (resolved later from the body or the
        default)."""
        if not path.startswith("/d/"):
            return None, path
        rest = path[3:]
        domain, sep, endpoint = rest.partition("/")
        if not domain or not sep or not endpoint:
            raise ApiError(
                404, f"domain paths look like /d/<domain>/ask: {path}", "bad_path"
            )
        if domain not in self.backend.domains():
            raise ApiError(404, f"no such domain: {domain}", "unknown_domain")
        return domain, "/" + endpoint

    def _resolve_domain(
        self, path_domain: str | None, body: dict[str, Any]
    ) -> str:
        body_domain = _optional_str(body, "domain")
        if body_domain is not None and body_domain not in self.backend.domains():
            raise ApiError(
                404, f"no such domain: {body_domain}", "unknown_domain"
            )
        if path_domain is not None:
            if body_domain is not None and body_domain != path_domain:
                raise ApiError(
                    400,
                    f"path says domain {path_domain!r} but body says "
                    f"{body_domain!r}",
                    "bad_field",
                )
            return path_domain
        return body_domain or self.backend.default_domain

    async def _route(
        self, method: str, path: str, body: bytes, client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        domain, endpoint = self._split_domain(path)
        handlers: dict[tuple[str, str], Callable[..., Awaitable[Any]]] = {
            ("POST", "/ask"): self._handle_ask,
            ("POST", "/ask_many"): self._handle_ask_many,
            ("POST", "/resolve"): self._handle_resolve,
            ("POST", "/sql"): self._handle_sql,
            ("GET", "/stats"): self._handle_stats,
            ("GET", "/healthz"): self._handle_healthz,
        }
        handler = handlers.get((method, endpoint))
        if handler is None:
            known_methods = [m for (m, p) in handlers if p == endpoint]
            if known_methods:
                error = ApiError(
                    405,
                    f"{endpoint} only accepts {', '.join(known_methods)}",
                    "method_not_allowed",
                )
                error.headers["Allow"] = ", ".join(known_methods)
                raise error
            raise ApiError(404, f"no such endpoint: {path}", "unknown_endpoint")
        if method == "POST":
            parsed = _parse_json_body(body)
            return await handler(self._resolve_domain(domain, parsed), parsed, client_ip)
        return await handler(domain, client_ip)

    # -- the layered rate limiter ------------------------------------------

    def _charge_domain(self, domain: str, tokens: float = 1.0) -> float:
        """Charge the per-domain bucket; 0.0 when within budget."""
        if self._domain_limiter is None:
            return 0.0
        return self._domain_limiter.check(domain, tokens)

    def _refund_domain(self, domain: str, tokens: float = 1.0) -> None:
        """The per-client layer rejected after the domain layer charged:
        give the domain its tokens back, so a denied request consumes no
        budget anywhere (all-or-nothing across the layers)."""
        if self._domain_limiter is not None:
            self._domain_limiter.refund(domain, tokens)

    # -- handlers ----------------------------------------------------------

    async def _handle_ask(
        self, domain: str, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        question = _required_str(body, "question")
        sid = _optional_str(body, "session")
        clarify = bool(body.get("clarify", False))
        client = _rate_key(self.backend, domain, sid, client_ip)
        domain_retry = self._charge_domain(domain)
        if domain_retry:
            limited = Response.rate_limited(question, domain_retry)
            return 429, limited.to_dict(), _payload_retry_headers(limited.to_dict())
        cache_key = None
        if sid is None:
            # Captured *before* the ask: a write that lands mid-ask bumps
            # the version stamps, and storing this answer under the
            # post-write key would serve it stale forever.
            cache_key = self._ask_cache_key(domain, question, clarify)
            cached = self._cache.get(cache_key)
            if cached is not None:
                retry_after = self.backend.check_limit(domain, client)
                if retry_after:
                    self._refund_domain(domain)
                    limited = Response.rate_limited(question, retry_after)
                    payload = limited.to_dict()
                    return 429, payload, _payload_retry_headers(payload)
                self.stats["cache_hits"] += 1
                return cached[0], cached[1], {}
        payload = await self.backend.ask(domain, question, sid, clarify, client)
        code = envelope_http_code(payload)
        if code == 429:
            self._refund_domain(domain)
        if sid is not None:
            payload["session"] = sid
        if (
            cache_key is not None
            and code != 429
            and payload.get("clarification_id") is None
        ):
            # Stateless outcome: cache — and answer with — the serialized
            # bytes, so the hot path serializes exactly once.
            blob = json.dumps(payload).encode("utf-8")
            self._cache.put(cache_key, (code, blob))
            self.stats["responses_cached"] += 1
            return code, blob, _payload_retry_headers(payload)
        return code, payload, _payload_retry_headers(payload)

    def _ask_cache_key(self, domain: str, question: str, clarify: bool) -> tuple:
        # The data stamp is the identity a snapshot pinned now would
        # carry; the pre-ask capture in _handle_ask means an answer is
        # only ever stored under the version it was computed against.
        return (domain, question, clarify, self.backend.data_stamp(domain))

    async def _handle_ask_many(
        self, domain: str, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        questions = body.get("questions")
        if not isinstance(questions, list) or not all(
            isinstance(q, str) for q in questions
        ):
            raise ApiError(
                400,
                "'questions' must be a list of strings",
                "bad_field",
            )
        sid = _optional_str(body, "session")
        clarify = bool(body.get("clarify", False))
        client = _rate_key(self.backend, domain, sid, client_ip)
        tokens = float(len(questions)) or 1.0
        domain_retry = self._charge_domain(domain, tokens)
        if domain_retry:
            limited = Response.rate_limited("batch", domain_retry).to_dict()
            payload = {"responses": [limited for _ in questions]}
            if sid is not None:
                payload["session"] = sid
            return 429, payload, _payload_retry_headers(limited)
        responses = await self.backend.ask_many(
            domain, questions, sid, clarify, client
        )
        payload = {"responses": responses}
        if sid is not None:
            payload["session"] = sid
        # The batch is charged as a unit, so rate limiting is all-or-nothing:
        # surface it as 429 + Retry-After like a single ask.
        if responses and all(
            response.get("retry_after_s") is not None for response in responses
        ):
            self._refund_domain(domain, tokens)
            return 429, payload, _payload_retry_headers(responses[0])
        return 200, payload, {}

    async def _handle_resolve(
        self, domain: str, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        clarification_id = _required_str(body, "clarification_id")
        choice = body.get("choice")
        if not isinstance(choice, int) or isinstance(choice, bool):
            raise ApiError(400, "'choice' must be an integer", "bad_field")
        domain_retry = self._charge_domain(domain)
        if domain_retry:
            limited = Response.rate_limited(clarification_id, domain_retry).to_dict()
            return 429, limited, _payload_retry_headers(limited)
        payload = await self.backend.resolve(
            domain, clarification_id, choice, client_ip
        )
        code = envelope_http_code(payload)
        if code == 429:
            self._refund_domain(domain)
        return code, payload, _payload_retry_headers(payload)

    async def _handle_sql(
        self, domain: str, body: dict[str, Any], client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        sql = _required_str(body, "sql")
        domain_retry = self._charge_domain(domain)
        if domain_retry:
            error = ApiError(429, "domain rate limit exceeded", "rate_limited")
            error.headers["Retry-After"] = str(max(1, math.ceil(domain_retry)))
            raise error
        return 200, await self.backend.execute(domain, sql), {}

    async def _handle_stats(
        self, domain: str | None, client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        payload = await self.backend.stats(domain)
        payload["http"] = dict(self.stats)
        return 200, payload, {}

    async def _handle_healthz(
        self, domain: str | None, client_ip: str
    ) -> tuple[int, Any, dict[str, str]]:
        return await self.backend.healthz()


class _BadRequestLine(Exception):
    """Unparseable request head: no useful reply address, just hang up."""


def _parse_json_body(body: bytes) -> dict[str, Any]:
    try:
        parsed = json.loads(body or b"null")
    except json.JSONDecodeError as exc:
        raise ApiError(
            400, f"request body is not valid JSON: {exc}", "malformed_json"
        ) from None
    if not isinstance(parsed, dict):
        raise ApiError(400, "request body must be a JSON object", "malformed_json")
    return parsed


def _required_str(body: dict[str, Any], field: str) -> str:
    value = body.get(field)
    if not isinstance(value, str) or not value:
        raise ApiError(400, f"{field!r} must be a non-empty string", "bad_field")
    return value


def _optional_str(body: dict[str, Any], field: str) -> str | None:
    value = body.get(field)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise ApiError(
            400,
            f"{field!r} must be a non-empty string when given",
            "bad_field",
        )
    return value


# -- embedding helpers (tests, docs, benchmarks) ---------------------------


class ServerHandle:
    """A server running on its own event-loop thread.

    Returned by :func:`serve_in_thread`; ``url`` is ready immediately and
    :meth:`stop` shuts the loop down and joins the thread.
    """

    def __init__(
        self,
        server: NliHttpServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        stop_event: asyncio.Event,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread
        self._stop_event = stop_event

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=10)


def serve_in_thread(
    service: NliService | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    backend: Any | None = None,
    domain_qps: float | None = None,
    domain_burst: int = 8,
) -> ServerHandle:
    """Start an :class:`NliHttpServer` on a daemon thread; returns once the
    socket is bound (so ``handle.url`` is immediately usable)."""
    started = threading.Event()
    holder: dict[str, Any] = {}

    def run() -> None:
        async def main() -> None:
            server = NliHttpServer(
                service,
                host=host,
                port=port,
                backend=backend,
                domain_qps=domain_qps,
                domain_burst=domain_burst,
            )
            await server.start()
            stop_event = asyncio.Event()
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = stop_event
            started.set()
            try:
                await stop_event.wait()
            finally:
                await server.aclose()

        asyncio.run(main())

    thread = threading.Thread(target=run, name="nli-http", daemon=True)
    thread.start()
    if not started.wait(timeout=10):  # pragma: no cover - startup failure
        raise RuntimeError("HTTP server failed to start within 10s")
    return ServerHandle(holder["server"], holder["loop"], thread, holder["stop"])
