"""Service layer: the structured public API in front of the NL pipeline.

Everything a multi-user frontend needs that the single-caller,
exception-driven ``ask()`` of the paper era did not provide:

* :class:`Response` — a serializable envelope with an explicit status
  (``ANSWERED | AMBIGUOUS | NEEDS_CLARIFICATION | FAILED``), machine-
  readable :class:`Diagnostic` objects with token spans instead of raised
  exceptions, and enumerated :class:`Choice` objects for clarification
  dialogs;
* :class:`NliService` — a thread-safe facade over one
  :class:`~repro.core.pipeline.NaturalLanguageInterface` with MVCC
  snapshot reads: concurrent ``ask()`` calls run lock-free against
  pinned database snapshots while ``refresh()`` and DML writers
  serialize at a commit point (``docs/concurrency.md``).

See ``docs/api.md`` for the envelope reference and the migration guide
from the exception-based API.
"""

from repro.service.locks import RwLock
from repro.service.persistence import SessionLog
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.response import (
    Choice,
    Diagnostic,
    Response,
    Status,
)

__all__ = [
    "Choice",
    "Diagnostic",
    "NliService",
    "RateLimiter",
    "Response",
    "RwLock",
    "SessionLog",
    "Status",
    "Subscription",
    "SubscriptionFailed",
    "TokenBucket",
]


def __getattr__(name: str):
    # NliService (and the subscription types, which import the pipeline's
    # neighbours) are resolved lazily (PEP 562): the pipeline imports
    # repro.service.response at module load, which triggers this package's
    # __init__ — an eager `from .service import NliService` here would
    # close the cycle back into the half-initialized pipeline module.
    if name == "NliService":
        from repro.service.service import NliService

        return NliService
    if name in ("Subscription", "SubscriptionFailed"):
        from repro.service import subscriptions

        return getattr(subscriptions, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
