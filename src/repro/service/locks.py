"""A writer-preferring read-write lock for the service facade.

Many ``ask()`` callers only *read* the language layers and the database;
only ``refresh()`` and DML writers mutate them.  A single mutex would
serialize every question behind every other; the RW lock lets readers
overlap while giving writers exclusivity.

Writer preference: once a writer is waiting, new readers queue behind it,
so a stream of questions cannot starve a pending ``refresh()``.  The lock
is not reentrant (a reader must not try to take the write lock).

``stats`` counts acquisitions and tracks the high-water mark of
simultaneous readers — the observable proof (asserted by the F6
benchmark) that readers actually proceed in parallel, which a single
global lock can never show.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RwLock:
    """Readers-writer lock with acquisition statistics."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self.stats = {
            "read_acquires": 0,
            "write_acquires": 0,
            "max_concurrent_readers": 0,
        }

    # -- read side ---------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self.stats["read_acquires"] += 1
            if self._readers > self.stats["max_concurrent_readers"]:
                self.stats["max_concurrent_readers"] = self._readers

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side --------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self.stats["write_acquires"] += 1

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
