"""A writer-preferring read-write lock for the service facade.

Under MVCC snapshot reads (``NliConfig.mvcc_reads``, the default) the
lock's job has shrunk to the **write/refresh commit point**: readers pin
immutable snapshots instead of taking the read side, and only writers —
DML/DDL through ``NliService.execute``, explicit ``refresh()``, and the
out-of-band delta absorption fallback — serialize on the write side.
The read side remains fully functional and is what the service uses in
the legacy ``mvcc_reads=False`` mode (the measured baseline of
``benchmarks/bench_f8_mvcc.py``), where readers hold it for the whole
question and a single mutex would serialize every question behind every
other.

Writer preference: once a writer is waiting, new readers queue behind it,
so a stream of questions cannot starve a pending ``refresh()``.  The lock
is not reentrant (a reader must not try to take the write lock).

``stats`` counts acquisitions and tracks the high-water mark of
simultaneous readers — the observable proof (asserted by the F6
benchmark) that readers actually proceed in parallel, which a single
global lock can never show.  In MVCC mode the service merges its own
snapshot-reader gauge into the same keys (``NliService.lock_stats``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RwLock:
    """Readers-writer lock with acquisition statistics."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self.stats = {
            "read_acquires": 0,
            "write_acquires": 0,
            "max_concurrent_readers": 0,
        }

    # -- read side ---------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self.stats["read_acquires"] += 1
            if self._readers > self.stats["max_concurrent_readers"]:
                self.stats["max_concurrent_readers"] = self._readers

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side --------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self.stats["write_acquires"] += 1

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
