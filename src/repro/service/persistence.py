"""Durable sessions: a JSONL append-log that survives server restarts.

A cross-process NLI must not lose a conversation when the process dies:
the paper frames clarification dialogs as core to the casual-user
experience, and a user who was just offered "did you mean [1] or [2]?"
expects their pick to work against the *restarted* server too.

Durability here is **replay-based**.  ``Session.history`` and parked
clarifications hold live interpretation object graphs that do not
serialize, but the pipeline is deterministic: asking the same questions
against the same database rebuilds the same state.  So the log records
*inputs*, one JSON object per line:

``{"op": "open",    "sid": "alice"}``
    a session id came into existence;
``{"op": "turn",    "sid": "alice", "question": ..., "clarify": ...,
"choice": ...}``
    an answered turn (``choice`` set when it was answered by picking a
    clarification option — replay re-asks and re-picks);
``{"op": "park",    "sid": ..., "question": ..., "id": "clar-3",
"choices": [...]}``
    an AMBIGUOUS response parked interpretations under ``id`` (the
    ``choices`` snapshot rides along for observability/debugging);
``{"op": "resolve", "id": "clar-3", "choice": 1}``
    the user picked; the park is consumed;
``{"op": "close",   "sid": "alice"}``
    the session ended.

On startup :meth:`SessionLog.replay` feeds the log back through the
service: sessions reopen with their full dialogue history, and pending
clarifications re-park.  The pipeline mints *fresh* clarification ids
during replay, so replay returns an alias map ``{persisted id -> live
id}`` which the service consults in ``resolve()`` — the id a client took
home before the crash keeps working.

Appends ``flush()`` to the OS on every record: a ``kill -9`` loses
nothing already acknowledged (only a power failure could, and the 1978
hardware budget did not include battery-backed RAM either).  A torn
final line — the process died mid-write — is skipped on load.
:meth:`compact` atomically rewrites the file from live state, dropping
closed sessions and consumed clarifications; the service runs it after
every replay so the log stays proportional to live state, not history.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ClarificationError
from repro.service.response import Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import NliService

__all__ = ["SessionLog", "replay_records"]


def replay_records(
    service: NliService,
    records: list[dict[str, Any]],
    *,
    skip_sids: frozenset[str] | set[str] = frozenset(),
) -> dict[str, str]:
    """Feed an event-record stream back through ``service``; returns the
    alias map ``{persisted clarification id -> freshly minted id}``.

    This is the replay core shared by :meth:`SessionLog.replay` (restart
    recovery of a whole log) and by cluster session handoff
    (:meth:`~repro.service.service.NliService.adopt_records`), where a
    sibling worker replays only the sessions a dead worker owned —
    ``skip_sids`` guards sessions the adopting service already holds, so
    a stale record can never clobber live dialogue state.  Session-less
    records (loose parks and their resolves) always replay.
    """
    aliases: dict[str, str] = {}
    for record in records:
        op = record.get("op")
        sid = record.get("sid")
        if sid is not None and sid in skip_sids:
            continue
        try:
            if op == "open":
                service.ensure_session(record["sid"])
            elif op == "turn":
                _replay_turn(service, record)
            elif op == "park":
                response = service.ask(
                    record["question"],
                    session=sid,
                    clarify=True,
                )
                if response.clarification_id is not None:
                    aliases[record["id"]] = response.clarification_id
            elif op == "resolve":
                live = aliases.pop(record["id"], record["id"])
                service.resolve(live, record["choice"])
            elif op == "close":
                service.close_session(record["sid"])
        except (KeyError, ClarificationError):
            # The database shifted under the log (or the log predates a
            # schema change): replay what still makes sense, drop the
            # rest.  Durability must never wedge startup.
            continue
    return aliases


def _replay_turn(service: NliService, record: dict[str, Any]) -> None:
    response = service.ask(
        record["question"],
        session=record.get("sid"),
        clarify=record.get("clarify", False),
    )
    choice = record.get("choice")
    if response.status is Status.AMBIGUOUS and choice is not None:
        service.resolve(response.clarification_id, choice)


class SessionLog:
    """Append-only JSONL store of session/clarification events."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None

    # -- writing -----------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one event (flushed before returning)."""
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- reading -----------------------------------------------------------

    def load(self) -> list[dict[str, Any]]:
        """All decodable records, skipping a torn final line."""
        if not self.path.exists():
            return []
        records: list[dict[str, Any]] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn write from a crash mid-append; everything before
                    # it was flushed whole, so just stop trusting the tail.
                    continue
                if isinstance(record, dict):
                    records.append(record)
        return records

    # -- replay ------------------------------------------------------------

    def replay(self, service: NliService) -> dict[str, str]:
        """Feed the log back through ``service``; returns the alias map
        ``{persisted clarification id -> freshly minted id}``.

        The caller (the service itself, during construction) must have
        suspended logging, or every replayed turn would be re-appended.
        """
        return replay_records(service, self.load())

    # -- compaction --------------------------------------------------------

    def compact(self, records: list[dict[str, Any]]) -> None:
        """Atomically replace the log with ``records`` (the minimal event
        stream for live state, produced by the service)."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
