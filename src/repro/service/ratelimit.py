"""Per-key token-bucket rate limiting for the service layer.

The paper's NLI is a shared facility: many casual users query one
database concurrently, and one runaway script must not starve everyone
else.  The classic token bucket gives each key (a session id, an HTTP
client address — whatever the caller uses to mean "one user") a budget
of ``burst`` questions that refills continuously at ``rate`` per second:
short interactive flurries pass untouched, sustained floods are shaped
to the configured rate.

A limited request is *reported*, never raised: :meth:`RateLimiter.check`
returns the seconds until the next token, and the service turns that
into a structured ``rate_limited`` Diagnostic (HTTP 429 upstream).  The
limiter is thread-safe and allocation-light — one lock, one dict, two
floats per key — and idle buckets are pruned once they refill, so a
long-running server does not accumulate a bucket per historical visitor.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["RateLimiter", "TokenBucket"]


class TokenBucket:
    """One key's budget: ``capacity`` tokens refilling at ``rate``/s."""

    __slots__ = ("capacity", "rate", "tokens", "stamp")

    def __init__(self, rate: float, capacity: float, now: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.rate = rate
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.stamp = now

    def _refill(self, now: float) -> None:
        elapsed = now - self.stamp
        if elapsed > 0:
            self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.stamp = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; returns 0.0 on success, else the
        seconds until enough tokens will have refilled (nothing is taken)."""
        self._refill(now)
        if self.tokens >= tokens:
            self.tokens -= tokens
            return 0.0
        return (tokens - self.tokens) / self.rate

    @property
    def full(self) -> bool:
        return self.tokens >= self.capacity


class RateLimiter:
    """A bucket per key, created on first use and pruned when idle.

    ``clock`` is injectable for deterministic tests; production uses
    ``time.monotonic`` so wall-clock jumps cannot grant or revoke budget.
    """

    #: Prune full (fully-refilled, hence idle) buckets past this many keys.
    PRUNE_THRESHOLD = 1024

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        # Validate at construction, not at the first bucket creation: a
        # server misconfigured with --qps 0 should fail at startup, not
        # 500 on every request.
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.stats = {"allowed": 0, "limited": 0}

    def check(self, key: str, tokens: float = 1.0) -> float:
        """Charge ``tokens`` against ``key``'s bucket.

        Returns 0.0 when the request is within budget, otherwise the
        retry-after delay in seconds.  A batch charges ``tokens=len(batch)``
        in one call, so splitting a flood into batches buys nothing.  The
        charge is capped at the bucket capacity: a batch larger than the
        burst drains the whole bucket rather than becoming permanently
        unsatisfiable (a full bucket could never hold more than ``burst``
        tokens, so the retry-after would be a lie).
        """
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[key] = bucket
            retry_after = bucket.try_acquire(now, min(tokens, bucket.capacity))
            if retry_after == 0.0:
                self.stats["allowed"] += 1
            else:
                self.stats["limited"] += 1
            if len(self._buckets) > self.PRUNE_THRESHOLD:
                self._prune(now)
        return retry_after

    def refund(self, key: str, tokens: float = 1.0) -> None:
        """Return ``tokens`` to ``key``'s bucket (never past capacity).

        This is what makes *layered* limiting chargeable all-or-nothing:
        a front end that charges a per-domain bucket and then finds the
        per-client bucket empty refunds the domain charge, so a denied
        request consumes no budget anywhere.  Refunding a key with no
        bucket (pruned, or never charged) is a no-op.
        """
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.tokens = min(
                    bucket.capacity, bucket.tokens + min(tokens, bucket.capacity)
                )

    def _prune(self, now: float) -> None:
        """Drop buckets that have fully refilled (idle long enough that
        recreating them fresh is indistinguishable)."""
        for key in [k for k, b in self._buckets.items() if _idle(b, now)]:
            del self._buckets[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)


def _idle(bucket: TokenBucket, now: float) -> bool:
    bucket._refill(now)
    return bucket.full
