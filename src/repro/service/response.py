"""The Response envelope: every caller's view of one question's outcome.

The paper-era API raised :class:`~repro.errors.ParseFailure` /
:class:`~repro.errors.InterpretationError` / :class:`~repro.errors.AmbiguityError`
as control flow, which a web frontend cannot serialize and a batch caller
cannot aggregate.  The envelope makes every outcome a value:

* ``status`` — one of :class:`Status`;
* ``answer`` — the rich :class:`~repro.core.answer.Answer` payload when
  answered (rebuilt in wire form by :meth:`Response.from_dict`);
* ``diagnostics`` — machine-readable :class:`Diagnostic` records (error
  code, message, token span into ``tokens``, suggestions);
* ``choices`` + ``clarification_id`` — the clarification protocol for
  :data:`Status.AMBIGUOUS` responses, resolved without re-parsing via
  ``service.resolve(clarification_id, choice_index)``;
* ``error_type`` — the class name of the pipeline exception the outcome
  was classified from (``"ParseFailure"``, ``"ClarificationError"`` …),
  or ``None``; callers that want exception control flow call
  ``raise_for_status()``, which raises :class:`~repro.errors.NliError`
  built from the primary diagnostic.

The PR-3 attribute-delegation shim (``response.result`` re-raising the
carried exception on failure) completed its deprecation cycle and is
gone: read answer attributes via ``response.answer``.

``to_dict()`` emits only JSON primitives (lists, never tuples), so
``json.loads(json.dumps(r.to_dict())) == r.to_dict()`` holds exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any

from repro.errors import (
    AmbiguityError,
    DialogueError,
    EngineError,
    InterpretationError,
    NliError,
    ParseFailure,
)

if TYPE_CHECKING:  # imported lazily at runtime to avoid a core<->service cycle
    from repro.core.answer import Answer


class Status(str, Enum):
    """Outcome of one question (the envelope's discriminant)."""

    ANSWERED = "answered"
    AMBIGUOUS = "ambiguous"
    NEEDS_CLARIFICATION = "needs_clarification"
    FAILED = "failed"


# Diagnostic codes (machine-readable; stages map onto them in the evalkit).
EMPTY_QUESTION = "empty_question"
PARSE_FAILURE = "parse_failure"
UNKNOWN_WORD = "unknown_word"
MISSING_CONTEXT = "missing_context"
INTERPRETATION_ERROR = "interpretation_error"
AMBIGUOUS_QUESTION = "ambiguous_question"
EXECUTION_ERROR = "execution_error"
RATE_LIMITED = "rate_limited"


@dataclass(frozen=True)
class Diagnostic:
    """One machine-readable problem report.

    ``span`` is a half-open ``(start, end)`` token range into
    ``Response.tokens`` (``(0, 0)`` for an empty question), so a frontend
    can highlight the offending words; ``suggestions`` are candidate
    replacements or paraphrases a user could pick from.
    """

    code: str
    message: str
    span: tuple[int, int] | None = None
    suggestions: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "span": list(self.span) if self.span is not None else None,
            "suggestions": list(self.suggestions),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Diagnostic:
        span = data.get("span")
        return cls(
            code=data["code"],
            message=data["message"],
            span=tuple(span) if span is not None else None,  # type: ignore[arg-type]
            suggestions=tuple(data.get("suggestions", ())),
        )


@dataclass(frozen=True)
class Choice:
    """One candidate reading offered by an AMBIGUOUS response."""

    index: int
    paraphrase: str
    sql: str
    score: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "paraphrase": self.paraphrase,
            "sql": self.sql,
            "score": self.score,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Choice:
        return cls(
            index=data["index"],
            paraphrase=data["paraphrase"],
            sql=data["sql"],
            score=data.get("score", 0.0),
        )


@dataclass
class Response:
    """Everything the service produced for one question."""

    status: Status
    question: str
    answer: Answer | None = None
    diagnostics: tuple[Diagnostic, ...] = ()
    choices: tuple[Choice, ...] = ()
    clarification_id: str | None = None
    #: Words of the question after normalization; diagnostic spans index
    #: into this list.
    tokens: tuple[str, ...] = ()
    #: Seconds to wait before retrying, set (only) on rate-limited
    #: responses; the HTTP layer surfaces it as a ``Retry-After`` header.
    retry_after_s: float | None = None
    #: Class name of the pipeline exception this outcome was classified
    #: from (``None`` for answered responses); survives the wire.
    error_type: str | None = None

    # -- convenience -------------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.status is Status.ANSWERED

    def raise_for_status(self) -> None:
        """Raise :class:`NliError` if the question was not answered.

        The message is the primary diagnostic's; ``error_type`` names the
        original pipeline exception class for callers that dispatch on it.
        """
        if self.status is Status.ANSWERED:
            return
        raise NliError(
            self.diagnostics[0].message if self.diagnostics else self.status.value
        )

    # -- construction helpers ----------------------------------------------

    @classmethod
    def answered(cls, question: str, answer: Answer) -> Response:
        return cls(
            status=Status.ANSWERED,
            question=question,
            answer=answer,
            tokens=tuple(answer.normalized_words),
        )

    @classmethod
    def rate_limited(cls, question: str, retry_after_s: float) -> Response:
        """A FAILED envelope reporting that the caller's budget ran out.

        ``retry_after_s`` (seconds until the token bucket refills enough
        tokens) is a first-class field so wire callers can back off
        precisely; the HTTP layer also surfaces it as a ``Retry-After``
        header on the 429.
        """
        retry = max(retry_after_s, 0.0)
        diagnostic = Diagnostic(
            RATE_LIMITED, f"rate limit exceeded; retry in {retry:.2f}s"
        )
        return cls(
            status=Status.FAILED,
            question=question,
            diagnostics=(diagnostic,),
            retry_after_s=retry,
            error_type="NliError",
        )

    @property
    def is_rate_limited(self) -> bool:
        return any(d.code == RATE_LIMITED for d in self.diagnostics)

    @classmethod
    def from_error(
        cls,
        question: str,
        error: Exception,
        tokens: tuple[str, ...] = (),
        extra_diagnostics: tuple[Diagnostic, ...] = (),
    ) -> Response:
        """Classify a legacy pipeline exception into an envelope.

        Used by the pipeline itself and by the baselines, so every system
        under evaluation speaks the same protocol.
        """
        span = (0, len(tokens))
        if isinstance(error, ParseFailure):
            if not tokens and getattr(error, "tokens", None):
                tokens = tuple(error.tokens)
                span = (0, len(tokens))
            code = PARSE_FAILURE if tokens else EMPTY_QUESTION
            status = Status.FAILED
        elif isinstance(error, DialogueError):
            code, status = MISSING_CONTEXT, Status.NEEDS_CLARIFICATION
        elif isinstance(error, AmbiguityError):
            code, status = AMBIGUOUS_QUESTION, Status.AMBIGUOUS
        elif isinstance(error, InterpretationError):
            code, status = INTERPRETATION_ERROR, Status.FAILED
        elif isinstance(error, EngineError):
            code, status = EXECUTION_ERROR, Status.FAILED
        else:
            code, status = EXECUTION_ERROR, Status.FAILED
        diagnostics = (Diagnostic(code, str(error), span), *extra_diagnostics)
        return cls(
            status=status,
            question=question,
            diagnostics=diagnostics,
            tokens=tuple(tokens),
            error_type=type(error).__name__,
        )

    # -- JSON wire format --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Pure-JSON representation (lists only, no tuples/objects)."""
        answer = None
        if self.answer is not None:
            a = self.answer
            answer = {
                "sql": a.sql,
                "paraphrase": a.paraphrase,
                "columns": list(a.result.columns),
                "rows": [list(row) for row in a.result.rows],
                "corrections": [list(pair) for pair in a.corrections],
                "normalized_words": list(a.normalized_words),
                "alternatives": [list(pair) for pair in a.alternatives],
                "was_fragment": a.was_fragment,
            }
        return {
            "status": self.status.value,
            "question": self.question,
            "answer": answer,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "choices": [c.to_dict() for c in self.choices],
            "clarification_id": self.clarification_id,
            "tokens": list(self.tokens),
            "retry_after_s": self.retry_after_s,
            "error_type": self.error_type,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Response:
        """Rebuild an envelope from :meth:`to_dict` output.

        The answer payload comes back in *wire form*: a real
        :class:`~repro.sqlengine.result.ResultSet` is reconstructed from
        columns/rows, but ``interpretation`` (an in-process object graph)
        is ``None`` on the wire.
        """
        from repro.core.answer import Answer
        from repro.sqlengine.result import ResultSet

        answer = None
        wire = data.get("answer")
        if wire is not None:
            answer = Answer(
                question=data["question"],
                normalized_words=list(wire.get("normalized_words", [])),
                corrections=[tuple(pair) for pair in wire.get("corrections", [])],
                interpretation=None,
                sql=wire.get("sql", ""),
                result=ResultSet(
                    list(wire.get("columns", [])),
                    [tuple(row) for row in wire.get("rows", [])],
                ),
                paraphrase=wire.get("paraphrase", ""),
                alternatives=[tuple(pair) for pair in wire.get("alternatives", [])],
                was_fragment=wire.get("was_fragment", False),
            )
        return cls(
            status=Status(data["status"]),
            question=data["question"],
            answer=answer,
            diagnostics=tuple(
                Diagnostic.from_dict(d) for d in data.get("diagnostics", [])
            ),
            choices=tuple(Choice.from_dict(c) for c in data.get("choices", [])),
            clarification_id=data.get("clarification_id"),
            tokens=tuple(data.get("tokens", [])),
            retry_after_s=data.get("retry_after_s"),
            error_type=data.get("error_type"),
        )
