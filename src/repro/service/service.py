"""NliService: the thread-safe, multi-session facade over the pipeline.

The raw :class:`~repro.core.pipeline.NaturalLanguageInterface` is a
single-caller object: a lazily-triggered ``refresh()`` rebuilds the
language layers in place, so concurrent ``ask()`` threads would race the
rebuild.  The service closes that hole with a writer-preferring
:class:`~repro.service.locks.RwLock`:

* ``ask`` / ``ask_many`` / ``resolve`` run under the **read** lock, so any
  number of question threads proceed in parallel;
* ``refresh`` and DML/DDL through :meth:`execute` take the **write** lock
  and get exclusivity.

Implicit refresh is disabled on the wrapped pipeline
(``nli.auto_refresh = False``); instead, every read entry point first
absorbs pending deltas under the write lock when needed.  A delta that
lands *while* readers are in flight is absorbed before the next question
— readers see a consistent (possibly one-write stale) snapshot, never a
torn one.

Sessions: :meth:`open_session` issues ids for conversation state kept on
the service (a web frontend holds a token, not an object); library
callers may still pass their own :class:`~repro.core.dialogue.Session`.
"""

from __future__ import annotations

import threading

from repro.core.config import NliConfig
from repro.core.dialogue import Session
from repro.core.pipeline import NaturalLanguageInterface
from repro.lexicon.domain import DomainModel
from repro.service.locks import RwLock
from repro.service.response import Response
from repro.sqlengine.database import Database
from repro.sqlengine.result import ResultSet

#: Statement prefixes that only read; everything else is a writer.
_READ_ONLY_PREFIXES = ("select", "explain")


class NliService:
    """Thread-safe service API over one natural-language interface."""

    def __init__(
        self,
        database: Database,
        domain: DomainModel | None = None,
        config: NliConfig | None = None,
        nli: NaturalLanguageInterface | None = None,
    ) -> None:
        self._nli = nli or NaturalLanguageInterface(
            database, domain=domain, config=config
        )
        # The service owns freshness: implicit refresh under a read lock
        # would mutate the language layers while other readers use them.
        self._nli.auto_refresh = False
        self._lock = RwLock()
        self._sessions: dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._session_counter = 0

    @property
    def nli(self) -> NaturalLanguageInterface:
        """The wrapped pipeline (single-threaded access only)."""
        return self._nli

    @property
    def database(self) -> Database:
        return self._nli.database

    # -- sessions ----------------------------------------------------------

    def open_session(self) -> str:
        """Create a managed dialogue session; returns its id."""
        with self._sessions_lock:
            self._session_counter += 1
            session_id = f"s{self._session_counter}"
            self._sessions[session_id] = Session()
        return session_id

    def session(self, session_id: str) -> Session:
        with self._sessions_lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise KeyError(f"unknown session id {session_id!r}") from None

    def close_session(self, session_id: str) -> None:
        with self._sessions_lock:
            self._sessions.pop(session_id, None)

    def _as_session(self, session: Session | str | None) -> Session | None:
        if isinstance(session, str):
            return self.session(session)
        return session

    # -- freshness ---------------------------------------------------------

    def _absorb_writes(self) -> None:
        """Apply pending DML deltas under the write lock (if any).

        The cheap check runs lock-free; the refresh re-checks under the
        write lock, so two racing readers cannot double-refresh and a
        reader never mutates the layers while others read them.
        """
        if self._nli.needs_refresh():
            with self._lock.write_locked():
                self._nli.refresh_if_needed()

    def refresh(self, full: bool = False) -> None:
        """Explicitly rebuild/patch the language layers (exclusive)."""
        with self._lock.write_locked():
            self._nli.refresh(full=full)

    # -- questions (read side) ---------------------------------------------

    def ask(
        self,
        question: str,
        session: Session | str | None = None,
        clarify: bool = False,
    ) -> Response:
        """Answer one question; safe to call from many threads at once."""
        resolved = self._as_session(session)
        self._absorb_writes()
        with self._lock.read_locked():
            return self._nli.ask(question, session=resolved, clarify=clarify)

    def ask_many(
        self,
        questions: list[str],
        session: Session | str | None = None,
        clarify: bool = False,
    ) -> list[Response]:
        """Answer a batch under one read-lock hold and one freshness pass."""
        resolved = self._as_session(session)
        self._absorb_writes()
        with self._lock.read_locked():
            return self._nli.ask_many(questions, session=resolved, clarify=clarify)

    def resolve(self, clarification_id: str, choice_index: int) -> Response:
        """Execute the chosen reading of an AMBIGUOUS response."""
        self._absorb_writes()
        with self._lock.read_locked():
            return self._nli.resolve(clarification_id, choice_index)

    def explain(self, question: str, session: Session | str | None = None) -> str:
        resolved = self._as_session(session)
        self._absorb_writes()
        with self._lock.read_locked():
            return self._nli.explain(question, session=resolved)

    # -- SQL passthrough (write side for DML/DDL) --------------------------

    def execute(self, sql: str) -> ResultSet:
        """Run raw SQL: SELECT/EXPLAIN share the read lock, DML/DDL get
        exclusivity (their deltas are absorbed before the next question)."""
        if sql.lstrip().lower().startswith(_READ_ONLY_PREFIXES):
            with self._lock.read_locked():
                return self._nli.engine.execute(sql)
        with self._lock.write_locked():
            return self._nli.engine.execute(sql)

    # -- observability -----------------------------------------------------

    @property
    def lock_stats(self) -> dict[str, int]:
        return dict(self._lock.stats)

    @property
    def stats(self) -> dict[str, int]:
        """Pipeline counters plus lock acquisition/concurrency counters."""
        out = dict(self._nli.stats)
        for key, value in self._lock.stats.items():
            out[f"lock_{key}"] = value
        with self._sessions_lock:
            out["open_sessions"] = len(self._sessions)
        return out
