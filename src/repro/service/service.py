"""NliService: the thread-safe, multi-session facade over the pipeline.

The raw :class:`~repro.core.pipeline.NaturalLanguageInterface` is a
single-caller object: a lazily-triggered ``refresh()`` rebuilds the
language layers in place, so concurrent ``ask()`` threads would race the
rebuild.  The service closes that hole with **MVCC snapshot reads**
(``config.mvcc_reads``, the default):

* ``ask`` / ``ask_many`` / ``resolve`` pin an immutable database snapshot
  plus the current language-layer bundle and run **lock-free** — readers
  never queue behind a writer, never observe a half-applied statement,
  and a reader pinned before a commit keeps seeing the pre-commit rows;
* ``refresh`` and DML/DDL through :meth:`execute` serialize on the
  :class:`~repro.service.locks.RwLock` write side — now only a **commit
  point**: the writer mutates (copy-on-write detaches any pinned
  snapshots), absorbs its own deltas, and publishes a fresh layer bundle
  before releasing.  The only read-side wait left is the out-of-band
  fallback below.

With ``mvcc_reads=False`` the service reverts to the PR-3 discipline —
readers hold the RW **read** lock for the whole question and writers get
exclusivity — kept as the measured baseline for
``benchmarks/bench_f8_mvcc.py``.  See ``docs/concurrency.md`` for the
full model.

Implicit refresh is disabled on the wrapped pipeline
(``nli.auto_refresh = False``); the write path absorbs its own deltas at
the commit point.  Deltas from *out-of-band* writes (direct ``Database``
mutation behind the service's back) are absorbed by the next read entry
point under the write lock — the one case where a reader may wait, and
never longer than that single commit.

Sessions: :meth:`open_session` issues ids for conversation state kept on
the service (a web frontend holds a token, not an object);
:meth:`ensure_session` get-or-creates a *client-chosen* id, which is what
the HTTP layer uses — a stateless client just sends ``"session":
"alice"`` with every request.  Library callers may still pass their own
:class:`~repro.core.dialogue.Session` objects (those are not durable and
not rate-limit keyed, since the service never sees an id for them).

Three service-grade facilities ride on top of the lock:

* **async face** — :meth:`ask_async` / :meth:`ask_many_async` /
  :meth:`resolve_async` / :meth:`execute_async` run the blocking call on
  a bounded worker pool (``config.service_workers`` threads), so an
  asyncio front end gets real reader parallelism under the RW lock
  without blocking its event loop;
* **rate limiting** — a per-key token bucket
  (:class:`~repro.service.ratelimit.RateLimiter`, enabled by
  ``config.rate_limit_qps``) charges one token per question (a batch
  charges its length); over-budget requests come back as structured
  ``rate_limited`` envelopes, never exceptions;
* **durability** — pass ``persistence=`` (a path or
  :class:`~repro.service.persistence.SessionLog`) and every id-managed
  session turn and parked clarification is appended to a JSONL log,
  replayed on construction: a restarted service resumes mid-dialog, and
  clarification ids issued before the restart still resolve (an alias
  map translates them to the freshly minted ones);
* **durable storage** — set ``config.data_dir`` and the service attaches
  a :class:`~repro.storage.StorageManager`: every committed DML/DDL
  statement is fsync'd to a write-ahead log before the call returns,
  snapshot checkpoints bound recovery replay, and a restarted service
  recovers to the last committed statement.  ``BEGIN`` / ``COMMIT`` /
  ``ROLLBACK`` through :meth:`execute` open a multi-statement
  transaction: the writer holds the commit-point write lock across
  statements while concurrent readers keep answering lock-free from the
  pinned pre-transaction overlay snapshot, and ROLLBACK restores rows,
  indexes and statistics as if the transaction never ran.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from functools import partial
from typing import Any, Iterator

from repro.core.config import NliConfig
from repro.core.dialogue import Session
from repro.core.pipeline import CLARIFICATION_CAPACITY, NaturalLanguageInterface
from repro.errors import ClarificationError
from repro.lexicon.domain import DomainModel
from repro.service.locks import RwLock
from repro.service.persistence import SessionLog, replay_records
from repro.service.ratelimit import RateLimiter
from repro.service.response import Response, Status
from repro.service.subscriptions import (
    DEFAULT_QUEUE_FRAMES,
    Subscription,
    SubscriptionRegistry,
)
from repro.sqlengine.database import Database
from repro.sqlengine.result import ResultSet
from repro.storage import StorageManager

#: Statement prefixes that only read; everything else is a writer.
_READ_ONLY_PREFIXES = ("select", "explain")

#: Rate-limit key used when a request carries neither a client key nor a
#: managed session id.
ANONYMOUS = "anonymous"


class NliService:
    """Thread-safe service API over one natural-language interface."""

    def __init__(
        self,
        database: Database,
        domain: DomainModel | None = None,
        config: NliConfig | None = None,
        nli: NaturalLanguageInterface | None = None,
        persistence: SessionLog | str | None = None,
    ) -> None:
        self._nli = nli or NaturalLanguageInterface(
            database, domain=domain, config=config
        )
        # The service owns freshness: implicit refresh under a read lock
        # would mutate the language layers while other readers use them.
        self._nli.auto_refresh = False
        self._lock = RwLock()
        #: MVCC snapshot reads (default): readers pin snapshots instead of
        #: holding the read lock, and refreshes publish cloned layers so
        #: in-flight readers keep a consistent bundle.
        self._mvcc = self._nli.config.mvcc_reads
        if self._mvcc:
            self._nli.enable_copy_on_refresh()
        #: Reader-overlap gauge for the MVCC path: the RW lock no longer
        #: sees readers, so concurrency is observed here and merged into
        #: :attr:`lock_stats` (same keys the F6 benchmark asserts on).
        self._reader_gauge_lock = threading.Lock()
        self._readers_active = 0
        self._reader_stats = {"read_acquires": 0, "max_concurrent_readers": 0}
        self._sessions: dict[str, Session] = {}
        self._sessions_lock = threading.Lock()
        self._session_counter = 0
        #: Live parked clarifications: live id -> (question, managed sid or
        #: None), kept for log compaction and key attribution.
        self._parked: dict[str, tuple[str, str | None]] = {}
        #: Persisted clarification id -> live id minted during replay.
        self._clar_aliases: dict[str, str] = {}
        self._executor: ThreadPoolExecutor | None = None
        cfg = self._nli.config
        self._limiter: RateLimiter | None = (
            RateLimiter(cfg.rate_limit_qps, cfg.rate_limit_burst)
            if cfg.rate_limit_qps is not None
            else None
        )
        #: Transaction gate: serializes BEGIN/COMMIT/ROLLBACK control (and
        #: statements joining an open transaction) so exactly one client
        #: transaction exists at a time.  The RW write lock itself is held
        #: from BEGIN to COMMIT/ROLLBACK — it is not thread-affine, so the
        #: commit may arrive on a different worker thread than the BEGIN.
        self._txn_gate = threading.Lock()
        self._txn_open = False
        self._storage: StorageManager | None = None
        if cfg.data_dir is not None:
            self._storage = StorageManager(
                self._nli.engine,
                cfg.data_dir,
                checkpoint_every=cfg.checkpoint_every,
                fsync=cfg.wal_fsync,
            )
            report = self._storage.recover()
            if report.recovered:
                # Recovery replaced the in-memory seed: rebuild the
                # language layers from scratch before any question runs.
                self._nli.refresh(full=True)
            self._storage.attach()
        # Publish language layers atomically with COMMIT/ROLLBACK: the
        # hook runs inside the transaction's closing statement scope,
        # while the service still holds the write lock taken at BEGIN.
        self._nli.engine.transactions.commit_hook = self._publish_txn
        # Standing subscriptions: the registry buffers the *table names*
        # of row deltas; commit points hand it the touched set, and only
        # subscriptions whose stamped tables intersect are re-evaluated.
        self._subscriptions = SubscriptionRegistry(self)
        self.database.add_delta_listener(self._subscriptions.on_delta)
        self._persistence: SessionLog | None = None
        if persistence is not None:
            log = (
                persistence
                if isinstance(persistence, SessionLog)
                else SessionLog(persistence)
            )
            self._restore(log)

    @property
    def nli(self) -> NaturalLanguageInterface:
        """The wrapped pipeline (single-threaded access only)."""
        return self._nli

    @property
    def database(self) -> Database:
        return self._nli.database

    @property
    def storage(self) -> StorageManager | None:
        """The durable storage manager (None when running in memory)."""
        return self._storage

    def attach_storage(self, storage: StorageManager) -> None:
        """Adopt an externally-prepared storage manager as the durable sink.

        The cluster writer child uses this: the parent restored the data
        directory read-only before forking, so the child's manager runs
        ``recover(replay=False)`` itself and is attached here — from then
        on every committed statement is WAL'd exactly as if the service
        had owned storage from construction.
        """
        if self._storage is not None:
            raise RuntimeError("service already has a storage manager")
        self._storage = storage
        storage.attach()

    def close(self) -> None:
        """Release the worker pool, the persistence file handle, and the
        storage layer (writing a graceful-shutdown checkpoint, so the next
        start restores from the checkpoint alone with an empty WAL tail)."""
        self._subscriptions.close()
        with self._sessions_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        if self._persistence is not None:
            self._persistence.close()
        if self._storage is not None:
            self._storage.close()

    # -- sessions ----------------------------------------------------------

    def open_session(self) -> str:
        """Create a managed dialogue session; returns its generated id."""
        with self._sessions_lock:
            while True:
                self._session_counter += 1
                session_id = f"s{self._session_counter}"
                if session_id not in self._sessions:
                    break
            self._sessions[session_id] = Session()
            evicted = self._evict_over_cap_locked()
        self._log_session_churn(session_id, evicted)
        return session_id

    def ensure_session(self, session_id: str) -> str:
        """Get-or-create a session under a *client-chosen* id.

        This is the stateless-frontend handshake: an HTTP client simply
        sends the same ``"session"`` string with every request and the
        first one creates it.  Generated (:meth:`open_session`) and
        client-chosen ids share one namespace, bounded by
        ``config.max_sessions`` (least-recently-used ids are closed when
        a new one would exceed the cap).
        """
        with self._sessions_lock:
            created = session_id not in self._sessions
            if created:
                self._sessions[session_id] = Session()
                evicted = self._evict_over_cap_locked()
            else:
                evicted = []
        if created:
            self._log_session_churn(session_id, evicted)
        return session_id

    def _evict_over_cap_locked(self) -> list[str]:
        """Drop least-recently-used sessions beyond the cap (lock held)."""
        evicted = []
        while len(self._sessions) > self._nli.config.max_sessions:
            oldest = next(iter(self._sessions))
            del self._sessions[oldest]
            evicted.append(oldest)
        return evicted

    def _log_session_churn(self, opened: str, evicted: list[str]) -> None:
        for session_id in evicted:
            self._log({"op": "close", "sid": session_id})
        self._log({"op": "open", "sid": opened})

    def has_session(self, session_id: str) -> bool:
        with self._sessions_lock:
            return session_id in self._sessions

    def session(self, session_id: str) -> Session:
        with self._sessions_lock:
            try:
                session = self._sessions.pop(session_id)
            except KeyError:
                raise KeyError(f"unknown session id {session_id!r}") from None
            # Reinsert at the back: access order drives cap eviction.
            self._sessions[session_id] = session
            return session

    def close_session(self, session_id: str) -> None:
        with self._sessions_lock:
            existed = self._sessions.pop(session_id, None) is not None
        if existed:
            self._log({"op": "close", "sid": session_id})

    def _as_session(self, session: Session | str | None) -> Session | None:
        if isinstance(session, str):
            return self.session(session)
        return session

    # -- read access -------------------------------------------------------

    @contextmanager
    def _read_access(self) -> Iterator[None]:
        """Scope of one read-side entry point.

        MVCC mode: no lock at all — the pipeline pins its own snapshot +
        layer bundle — but reader overlap is still counted so the
        ``max_concurrent_readers`` observable survives the lock's demotion
        to a commit point.  Legacy mode: the RW read lock, as before.
        """
        if not self._mvcc:
            with self._lock.read_locked():
                yield
            return
        with self._reader_gauge_lock:
            self._readers_active += 1
            self._reader_stats["read_acquires"] += 1
            if self._readers_active > self._reader_stats["max_concurrent_readers"]:
                self._reader_stats["max_concurrent_readers"] = self._readers_active
        try:
            yield
        finally:
            with self._reader_gauge_lock:
                self._readers_active -= 1

    # -- freshness ---------------------------------------------------------

    def _absorb_writes(self) -> None:
        """Apply pending DML deltas under the write lock (if any).

        The cheap check runs lock-free; the refresh re-checks under the
        write lock, so two racing readers cannot double-refresh and a
        reader never mutates the layers while others read them.  In MVCC
        mode writers absorb their own deltas at the commit point, so this
        fires only for out-of-band database mutations — the single case
        where a reader may wait on a writer, for at most one commit.
        """
        if self._txn_open:
            # An open transaction holds the write lock; its deltas publish
            # at COMMIT/ROLLBACK (the commit hook), and readers meanwhile
            # pair the pre-transaction overlay snapshot with the current —
            # pre-transaction — language layers.
            return
        if self._nli.needs_refresh():
            with self._lock.write_locked():
                self._nli.refresh_if_needed()
            # Out-of-band mutations are committed data too: give standing
            # subscriptions their (buffered) touched tables.
            self._subscriptions.commit()

    def _publish_txn(self) -> None:
        """Engine commit hook: absorb the transaction's (or rollback's)
        deltas and publish fresh language layers *inside* the closing
        statement scope, so no reader can pin the committed data with the
        pre-commit layers.  Runs under the write lock held since BEGIN."""
        self._nli.refresh_if_needed()

    def refresh(self, full: bool = False) -> None:
        """Explicitly rebuild/patch the language layers (exclusive)."""
        with self._lock.write_locked():
            self._nli.refresh(full=full)

    # -- rate limiting -----------------------------------------------------

    def check_limit(self, key: str, tokens: float = 1.0) -> float:
        """Charge the rate limiter for ``key``: retry-after seconds when
        over budget, else 0.0.  Public so front ends that short-circuit a
        request (e.g. the HTTP layer's response cache) can still charge
        the client's budget exactly once."""
        if self._limiter is None:
            return 0.0
        return self._limiter.check(key, tokens)

    # -- questions (read side) ---------------------------------------------

    def ask(
        self,
        question: str,
        session: Session | str | None = None,
        clarify: bool = False,
        client: str | None = None,
    ) -> Response:
        """Answer one question; safe to call from many threads at once.

        ``client`` keys the rate limiter (falling back to the session id,
        then to one shared anonymous bucket).
        """
        sid = session if isinstance(session, str) else None
        resolved = self._as_session(session)
        retry_after = self.check_limit(client or sid or ANONYMOUS)
        if retry_after:
            return Response.rate_limited(question, retry_after)
        self._absorb_writes()
        with self._read_access():
            response = self._nli.ask(question, session=resolved, clarify=clarify)
        self._record_ask(sid, question, clarify, response)
        return response

    def ask_many(
        self,
        questions: list[str],
        session: Session | str | None = None,
        clarify: bool = False,
        client: str | None = None,
    ) -> list[Response]:
        """Answer a batch under one read-lock hold and one freshness pass.

        The batch charges ``len(questions)`` rate-limit tokens up front
        (capped at the burst capacity — an oversized batch drains the
        whole bucket), so splitting a flood into batches buys no extra
        budget.
        """
        sid = session if isinstance(session, str) else None
        resolved = self._as_session(session)
        retry_after = self.check_limit(
            client or sid or ANONYMOUS, tokens=float(len(questions) or 1)
        )
        if retry_after:
            return [Response.rate_limited(q, retry_after) for q in questions]
        self._absorb_writes()
        with self._read_access():
            responses = self._nli.ask_many(
                questions,
                session=resolved,
                clarify=clarify,
            )
        for question, response in zip(questions, responses):
            self._record_ask(sid, question, clarify, response)
        return responses

    def resolve(
        self,
        clarification_id: str,
        choice_index: int,
        client: str | None = None,
    ) -> Response:
        """Execute the chosen reading of an AMBIGUOUS response.

        Accepts clarification ids minted before a restart: the persistence
        replay leaves an alias from the persisted id to the live one.
        """
        with self._sessions_lock:
            live_id = self._clar_aliases.get(clarification_id, clarification_id)
            parked = self._parked.get(live_id)
        key = client or (parked[1] if parked else None) or ANONYMOUS
        retry_after = self.check_limit(key)
        if retry_after:
            return Response.rate_limited(clarification_id, retry_after)
        self._absorb_writes()
        try:
            with self._read_access():
                # Raises ClarificationError for unknown ids / bad indexes;
                # the clarification is consumed on any Response (even
                # FAILED).
                response = self._nli.resolve(live_id, choice_index)
        except ClarificationError:
            # A bad *index* leaves the clarification parked (the user just
            # picks again), but an id the pipeline no longer knows — LRU
            # eviction, a consumed entry — is dead: drop our bookkeeping
            # for it too, or abandoned ids would pin parks/aliases forever.
            if self._nli._clarifications.get(live_id) is None:
                with self._sessions_lock:
                    self._clar_aliases.pop(clarification_id, None)
                    self._parked.pop(live_id, None)
            raise
        with self._sessions_lock:
            self._clar_aliases.pop(clarification_id, None)
            self._parked.pop(live_id, None)
        self._log({"op": "resolve", "id": clarification_id, "choice": choice_index})
        return response

    def has_clarification(self, clarification_id: str) -> bool:
        """True while the id (pre- or post-restart form) is still parked
        and resolvable — lets a front end distinguish "unknown id" from
        "bad choice index on a live clarification"."""
        with self._sessions_lock:
            live_id = self._clar_aliases.get(clarification_id, clarification_id)
        return self._nli._clarifications.get(live_id) is not None

    def explain(self, question: str, session: Session | str | None = None) -> str:
        resolved = self._as_session(session)
        self._absorb_writes()
        with self._read_access():
            return self._nli.explain(question, session=resolved)

    # -- standing subscriptions --------------------------------------------

    def subscribe(
        self,
        question: str,
        session_id: str | None = None,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
    ) -> Subscription:
        """Register a live question (see ``service/subscriptions.py``).

        Parses once, pushes the initial answer as frame 0, and from then
        on re-evaluates the cached plan only when a committed write
        touches one of the plan's tables.  Raises
        :class:`~repro.service.subscriptions.SubscriptionFailed` (carrying
        the failure envelope) when the question cannot be answered.
        """
        self._absorb_writes()
        return self._subscriptions.register(
            question, session_id, queue_frames=queue_frames
        )

    def unsubscribe(self, subscription_id: str) -> bool:
        """Close a standing subscription; False if the id is unknown."""
        return self._subscriptions.unsubscribe(subscription_id)

    @property
    def subscriptions(self) -> SubscriptionRegistry:
        return self._subscriptions

    # -- async face --------------------------------------------------------

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._sessions_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._nli.config.service_workers,
                    thread_name_prefix="nli-worker",
                )
            return self._executor

    async def _run(self, call) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._ensure_executor(), call)

    async def ask_async(
        self,
        question: str,
        session: Session | str | None = None,
        clarify: bool = False,
        client: str | None = None,
    ) -> Response:
        """:meth:`ask` on the worker pool — concurrent awaiters become
        concurrent readers under the RW lock."""
        return await self._run(
            partial(
                self.ask,
                question,
                session=session,
                clarify=clarify,
                client=client,
            )
        )

    async def ask_many_async(
        self,
        questions: list[str],
        session: Session | str | None = None,
        clarify: bool = False,
        client: str | None = None,
    ) -> list[Response]:
        return await self._run(
            partial(
                self.ask_many,
                questions,
                session=session,
                clarify=clarify,
                client=client,
            )
        )

    async def resolve_async(
        self,
        clarification_id: str,
        choice_index: int,
        client: str | None = None,
    ) -> Response:
        return await self._run(
            partial(self.resolve, clarification_id, choice_index, client=client)
        )

    async def execute_async(self, sql: str) -> ResultSet:
        return await self._run(partial(self.execute, sql))

    # -- persistence -------------------------------------------------------

    def _restore(self, log: SessionLog) -> None:
        """Replay ``log`` into this (fresh) service, then compact it.

        Replay traffic is neither logged (``self._persistence`` is still
        ``None``) nor rate-limited (it is our own history, not a client).
        """
        limiter, self._limiter = self._limiter, None
        try:
            self._clar_aliases = log.replay(self)
        finally:
            self._limiter = limiter
        self._persistence = log
        log.compact(self.dump_records())

    def _log(self, record: dict[str, Any]) -> None:
        log = self._persistence
        if log is not None:
            log.append(record)

    def _record_ask(
        self, sid: str | None, question: str, clarify: bool, response: Response
    ) -> None:
        """Track/persist the state change (if any) one ask produced."""
        if response.status is Status.AMBIGUOUS and response.clarification_id:
            with self._sessions_lock:
                self._parked[response.clarification_id] = (question, sid)
                # Mirror the pipeline registry's LRU bound: once it would
                # have evicted the oldest park, ours (and any alias to it)
                # is dead weight that would otherwise grow — and be
                # re-parked by every compaction — forever.
                while len(self._parked) > CLARIFICATION_CAPACITY:
                    evicted = next(iter(self._parked))
                    del self._parked[evicted]
                    for external, live in list(self._clar_aliases.items()):
                        if live == evicted:
                            del self._clar_aliases[external]
            self._log(
                {
                    "op": "park",
                    "sid": sid,
                    "question": question,
                    "id": response.clarification_id,
                    "choices": [choice.to_dict() for choice in response.choices],
                }
            )
        elif response.status is Status.ANSWERED and sid is not None:
            self._log(
                {
                    "op": "turn",
                    "sid": sid,
                    "question": question,
                    "clarify": clarify,
                    "choice": None,
                }
            )

    def dump_records(self) -> list[dict[str, Any]]:
        """The minimal replayable event stream for current live state.

        Sessions replay from their :attr:`~repro.core.dialogue.Session.events`
        logs (a turn answered via clarification replays as ask+pick, so no
        park/resolve pair is needed); still-parked clarifications replay as
        ``park`` records under the id the *client* holds (the persisted
        alias when there is one).  A session's *current* pending
        clarification is emitted right after its turns so replay leaves the
        dialogue in the same state; abandoned parks (the user moved on)
        replay session-less, so re-asking them cannot resurrect cleared
        pending state or re-read a fragment against the wrong context.
        Choices snapshots are not reconstructed here — they are
        observability payload, re-captured on first use.
        """
        with self._sessions_lock:
            sessions = list(self._sessions.items())
            parked = dict(self._parked)
            reverse = {live: ext for ext, live in self._clar_aliases.items()}
        pending_parks: dict[str, dict[str, Any]] = {}
        loose_parks: list[dict[str, Any]] = []
        session_map = dict(sessions)
        for live_id, (question, sid) in parked.items():
            record = {
                "op": "park",
                "sid": None,
                "question": question,
                "id": reverse.get(live_id, live_id),
                "choices": [],
            }
            session = session_map.get(sid)
            if session is not None and session.pending_clarification == live_id:
                record["sid"] = sid
                pending_parks[sid] = record
            else:
                loose_parks.append(record)
        records: list[dict[str, Any]] = []
        for sid, session in sessions:
            records.append({"op": "open", "sid": sid})
            for event in session.events:
                records.append(
                    {
                        "op": "turn",
                        "sid": sid,
                        "question": event["question"],
                        "clarify": event["clarify"],
                        "choice": event["choice"],
                    }
                )
            if sid in pending_parks:
                records.append(pending_parks[sid])
        records.extend(loose_parks)
        return records

    def compact_log(self) -> None:
        """Rewrite the persistence log to live state (no-op when not
        durable); useful before a planned shutdown."""
        if self._persistence is not None:
            self._persistence.compact(self.dump_records())

    def session_ids(self) -> list[str]:
        """Ids of currently-open sessions (oldest first)."""
        with self._sessions_lock:
            return list(self._sessions)

    def adopt_records(self, records: list[dict[str, Any]]) -> dict[str, str]:
        """Replay another service's event records into this one.

        This is the cluster handoff path: when a worker dies, the router
        replays the dead worker's session records into a sibling so the
        dialogue (history *and* pending clarifications) survives.  The
        replay is neither logged nor rate-limited — it is history, not new
        client traffic — and sessions this service already holds are
        skipped, so adoption can never clobber live state.  Returns the
        clarification alias map (old id -> freshly minted id), which is
        also merged into this service's alias table so clients keep using
        the ids they already hold.
        """
        known = frozenset(self.session_ids())
        limiter, self._limiter = self._limiter, None
        persistence, self._persistence = self._persistence, None
        try:
            aliases = replay_records(self, records, skip_sids=known)
        finally:
            self._limiter = limiter
            self._persistence = persistence
        with self._sessions_lock:
            self._clar_aliases.update(aliases)
        if persistence is not None:
            persistence.compact(self.dump_records())
        return aliases

    # -- SQL passthrough (write side for DML/DDL) --------------------------

    def execute(self, sql: str) -> ResultSet:
        """Run raw SQL.

        Reads: a SELECT runs lock-free against a pinned snapshot in MVCC
        mode (the read lock in legacy mode); EXPLAIN pins its own snapshot
        inside the engine, so it is just as lock-free — it never queues
        behind a bulk writer.  Autocommit writes (DML/DDL) serialize on
        the write lock — the commit point — and in MVCC mode absorb their
        own deltas before releasing, so readers always find
        published-fresh language layers and never wait.

        ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` open a multi-statement
        transaction scope: BEGIN acquires the write lock and *holds* it
        until the closing statement, while concurrent readers keep
        answering lock-free from the pinned pre-transaction overlay
        snapshot.  Statements between BEGIN and COMMIT join the open
        transaction (serialized on the transaction gate).
        """
        head = sql.lstrip().lower()
        word = head.split(None, 1)[0].rstrip(";") if head else ""
        if word in ("begin", "commit", "rollback") or self._txn_open:
            return self._execute_in_transaction(sql, word)
        if head.startswith("select"):
            with self._read_access():
                if not self._mvcc:
                    return self._nli.engine.execute(sql)
                with self.database.snapshot() as snapshot:
                    return self._nli.engine.execute(sql, snapshot=snapshot)
        if head.startswith(_READ_ONLY_PREFIXES):
            # EXPLAIN: the engine plans against a snapshot it pins itself
            # (the committed overlay during an open transaction).
            with self._read_access():
                return self._nli.engine.execute(sql)
        with self._lock.write_locked():
            if not self._mvcc:
                result = self._nli.engine.execute(sql)
            else:
                # Commit point: the statement and the layer publish share
                # one database statement scope, so a reader pinning its
                # (layers, snapshot) pair lands entirely before or
                # entirely after this commit — never between the data
                # change and the refreshed language layers.
                with self.database.statement_scope():
                    result = self._nli.engine.execute(sql)
                    self._nli.refresh_if_needed()
        # The write is visible and the lock released: wake subscriptions
        # whose stamped tables this statement touched (set intersection
        # only — an unrelated write costs an idle subscription nothing).
        self._subscriptions.commit()
        return result

    def _execute_in_transaction(self, sql: str, word: str) -> ResultSet:
        """One statement on the transaction path.

        The gate serializes transaction control: a second client's BEGIN
        waits here until the first transaction closes (its COMMIT releases
        the write lock the gate-holder then acquires).  Statement errors
        inside an open transaction leave it open — the client decides
        whether to ROLLBACK — but a failed BEGIN releases everything.
        """
        engine = self._nli.engine
        with self._txn_gate:
            if not self._txn_open:
                if word != "begin":
                    # Stray COMMIT/ROLLBACK (or a race with a transaction
                    # that just closed): uniform engine TransactionError.
                    return engine.execute(sql)
                self._lock.acquire_write()
                try:
                    result = engine.execute(sql)
                except BaseException:
                    self._lock.release_write()
                    raise
                self._txn_open = True
                return result
            if word in ("commit", "rollback"):
                try:
                    return engine.execute(sql)
                finally:
                    # The engine hook published fresh layers inside the
                    # closing scope; only then does the commit point open
                    # up.  If COMMIT failed with the transaction still
                    # open (WAL flush error), keep holding — the client
                    # can still ROLLBACK.
                    if not engine.transactions.active:
                        self._txn_open = False
                        self._lock.release_write()
                        # Transaction closed (committed or rolled back):
                        # notify subscriptions once, for the whole batch.
                        # A rollback that restored the old rows is pushed
                        # nowhere — re-evaluation dedupes by content.
                        self._subscriptions.commit()
            # Any other statement joins the open transaction and runs
            # against live storage (seeing the transaction's own writes);
            # a nested BEGIN lands here too and raises in the engine
            # without disturbing the open transaction.
            return engine.execute(sql)

    # -- observability -----------------------------------------------------

    def data_stamp(self) -> tuple[int, int]:
        """Identity of the current committed data version — the stamp a
        snapshot pinned right now would carry.  One write (to any table)
        or catalog DDL changes it; response caches key serialized answers
        by it so a stale entry can never be served across versions."""
        database = self.database
        overlay = database.txn_overlay
        if overlay is not None:
            # An open transaction: readers see the pinned pre-transaction
            # overlay, so the *committed* identity is the overlay's stamp,
            # not the live (uncommitted) version counters.
            return overlay.stamp
        return (database.catalog_version, database.version)

    @property
    def lock_stats(self) -> dict[str, int]:
        """RW-lock counters, with the MVCC reader gauge merged in: in MVCC
        mode readers never touch the lock, so their acquisitions and
        high-water overlap are counted by the service and folded into the
        same keys the benchmarks and tests have always asserted on."""
        out = dict(self._lock.stats)
        with self._reader_gauge_lock:
            out["read_acquires"] += self._reader_stats["read_acquires"]
            out["max_concurrent_readers"] = max(
                out["max_concurrent_readers"],
                self._reader_stats["max_concurrent_readers"],
            )
        return out

    @property
    def stats(self) -> dict[str, Any]:
        """Pipeline counters plus lock/limiter/storage/session counters."""
        out: dict[str, Any] = dict(self._nli.stats)
        for key, value in self.lock_stats.items():
            out[f"lock_{key}"] = value
        out["snapshot_pins"] = self.database.snapshot_pins
        if self._limiter is not None:
            out["rate_allowed"] = self._limiter.stats["allowed"]
            out["rate_limited"] = self._limiter.stats["limited"]
        if self._storage is not None:
            for key, value in self._storage.stats().items():
                out[f"storage_{key}"] = value
        with self._sessions_lock:
            out["open_sessions"] = len(self._sessions)
            out["parked_clarifications"] = len(self._parked)
        subs = self._subscriptions.stats_snapshot()
        out["subscriptions_active"] = subs.pop("subscriptions_active")
        out["subscriptions_opened"] = subs.pop("subscriptions_opened")
        for key, value in subs.items():
            out[f"subscription_{key}"] = value
        return out
