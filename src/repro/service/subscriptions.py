"""Standing subscriptions: live questions re-evaluated per relevant commit.

``NliService.subscribe("how many ships are there?")`` parses the
question **once**, caches the winning interpretation as the standing
plan, and stamps the subscription with the set of tables its generated
SQL reads (:func:`~repro.sqlengine.ast_nodes.referenced_tables` — the
same dependency set the plan cache uses).  From then on the
subscription is pure bookkeeping:

* **An idle subscription does zero work per unrelated write.**  The
  commit point hands the registry the set of tables the commit touched;
  a subscription whose stamp does not intersect is never re-evaluated —
  not re-parsed, not re-planned, not re-executed.  The only cost of an
  unrelated write is one set intersection.
* **A relevant commit re-evaluates against a pinned MVCC snapshot.**
  The evaluator thread pins one atomic (language-layers, snapshot) pair
  — exactly what :meth:`ask` pins — regenerates SQL from the cached
  interpretation, executes, and pushes the fresh answer envelope, so a
  pushed answer can never mix rows from two commits.
* **Bounded queues, drop-oldest.**  Every subscription owns a bounded
  frame queue; a slow consumer loses the *oldest* frames first (each
  frame is a complete answer, so the newest is always the one worth
  keeping) and ``dropped`` counts what it missed.
* **Coalescing.**  Re-evaluation happens on a dedicated daemon thread,
  so a burst of relevant commits costs at most one evaluation per drain
  — and an answer identical to the last pushed one (e.g. after a
  rolled-back transaction restored the rows) is not pushed again.

Frames are plain JSON dicts (``{"type": "answer", "subscription", "seq",
"stamp", "envelope"}``) — the HTTP streaming endpoint writes them to the
wire verbatim (``docs/streaming.md``).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.core.answer import Answer
from repro.core.paraphrase import paraphrase as make_paraphrase
from repro.errors import EngineError, NliError, ParseFailure
from repro.service.response import EXECUTION_ERROR, Diagnostic, Response, Status
from repro.sqlengine.ast_nodes import referenced_tables
from repro.sqlengine.table import TableDelta

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import NliService

__all__ = [
    "DEFAULT_QUEUE_FRAMES",
    "Subscription",
    "SubscriptionFailed",
    "SubscriptionRegistry",
]

#: Default per-subscription frame-queue bound (drop-oldest beyond it).
DEFAULT_QUEUE_FRAMES = 64

#: Hard ceiling on client-requested queue bounds.
MAX_QUEUE_FRAMES = 1024


class SubscriptionFailed(NliError):
    """The question could not be planned; carries the failure envelope."""

    def __init__(self, response: Response) -> None:
        message = (
            response.diagnostics[0].message
            if response.diagnostics
            else response.status.value
        )
        super().__init__(message)
        self.response = response


class Subscription:
    """One standing question: cached plan, table stamp, frame queue."""

    def __init__(
        self,
        subscription_id: str,
        question: str,
        session_id: str | None,
        query: Any,
        tables: frozenset[str],
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
    ) -> None:
        self.id = subscription_id
        self.question = question
        self.session_id = session_id
        #: The cached logical plan (the winning interpretation's query);
        #: SQL is regenerated from it per evaluation, never re-parsed.
        self.query = query
        #: Tables the plan reads — the re-evaluation trigger set.
        self.tables = tables
        self.queue_frames = max(1, min(int(queue_frames), MAX_QUEUE_FRAMES))
        self._frames: deque[dict[str, Any]] = deque()
        self._cond = threading.Condition()
        self.closed = False
        #: Digest of the last pushed answer (sql + rows): identical
        #: re-evaluations (e.g. after a rollback) push nothing.
        self._last_digest: int | None = None
        self.seq = 0
        self.stats = {"evaluations": 0, "pushes": 0, "dropped": 0}

    # -- producer side (registry evaluator thread) -------------------------

    def push(self, frame: dict[str, Any]) -> None:
        with self._cond:
            if self.closed:
                return
            while len(self._frames) >= self.queue_frames:
                self._frames.popleft()
                self.stats["dropped"] += 1
            self._frames.append(frame)
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    # -- consumer side (HTTP stream / CLI / tests) -------------------------

    def next_frame(self, timeout: float | None = None) -> dict[str, Any] | None:
        """Block for the next frame.

        Returns ``None`` on timeout — the streaming layer's heartbeat
        tick — and raises nothing on close: a closed, drained
        subscription returns the ``{"type": "closed"}`` sentinel so the
        consumer can end the stream cleanly.
        """
        with self._cond:
            while not self._frames:
                if self.closed:
                    return {"type": "closed", "subscription": self.id}
                if not self._cond.wait(timeout):
                    return None
            return self._frames.popleft()


class SubscriptionRegistry:
    """All standing subscriptions of one service, plus their evaluator.

    The registry listens to the database's row-level deltas (buffering
    only *table names*), and the service's commit points call
    :meth:`commit` once the write is visible: touched tables are matched
    against every subscription's stamp, and only intersecting
    subscriptions are marked dirty and handed to the evaluator thread.
    """

    def __init__(self, service: "NliService") -> None:
        self._service = service
        self._subs: dict[str, Subscription] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._dirty: set[str] = set()
        #: Tables touched by deltas since the last commit() drain.
        self._pending_tables: set[str] = set()
        self._pending_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False
        self.stats = {
            "subscriptions_opened": 0,
            "evaluations": 0,
            "pushes": 0,
            "dropped_frames": 0,
            "irrelevant_commits": 0,
        }

    # -- delta intake ------------------------------------------------------

    def on_delta(self, delta: TableDelta) -> None:
        """Database mutation callback: remember the table, nothing else."""
        with self._pending_lock:
            self._pending_tables.add(delta.table)

    def commit(self) -> None:
        """A commit point closed: wake the evaluator for affected subs.

        Called by the service *after* the write is visible (outside the
        write lock).  The unrelated-write path is one lock, one set swap
        and one intersection per subscription — no plan work.
        """
        with self._pending_lock:
            if not self._pending_tables:
                return
            touched, self._pending_tables = self._pending_tables, set()
        with self._lock:
            if self._closed or not self._subs:
                return
            hit = [sub.id for sub in self._subs.values() if sub.tables & touched]
            if not hit:
                self.stats["irrelevant_commits"] += 1
                return
            self._dirty.update(hit)
            self._wake.notify()

    # -- registration ------------------------------------------------------

    def register(
        self,
        question: str,
        session_id: str | None = None,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
    ) -> Subscription:
        """Parse once, cache the plan, push the initial answer frame.

        Raises :class:`SubscriptionFailed` (carrying the failure
        envelope) when the question cannot be answered — a question that
        fails now would fail identically on every push.
        """
        response = self._service.ask(question, session=session_id)
        if response.status is not Status.ANSWERED:
            raise SubscriptionFailed(response)
        answer = response.answer
        assert answer is not None and answer.interpretation is not None
        nli = self._service.nli
        layers, snapshot = nli._pin()
        try:
            select = layers.sqlgen.generate(answer.interpretation.query)
            tables = referenced_tables(select)
            stamp = snapshot.stamp
        finally:
            snapshot.close()
        with self._lock:
            if self._closed:
                raise NliError("service is closed")
            sub = Subscription(
                f"sub-{next(self._ids)}",
                question,
                session_id,
                answer.interpretation.query,
                tables,
                queue_frames=queue_frames,
            )
            self._subs[sub.id] = sub
            self.stats["subscriptions_opened"] += 1
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="nli-subscriptions", daemon=True
                )
                self._thread.start()
        sub.stats["evaluations"] += 1  # the registration parse/execute
        self.stats["evaluations"] += 1
        self._push_answer(sub, response, stamp)
        return sub

    def unsubscribe(self, subscription_id: str) -> bool:
        with self._lock:
            sub = self._subs.pop(subscription_id, None)
            self._dirty.discard(subscription_id)
        if sub is None:
            return False
        sub.close()
        return True

    def get(self, subscription_id: str) -> Subscription | None:
        with self._lock:
            return self._subs.get(subscription_id)

    def active(self) -> list[Subscription]:
        with self._lock:
            return list(self._subs.values())

    def close(self) -> None:
        with self._lock:
            self._closed = True
            subs = list(self._subs.values())
            self._subs.clear()
            self._dirty.clear()
            self._wake.notify()
        for sub in subs:
            sub.close()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5)

    # -- evaluation --------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._dirty and not self._closed:
                    self._wake.wait()
                if self._closed:
                    return
                ids, self._dirty = self._dirty, set()
                subs = [self._subs[i] for i in ids if i in self._subs]
            for sub in subs:
                try:
                    self._evaluate(sub)
                except Exception:  # noqa: BLE001 - keep the loop alive
                    continue

    def _evaluate(self, sub: Subscription) -> None:
        """Re-run the cached plan against one pinned MVCC snapshot."""
        service = self._service
        nli = service.nli
        sub.stats["evaluations"] += 1
        with self._lock:
            self.stats["evaluations"] += 1
        with service._read_access():
            layers, snapshot = nli._pin()
            try:
                try:
                    select = layers.sqlgen.generate(sub.query)
                    sql = select.render()
                    # Re-stamp: value references regenerate against the
                    # current layers, so the trigger set tracks the plan.
                    sub.tables = referenced_tables(select)
                    result = nli.engine.execute(select, snapshot=snapshot)
                    stamp = snapshot.stamp
                except (NliError, EngineError) as exc:
                    self._push_error(sub, exc, snapshot.stamp)
                    return
            finally:
                snapshot.close()
        answer = Answer(
            question=sub.question,
            normalized_words=[],
            corrections=[],
            interpretation=None,
            sql=sql,
            result=result,
            paraphrase=make_paraphrase(sub.query),
        )
        self._push_answer(sub, Response.answered(sub.question, answer), stamp)

    def _push_answer(self, sub: Subscription, response: Response, stamp: Any) -> None:
        envelope = response.to_dict()
        answer = envelope.get("answer") or {}
        digest = hash(
            (
                answer.get("sql"),
                tuple(tuple(row) for row in answer.get("rows", ())),
            )
        )
        if digest == sub._last_digest:
            return  # e.g. a rollback restored exactly the old rows
        sub._last_digest = digest
        self._push(sub, "answer", envelope, stamp)

    def _push_error(self, sub: Subscription, exc: Exception, stamp: Any) -> None:
        envelope = Response(
            status=Status.FAILED,
            question=sub.question,
            diagnostics=(Diagnostic(EXECUTION_ERROR, str(exc)),),
            error_type=type(exc).__name__,
        ).to_dict()
        sub._last_digest = None
        self._push(sub, "error", envelope, stamp)

    def _push(
        self, sub: Subscription, kind: str, envelope: dict[str, Any], stamp: Any
    ) -> None:
        frame = {
            "type": kind,
            "subscription": sub.id,
            "seq": sub.seq,
            "stamp": list(stamp) if isinstance(stamp, tuple) else stamp,
            "envelope": envelope,
        }
        sub.seq += 1
        before = sub.stats["dropped"]
        sub.push(frame)
        sub.stats["pushes"] += 1
        with self._lock:
            self.stats["pushes"] += 1
            self.stats["dropped_frames"] += sub.stats["dropped"] - before

    # -- observability -----------------------------------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        with self._lock:
            out = dict(self.stats)
            out["subscriptions_active"] = len(self._subs)
        return out


# Referenced lazily by register(); imported here so a ParseFailure in
# service.ask shows up as the familiar type for callers that catch it.
_ = ParseFailure
