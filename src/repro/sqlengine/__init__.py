"""A from-scratch in-memory relational engine with a SQL subset.

Public surface::

    from repro.sqlengine import Database, Engine, TableSchema, Column, SqlType

    db = Database()
    engine = Engine(db)
    engine.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    engine.execute("INSERT INTO t VALUES (1, 'alpha')")
    engine.execute("SELECT name FROM t WHERE id = 1").scalar()
"""

from repro.sqlengine.csvio import dump_csv, dump_database_csv, load_csv
from repro.sqlengine.database import Database
from repro.sqlengine.executor import Engine
from repro.sqlengine.parser import parse_select, parse_sql
from repro.sqlengine.plancache import LruCache, PlanCache
from repro.sqlengine.result import ResultSet
from repro.sqlengine.schema import Column, ForeignKey, TableSchema
from repro.sqlengine.snapshot import DatabaseSnapshot, TableSnapshot
from repro.sqlengine.statistics import ColumnStats, TableStatistics
from repro.sqlengine.table import Table, TableDelta
from repro.sqlengine.types import SqlType

__all__ = [
    "Column",
    "ColumnStats",
    "Database",
    "DatabaseSnapshot",
    "Engine",
    "ForeignKey",
    "LruCache",
    "PlanCache",
    "ResultSet",
    "SqlType",
    "Table",
    "TableDelta",
    "TableSchema",
    "TableSnapshot",
    "TableStatistics",
    "dump_csv",
    "dump_database_csv",
    "load_csv",
    "parse_select",
    "parse_sql",
]
