"""Aggregate functions over groups of values.

Aggregates follow SQL semantics: NULL inputs are skipped; ``COUNT(*)``
counts rows; an empty group yields NULL for everything except COUNT
(which yields 0).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ExecutionError

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


def _non_null(values: Iterable[Any]) -> list[Any]:
    return [v for v in values if v is not None]


def _numeric(values: list[Any], fn_name: str) -> list[float | int]:
    out: list[float | int] = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"{fn_name}() requires numeric input, got {value!r}")
        out.append(value)
    return out


def agg_count(values: Iterable[Any], distinct: bool = False) -> int:
    kept = _non_null(values)
    if distinct:
        return len(set(kept))
    return len(kept)


def agg_count_star(row_count: int) -> int:
    return row_count


def agg_sum(values: Iterable[Any], distinct: bool = False) -> Any:
    kept = _numeric(_non_null(values), "sum")
    if distinct:
        kept = list(set(kept))
    if not kept:
        return None
    return sum(kept)


def agg_avg(values: Iterable[Any], distinct: bool = False) -> Any:
    kept = _numeric(_non_null(values), "avg")
    if distinct:
        kept = list(set(kept))
    if not kept:
        return None
    return sum(kept) / len(kept)


def agg_min(values: Iterable[Any], distinct: bool = False) -> Any:
    kept = _non_null(values)
    if not kept:
        return None
    try:
        return min(kept)
    except TypeError as exc:
        raise ExecutionError("min() over incomparable values") from exc


def agg_max(values: Iterable[Any], distinct: bool = False) -> Any:
    kept = _non_null(values)
    if not kept:
        return None
    try:
        return max(kept)
    except TypeError as exc:
        raise ExecutionError("max() over incomparable values") from exc


AGGREGATES = {
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
}
