"""AST node definitions for the SQL subset.

All nodes are frozen dataclasses; ``render()`` reproduces valid SQL text so
generated queries can round-trip through the parser (tested property).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class Node:
    """Base class for AST nodes."""

    def render(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions."""


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool or None (NULL)."""

    value: Any

    def render(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A column reference, optionally qualified by table or alias."""

    name: str
    table: str | None = None

    def render(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: str | None = None

    def render(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-', 'NOT'
    operand: Expr

    def render(self) -> str:
        if self.op.upper() == "NOT":
            return f"NOT ({self.operand.render()})"
        return f"{self.op}({self.operand.render()})"


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # arithmetic: + - * / %, comparison: = != < <= > >=, logic: AND OR
    left: Expr
    right: Expr

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Aggregate or scalar function call."""

    name: str
    args: tuple[Expr, ...] = ()
    distinct: bool = False

    def render(self) -> str:
        inner = ", ".join(arg.render() for arg in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name.upper()}({inner})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def render(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.render()} {suffix})"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def render(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.render()} {word} "
            f"{self.low.render()} AND {self.high.render()})"
        )


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def render(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        inner = ", ".join(item.render() for item in self.items)
        return f"({self.operand.render()} {word} ({inner}))"


@dataclass(frozen=True)
class InSubquery(Expr):
    operand: Expr
    subquery: "Select"
    negated: bool = False

    def render(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"({self.operand.render()} {word} ({self.subquery.render()}))"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    subquery: "Select"

    def render(self) -> str:
        return f"({self.subquery.render()})"


@dataclass(frozen=True)
class Exists(Expr):
    subquery: "Select"
    negated: bool = False

    def render(self) -> str:
        word = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{word} ({self.subquery.render()})"


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def render(self) -> str:
        word = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.render()} {word} {self.pattern.render()})"


# --------------------------------------------------------------------------
# Select machinery
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """One item of the select list, optionally aliased."""

    expr: Expr
    alias: str | None = None

    def render(self) -> str:
        if self.alias:
            return f"{self.expr.render()} AS {self.alias}"
        return self.expr.render()


@dataclass(frozen=True)
class TableRef(Node):
    """A FROM-clause table with optional alias."""

    name: str
    alias: str | None = None

    def render(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name

    @property
    def binding(self) -> str:
        """The name this table is visible under in the query scope."""
        return self.alias or self.name


@dataclass(frozen=True)
class Join(Node):
    """An explicit join: ``<left> JOIN <table> ON <condition>``."""

    table: TableRef
    condition: Expr | None
    kind: str = "INNER"  # INNER | LEFT | CROSS

    def render(self) -> str:
        prefix = {"INNER": "JOIN", "LEFT": "LEFT JOIN", "CROSS": "CROSS JOIN"}[
            self.kind
        ]
        if self.condition is None:
            return f"{prefix} {self.table.render()}"
        return f"{prefix} {self.table.render()} ON {self.condition.render()}"


@dataclass(frozen=True)
class OrderItem(Node):
    expr: Expr
    descending: bool = False

    def render(self) -> str:
        return f"{self.expr.render()} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class Select(Node):
    """A full SELECT statement (usable as a subquery)."""

    items: tuple[SelectItem, ...]
    from_table: TableRef | None = None
    joins: tuple[Join, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def render(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.render() for item in self.items))
        if self.from_table is not None:
            parts.append("FROM")
            parts.append(self.from_table.render())
            for join in self.joins:
                parts.append(join.render())
        if self.where is not None:
            parts.append(f"WHERE {self.where.render()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.render() for g in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.render()}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.render() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


# --------------------------------------------------------------------------
# Other statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef(Node):
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    references: tuple[str, str] | None = None  # (table, column)

    def render(self) -> str:
        parts = [self.name, self.type_name]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        if self.not_null:
            parts.append("NOT NULL")
        if self.references:
            parts.append(f"REFERENCES {self.references[0]}({self.references[1]})")
        return " ".join(parts)


@dataclass(frozen=True)
class CreateTable(Node):
    name: str
    columns: tuple[ColumnDef, ...]

    def render(self) -> str:
        inner = ", ".join(col.render() for col in self.columns)
        return f"CREATE TABLE {self.name} ({inner})"


@dataclass(frozen=True)
class Insert(Node):
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]

    def render(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        rows = ", ".join(
            "(" + ", ".join(v.render() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass(frozen=True)
class Delete(Node):
    table: str
    where: Expr | None = None

    def render(self) -> str:
        tail = f" WHERE {self.where.render()}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{tail}"


@dataclass(frozen=True)
class Update(Node):
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None

    def render(self) -> str:
        sets = ", ".join(f"{col} = {expr.render()}" for col, expr in self.assignments)
        tail = f" WHERE {self.where.render()}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{tail}"


@dataclass(frozen=True)
class BeginTransaction(Node):
    """``BEGIN [TRANSACTION|WORK]`` — open a multi-statement transaction."""

    def render(self) -> str:
        return "BEGIN"


@dataclass(frozen=True)
class CommitTransaction(Node):
    """``COMMIT [TRANSACTION|WORK]`` — make the open transaction durable."""

    def render(self) -> str:
        return "COMMIT"


@dataclass(frozen=True)
class RollbackTransaction(Node):
    """``ROLLBACK [TRANSACTION|WORK]`` — restore the pre-transaction state."""

    def render(self) -> str:
        return "ROLLBACK"


@dataclass(frozen=True)
class Explain(Node):
    """``EXPLAIN <select>`` — describe the physical plan, one row per line."""

    query: Select

    def render(self) -> str:
        return f"EXPLAIN {self.query.render()}"


Statement = (
    Select
    | CreateTable
    | Insert
    | Delete
    | Update
    | Explain
    | BeginTransaction
    | CommitTransaction
    | RollbackTransaction
)


def walk(expr: Expr):
    """Yield ``expr`` and all sub-expressions, depth-first."""
    yield expr
    if isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, IsNull):
        yield from walk(expr.operand)
    elif isinstance(expr, Between):
        yield from walk(expr.operand)
        yield from walk(expr.low)
        yield from walk(expr.high)
    elif isinstance(expr, InList):
        yield from walk(expr.operand)
        for item in expr.items:
            yield from walk(item)
    elif isinstance(expr, (InSubquery, Like)):
        yield from walk(expr.operand)
        if isinstance(expr, Like):
            yield from walk(expr.pattern)


def contains_aggregate(expr: Expr, aggregate_names: frozenset[str]) -> bool:
    """True when ``expr`` contains a call to any aggregate function."""
    return any(
        isinstance(node, FunctionCall) and node.name.lower() in aggregate_names
        for node in walk(expr)
    )


def referenced_tables(select: "Select") -> frozenset[str]:
    """All table names a SELECT reads from, including inside subqueries.

    This is the dependency set the plan cache stamps entries with: a cached
    plan/result is valid only while the version of *every* referenced table
    is unchanged.  Unlike :func:`walk` (expressions only), this descends
    into ``IN (SELECT ...)``, scalar subqueries and ``EXISTS``.
    """
    found: set[str] = set()

    def visit_expr(expr: Expr) -> None:
        for node in walk(expr):
            if isinstance(node, (InSubquery, ScalarSubquery, Exists)):
                visit_select(node.subquery)

    def visit_select(node: Select) -> None:
        if node.from_table is not None:
            found.add(node.from_table.name.lower())
        for join in node.joins:
            found.add(join.table.name.lower())
            if join.condition is not None:
                visit_expr(join.condition)
        for item in node.items:
            if not isinstance(item.expr, Star):
                visit_expr(item.expr)
        for clause in (node.where, node.having):
            if clause is not None:
                visit_expr(clause)
        for group in node.group_by:
            visit_expr(group)
        for order in node.order_by:
            visit_expr(order.expr)

    visit_select(select)
    return frozenset(found)
