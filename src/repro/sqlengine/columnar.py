"""Columnar batch execution kernels for the hot SELECT path.

The row interpreter in :mod:`~repro.sqlengine.executor` evaluates every
expression by allocating an :class:`~repro.sqlengine.expressions.Env` per
row and dispatching through the :class:`Evaluator` — correct, but the
per-row overhead dominates large scans and joins.  This module compiles a
plan into *kernels* that run the same operators over batches:

* a :class:`Batch` is shared row storage plus a selection vector of live
  positions — filters narrow the selection without copying rows, and
  output tuples materialize late (at joins and at projection);
* scan predicates compile to **selectors** — tight list-comprehension
  loops over one column (``[i for i in sel if rows[i][pos] > lit]``) when
  the predicate's shape and the column's declared type guarantee the loop
  cannot raise; anything else compiles to a per-row closure with exactly
  the row evaluator's semantics (Kleene AND/OR short-circuit, NULL
  propagation, error checks in the same order);
* hash joins compile their key and residual expressions to closures and
  run the executor's exact build/probe loops without Env allocation.

Coverage is per node: a construct the compiler does not handle (subquery,
outer-row reference, unknown function, ambiguous column) simply leaves
that node without a kernel and the executor's row path runs it — the two
paths compose within one plan.  Every covered construct replicates the
row evaluator's observable behaviour: the same rows, in the same order,
and an exception raised for exactly the same row/operand evaluations.
Nodes that received a kernel report ``columnar=true`` in EXPLAIN.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import ExecutionError, UnknownColumnError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.expressions import Evaluator, Scope, like_to_regex
from repro.sqlengine.functions import SCALAR_FUNCTIONS
from repro.sqlengine.planner import (
    FilterNode,
    HashJoinNode,
    JoinNode,
    PlanNode,
    ReorderNode,
    ScanNode,
)
from repro.sqlengine.types import SqlType, compare_values, is_numeric

#: A compiled expression: value of the expression for one row tuple.
RowFn = Callable[[tuple], Any]

#: A compiled scan predicate: narrows a selection over shared storage.
SelectorFn = Callable[[list, Iterable[int]], list]


def join_key(value: Any) -> Any:
    """Normalise numeric join keys so 1 and 1.0 land in one bucket."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class Batch:
    """Shared row storage plus the selection of live positions.

    ``rows`` may be a table's internal storage (with ``None`` tombstones)
    or an operator's materialized output; ``sel`` holds the positions that
    are part of the batch, in output order.
    """

    __slots__ = ("rows", "sel")

    def __init__(self, rows: list, sel: Iterable[int]) -> None:
        self.rows = rows
        self.sel = sel

    def materialize(self) -> list[tuple[Any, ...]]:
        rows = self.rows
        return [rows[i] for i in self.sel]


# -- expression compilation ----------------------------------------------------

_CMP_OPS: dict[str, Callable[[int], bool]] = {
    "=": lambda c: c == 0,
    "!=": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


def compile_expr(expr: ast.Expr, scope: Scope) -> RowFn | None:
    """Compile ``expr`` to a closure over one row tuple, or None.

    The closure reproduces :class:`Evaluator` exactly — value, NULL
    semantics, evaluation order and raised errors — without Env
    allocation or dispatch.  ``None`` means the construct is not covered
    (subqueries, outer-row references, unknown functions/operators,
    ambiguous columns): the caller falls back to the row path, which
    either handles it or surfaces the identical error.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.ColumnRef):
        try:
            pos = scope.resolve(expr.name, expr.table)
        except UnknownColumnError:
            return None  # ambiguous: the row path raises it per query
        if pos is None:
            return None  # outer-environment reference
        return lambda row: row[pos]
    if isinstance(expr, ast.UnaryOp):
        fn = compile_expr(expr.operand, scope)
        if fn is None:
            return None
        if expr.op.upper() == "NOT":

            def not_fn(row: tuple) -> Any:
                value = fn(row)
                return None if value is None else (not value)

            return not_fn
        if expr.op == "-":

            def neg_fn(row: tuple) -> Any:
                value = fn(row)
                if value is None:
                    return None
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ExecutionError(f"cannot negate {value!r}")
                return -value

            return neg_fn
        return None
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, scope)
    if isinstance(expr, ast.FunctionCall):
        fn = SCALAR_FUNCTIONS.get(expr.name.lower())
        if fn is None:
            return None  # unknown function / aggregate: row path raises
        arg_fns = [compile_expr(arg, scope) for arg in expr.args]
        if any(arg_fn is None for arg_fn in arg_fns):
            return None
        return lambda row: fn(*[arg_fn(row) for arg_fn in arg_fns])
    if isinstance(expr, ast.IsNull):
        fn = compile_expr(expr.operand, scope)
        if fn is None:
            return None
        if expr.negated:
            return lambda row: fn(row) is not None
        return lambda row: fn(row) is None
    if isinstance(expr, ast.Between):
        return _compile_between(expr, scope)
    if isinstance(expr, ast.Like):
        return _compile_like(expr, scope)
    if isinstance(expr, ast.InList):
        return _compile_in_list(expr, scope)
    return None  # subqueries, Star, anything new: row path territory


def _compile_binary(expr: ast.BinaryOp, scope: Scope) -> RowFn | None:
    lf = compile_expr(expr.left, scope)
    rf = compile_expr(expr.right, scope)
    if lf is None or rf is None:
        return None
    op = expr.op.upper()
    if op == "AND":
        # Kleene AND with the evaluator's exact short-circuit: the right
        # operand is evaluated (and may raise) unless the left is False.
        def and_fn(row: tuple) -> Any:
            left = lf(row)
            if left is False:
                return False
            right = rf(row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True

        return and_fn
    if op == "OR":

        def or_fn(row: tuple) -> Any:
            left = lf(row)
            if left is True:
                return True
            right = rf(row)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False

        return or_fn
    cmp_op = _CMP_OPS.get(expr.op)
    if cmp_op is not None:

        def cmp_fn(row: tuple) -> Any:
            cmp = compare_values(lf(row), rf(row))
            return None if cmp is None else cmp_op(cmp)

        return cmp_fn
    if op == "+":

        def add_fn(row: tuple) -> Any:
            left, right = lf(row), rf(row)
            if left is None or right is None:
                return None
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            return Evaluator._arith(left, right, lambda a, b: a + b, "+")

        return add_fn
    if op in ("-", "*"):
        arith = (lambda a, b: a - b) if op == "-" else (lambda a, b: a * b)

        def sub_mul_fn(row: tuple, arith=arith, op=op) -> Any:
            left, right = lf(row), rf(row)
            if left is None or right is None:
                return None
            return Evaluator._arith(left, right, arith, op)

        return sub_mul_fn
    if op in ("/", "%"):
        message = "division by zero" if op == "/" else "modulo by zero"
        arith = (lambda a, b: a / b) if op == "/" else (lambda a, b: a % b)

        def div_mod_fn(row: tuple, arith=arith, op=op, message=message) -> Any:
            left, right = lf(row), rf(row)
            if left is None or right is None:
                return None
            if right == 0:
                raise ExecutionError(message)
            return Evaluator._arith(left, right, arith, op)

        return div_mod_fn
    return None  # unknown operator: row path raises


def _compile_between(expr: ast.Between, scope: Scope) -> RowFn | None:
    vf = compile_expr(expr.operand, scope)
    lof = compile_expr(expr.low, scope)
    hif = compile_expr(expr.high, scope)
    if vf is None or lof is None or hif is None:
        return None
    negated = expr.negated

    def between_fn(row: tuple) -> Any:
        value, low, high = vf(row), lof(row), hif(row)
        lo_cmp = (
            compare_values(value, low)
            if value is not None and low is not None
            else None
        )
        hi_cmp = (
            compare_values(value, high)
            if value is not None and high is not None
            else None
        )
        if lo_cmp is None or hi_cmp is None:
            return None
        result = lo_cmp >= 0 and hi_cmp <= 0
        return (not result) if negated else result

    return between_fn


def _compile_like(expr: ast.Like, scope: Scope) -> RowFn | None:
    vf = compile_expr(expr.operand, scope)
    pf = compile_expr(expr.pattern, scope)
    if vf is None or pf is None:
        return None
    negated = expr.negated
    if isinstance(expr.pattern, ast.Literal) and isinstance(expr.pattern.value, str):
        regex = like_to_regex(expr.pattern.value)

        def like_lit_fn(row: tuple) -> Any:
            value = vf(row)
            if value is None:
                return None
            if not isinstance(value, str):
                raise ExecutionError("LIKE requires string operands")
            result = regex.match(value) is not None
            return (not result) if negated else result

        return like_lit_fn

    def like_fn(row: tuple) -> Any:
        value, pattern = vf(row), pf(row)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise ExecutionError("LIKE requires string operands")
        result = like_to_regex(pattern).match(value) is not None
        return (not result) if negated else result

    return like_fn


def _compile_in_list(expr: ast.InList, scope: Scope) -> RowFn | None:
    vf = compile_expr(expr.operand, scope)
    if vf is None:
        return None
    item_fns = [compile_expr(item, scope) for item in expr.items]
    if any(item_fn is None for item_fn in item_fns):
        return None
    negated = expr.negated

    def in_fn(row: tuple) -> Any:
        value = vf(row)
        if value is None:
            return None
        saw_null = False
        for item_fn in item_fns:
            candidate = item_fn(row)
            if candidate is None:
                saw_null = True
                continue
            if compare_values(value, candidate) == 0:
                return not negated
        if saw_null:
            return None
        return negated

    return in_fn


# -- fused scan selectors ------------------------------------------------------


def _literal_of(expr: ast.Expr) -> tuple[bool, Any]:
    """Literal (or negated numeric literal) value of ``expr``."""
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and expr.op == "-"
        and isinstance(expr.operand, ast.Literal)
    ):
        value = expr.operand.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return True, -value
    return False, None


def _typed_column(expr: ast.Expr, scope: Scope, schema: Any) -> tuple[int, Any] | None:
    """(position, sql_type) when ``expr`` is a column of this scan."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    if not schema.has_column(expr.name):
        return None
    try:
        pos = scope.resolve(expr.name, expr.table)
    except UnknownColumnError:
        return None
    if pos is None:
        return None
    return pos, schema.column(expr.name).sql_type


def _fits(sql_type: Any, value: Any) -> bool:
    """True when comparing ``value`` against the column cannot type-error.

    Mirrors the optimizer's index-hint gate: declared column types
    guarantee stored values share the literal's comparison family, so the
    fused loop can use plain Python operators.
    """
    if isinstance(value, bool):
        return sql_type is SqlType.BOOL
    if isinstance(value, (int, float)):
        return is_numeric(sql_type)
    if isinstance(value, str):
        return sql_type is SqlType.TEXT
    return False


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _fused_selector(conjunct: ast.Expr, scope: Scope, schema: Any) -> SelectorFn | None:
    """A no-raise tight-loop selector for a common predicate shape, or None.

    Only produced when the declared column type guarantees the comparison
    cannot raise — everything else goes through the generic compiled
    predicate, which replicates the evaluator's error behaviour.
    """
    if isinstance(conjunct, ast.IsNull):
        col = _typed_column(conjunct.operand, scope, schema)
        if col is None:
            return None
        pos = col[0]
        if conjunct.negated:
            return lambda rows, sel: [i for i in sel if rows[i][pos] is not None]
        return lambda rows, sel: [i for i in sel if rows[i][pos] is None]
    if isinstance(conjunct, ast.Between):
        col = _typed_column(conjunct.operand, scope, schema)
        lo_lit, low = _literal_of(conjunct.low)
        hi_lit, high = _literal_of(conjunct.high)
        if col is None or not lo_lit or not hi_lit:
            return None
        pos, sql_type = col
        if not _fits(sql_type, low) or not _fits(sql_type, high):
            return None
        if conjunct.negated:
            return lambda rows, sel: [
                i
                for i in sel
                if (v := rows[i][pos]) is not None and not low <= v <= high
            ]
        return lambda rows, sel: [
            i for i in sel if (v := rows[i][pos]) is not None and low <= v <= high
        ]
    if isinstance(conjunct, ast.InList):
        col = _typed_column(conjunct.operand, scope, schema)
        if col is None:
            return None
        pos, sql_type = col
        values = []
        for item in conjunct.items:
            is_lit, value = _literal_of(item)
            if not is_lit or value is None or not _fits(sql_type, value):
                return None  # NULL items need three-valued IN semantics
            values.append(value)
        members = frozenset(values)
        if conjunct.negated:
            return lambda rows, sel: [
                i for i in sel if (v := rows[i][pos]) is not None and v not in members
            ]
        return lambda rows, sel: [
            i for i in sel if (v := rows[i][pos]) is not None and v in members
        ]
    if isinstance(conjunct, ast.Like) and isinstance(conjunct.pattern, ast.Literal):
        pattern = conjunct.pattern.value
        col = _typed_column(conjunct.operand, scope, schema)
        if col is None or not isinstance(pattern, str):
            return None
        pos, sql_type = col
        if sql_type is not SqlType.TEXT:
            return None  # non-text operands must raise like the row path
        match = like_to_regex(pattern).match
        if conjunct.negated:
            return lambda rows, sel: [
                i for i in sel if (v := rows[i][pos]) is not None and match(v) is None
            ]
        return lambda rows, sel: [
            i for i in sel if (v := rows[i][pos]) is not None and match(v) is not None
        ]
    if not isinstance(conjunct, ast.BinaryOp) or conjunct.op not in _CMP_OPS:
        return None
    op = conjunct.op
    col = _typed_column(conjunct.left, scope, schema)
    is_lit, literal = _literal_of(conjunct.right)
    if col is None:
        col = _typed_column(conjunct.right, scope, schema)
        is_lit, literal = _literal_of(conjunct.left)
        if op in _FLIP:
            op = _FLIP[op]
    if col is None or not is_lit or literal is None:
        return None
    pos, sql_type = col
    if not _fits(sql_type, literal):
        return None
    if op == "=":
        return lambda rows, sel: [
            i for i in sel if (v := rows[i][pos]) is not None and v == literal
        ]
    if op == "!=":
        return lambda rows, sel: [
            i for i in sel if (v := rows[i][pos]) is not None and v != literal
        ]
    if op == "<":
        return lambda rows, sel: [
            i for i in sel if (v := rows[i][pos]) is not None and v < literal
        ]
    if op == "<=":
        return lambda rows, sel: [
            i for i in sel if (v := rows[i][pos]) is not None and v <= literal
        ]
    if op == ">":
        return lambda rows, sel: [
            i for i in sel if (v := rows[i][pos]) is not None and v > literal
        ]
    return lambda rows, sel: [
        i for i in sel if (v := rows[i][pos]) is not None and v >= literal
    ]


def compile_selector(
    conjunct: ast.Expr, scope: Scope, schema: Any
) -> SelectorFn | None:
    """Compile one scan residual conjunct to a selection-vector narrowing."""
    fused = _fused_selector(conjunct, scope, schema)
    if fused is not None:
        return fused
    pred = compile_expr(conjunct, scope)
    if pred is None:
        return None
    return lambda rows, sel: [i for i in sel if pred(rows[i]) is True]


# -- kernel installation -------------------------------------------------------


def install_kernels(plan: PlanNode, database: Any) -> Scope:
    """Attach columnar kernels bottom-up; returns the plan's output scope.

    Nodes whose expressions fully compile get a ``_kernel`` attribute (a
    callable ``kernel(engine, outer_env) -> (Scope, Batch)``) and have
    ``columnar`` set for EXPLAIN; uncovered nodes are left untouched and
    run on the executor's row path.  Kernels capture only plan structure
    and column positions — never table data — so cached plans revalidate
    against fresh storage on every execution.
    """
    if isinstance(plan, ScanNode):
        return _install_scan(plan, database)
    if isinstance(plan, FilterNode):
        return _install_filter(plan, database)
    if isinstance(plan, HashJoinNode):
        return _install_hash_join(plan, database)
    if isinstance(plan, ReorderNode):
        return _install_reorder(plan, database)
    if isinstance(plan, JoinNode):
        # Nested-loop joins stay on the row path (they are the fallback
        # operator for non-equi conditions), but their inputs may still
        # run columnar kernels underneath.
        left = install_kernels(plan.left, database)
        right = install_kernels(plan.right, database)
        return left.merge(right)
    raise ExecutionError(f"unknown plan node {type(plan).__name__}")


def _install_scan(plan: ScanNode, database: Any) -> Scope:
    schema = database.table(plan.table_name).schema
    scope = Scope([(plan.binding, col) for col in schema.column_names])
    selectors: list[SelectorFn] = []
    for conjunct in plan.residual_filters:
        selector = compile_selector(conjunct, scope, schema)
        if selector is None:
            return scope  # subquery/outer ref residual: row path scan
        selectors.append(selector)
    table_name = plan.table_name

    def kernel(engine: Any, outer_env: Any) -> tuple[Scope, Batch]:
        table = engine._source().table(table_name)
        rows, sel = table.batch_storage()
        candidate_ids = engine._scan_candidate_ids(plan, table)
        if candidate_ids is not None:
            sel = [i for i in sorted(candidate_ids) if rows[i] is not None]
        # Applying selectors in conjunct order over the shrinking selection
        # is exactly the row path's short-circuit across conjuncts: a later
        # predicate only ever evaluates rows the earlier ones accepted.
        for selector in selectors:
            if not sel:
                break
            sel = selector(rows, sel)
        return scope, Batch(rows, sel)

    plan._kernel = kernel
    plan.columnar = True
    return scope


def _install_filter(plan: FilterNode, database: Any) -> Scope:
    scope = install_kernels(plan.child, database)
    pred = compile_expr(plan.predicate, scope)
    if pred is None:
        return scope

    def kernel(engine: Any, outer_env: Any) -> tuple[Scope, Batch]:
        child_scope, batch = engine._run_plan_batch(plan.child, outer_env)
        rows = batch.rows
        sel = [i for i in batch.sel if pred(rows[i]) is True]
        return child_scope, Batch(rows, sel)

    plan._kernel = kernel
    plan.columnar = True
    return scope


def _install_hash_join(plan: HashJoinNode, database: Any) -> Scope:
    left_scope = install_kernels(plan.left, database)
    right_scope = install_kernels(plan.right, database)
    scope = left_scope.merge(right_scope)
    left_key = compile_expr(plan.left_key, left_scope)
    right_key = compile_expr(plan.right_key, right_scope)
    residual: RowFn | None = None
    if plan.residual is not None:
        residual = compile_expr(plan.residual, scope)
        if residual is None:
            return scope
    if left_key is None or right_key is None:
        return scope
    build_left = plan.build == "left" and plan.kind == "INNER"
    left_join = plan.kind == "LEFT"

    def kernel(engine: Any, outer_env: Any) -> tuple[Scope, Batch]:
        lscope, lbatch = engine._run_plan_batch(plan.left, outer_env)
        rscope, rbatch = engine._run_plan_batch(plan.right, outer_env)
        out_scope = lscope.merge(rscope)
        lrows, lsel = lbatch.rows, lbatch.sel
        rrows, rsel = rbatch.rows, rbatch.sel
        buckets: dict[Any, list[tuple[Any, ...]]] = {}
        out: list[tuple[Any, ...]] = []
        if build_left:
            for i in lsel:
                row = lrows[i]
                key = left_key(row)
                if key is None:
                    continue
                buckets.setdefault(join_key(key), []).append(row)
            for j in rsel:
                right_row = rrows[j]
                key = right_key(right_row)
                if key is None:
                    continue
                bucket = buckets.get(join_key(key))
                if not bucket:
                    continue
                if residual is None:
                    for left_row in bucket:
                        out.append(left_row + right_row)
                else:
                    for left_row in bucket:
                        combined = left_row + right_row
                        if residual(combined) is True:
                            out.append(combined)
            return out_scope, Batch(out, range(len(out)))
        for j in rsel:
            row = rrows[j]
            key = right_key(row)
            if key is None:
                continue
            buckets.setdefault(join_key(key), []).append(row)
        null_pad = (None,) * len(rscope)
        for i in lsel:
            left_row = lrows[i]
            key = left_key(left_row)
            matched = False
            if key is not None:
                bucket = buckets.get(join_key(key))
                if bucket:
                    if residual is None:
                        matched = True
                        for right_row in bucket:
                            out.append(left_row + right_row)
                    else:
                        for right_row in bucket:
                            combined = left_row + right_row
                            if residual(combined) is True:
                                matched = True
                                out.append(combined)
            if left_join and not matched:
                out.append(left_row + null_pad)
        return out_scope, Batch(out, range(len(out)))

    plan._kernel = kernel
    plan.columnar = True
    return scope


def _install_reorder(plan: ReorderNode, database: Any) -> Scope:
    child_scope = install_kernels(plan.child, database)
    segments: dict[str, tuple[int, int]] = {}
    for i, (binding, _) in enumerate(child_scope.entries):
        start, _end = segments.get(binding, (i, i))
        segments[binding] = (start, i + 1)
    slices = [slice(*segments[binding]) for binding in plan.order]
    entries: list[tuple[str, str]] = []
    for binding in plan.order:
        start, end = segments[binding]
        entries.extend(child_scope.entries[start:end])
    scope = Scope(entries)

    def kernel(engine: Any, outer_env: Any) -> tuple[Scope, Batch]:
        _child_scope, batch = engine._run_plan_batch(plan.child, outer_env)
        rows = batch.rows
        out = [
            tuple(value for s in slices for value in rows[i][s]) for i in batch.sel
        ]
        return scope, Batch(out, range(len(out)))

    plan._kernel = kernel
    plan.columnar = True
    return scope
