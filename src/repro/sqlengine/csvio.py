"""CSV load/dump for tables — the engine's bulk interchange format."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TextIO

from repro.errors import SchemaError
from repro.sqlengine.database import Database
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType

_NULL_TOKEN = ""


def _parse_cell(text: str, sql_type: SqlType) -> object:
    if text == _NULL_TOKEN:
        return None
    if sql_type is SqlType.INT:
        return int(text)
    if sql_type is SqlType.FLOAT:
        return float(text)
    if sql_type is SqlType.BOOL:
        return text.strip().lower() in ("true", "t", "1", "yes")
    return text


def load_csv(table: Table, source: str | Path | TextIO, header: bool = True) -> int:
    """Load rows from a CSV file/stream into ``table``; returns row count.

    With ``header=True`` the first line must name the columns (any order);
    otherwise cells must appear in schema order.  Empty cells load as NULL.
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="", encoding="utf-8") as handle:
            return load_csv(table, handle, header=header)
    reader = csv.reader(source)
    rows_loaded = 0
    columns = list(table.schema.columns)
    order = list(range(len(columns)))
    first = True
    for record in reader:
        if not record:
            continue
        if first and header:
            first = False
            names = [cell.strip().lower() for cell in record]
            unknown = set(names) - set(table.schema.column_names)
            if unknown:
                raise SchemaError(
                    f"CSV header names unknown columns {sorted(unknown)} "
                    f"for table {table.name!r}"
                )
            order = [names.index(col.name) for col in columns if col.name in names]
            header_cols = [col for col in columns if col.name in names]
            columns = header_cols
            continue
        first = False
        values = {
            col.name: _parse_cell(record[src], col.sql_type)
            for col, src in zip(columns, order)
        }
        table.insert(values)
        rows_loaded += 1
    return rows_loaded


def dump_csv(table: Table, target: str | Path | TextIO | None = None) -> str:
    """Write ``table`` as CSV (header + rows); returns the CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.schema.column_names)
    for row in table.rows():
        writer.writerow(["" if cell is None else cell for cell in row])
    text = buffer.getvalue()
    if isinstance(target, (str, Path)):
        with open(target, "w", newline="", encoding="utf-8") as handle:
            handle.write(text)
    elif target is not None:
        target.write(text)
    return text


def dump_database_csv(database: Database, directory: str | Path) -> list[Path]:
    """Dump every table to ``directory/<table>.csv``; returns written paths."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in database.table_names:
        path = out_dir / f"{name}.csv"
        dump_csv(database.table(name), path)
        written.append(path)
    return written
