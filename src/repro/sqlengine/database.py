"""The database catalog: named tables plus referential-integrity checks."""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import (
    IntegrityError,
    SchemaError,
    TransactionError,
    UnknownTableError,
)
from repro.sqlengine.schema import TableSchema
from repro.sqlengine.statistics import TableStatistics
from repro.sqlengine.table import Table, TableDelta


class Database:
    """A named collection of tables.

    Foreign keys are checked on :meth:`insert` and (both directions) on
    :meth:`update_rows` when ``enforce_fk`` is on (default).  Bulk
    loaders may switch it off and call :meth:`check_integrity` once at
    the end.
    """

    def __init__(self, name: str = "db", enforce_fk: bool = True) -> None:
        self.name = name
        self.enforce_fk = enforce_fk
        self._tables: dict[str, Table] = {}
        #: Global monotone clock.  Every mutation anywhere advances it, and
        #: the mutated table's own stamp is set to the new clock value — so
        #: per-table stamps are unique across the database's whole history
        #: (a dropped-and-recreated table can never echo an old stamp).
        self._clock = 0
        self._catalog_version = 0
        #: Zero-arg holders resolving to a live listener or None (weak for
        #: bound methods, strong otherwise) — see add_delta_listener.
        self._delta_listeners: list[Callable[[], Any]] = []
        #: One reentrant mutation lock shared by every table in this
        #: database (installed as each table's ``_write_lock``): snapshot
        #: capture holds it across all tables, so a pinned view is one
        #: atomic cut of the whole database — never a mix of two commits —
        #: and :meth:`statement_scope` holds it across a multi-row
        #: statement so capture cannot land mid-statement.  Writers are
        #: already serialized above (the service's commit lock), so
        #: sharing one lock adds no write-side contention.
        self._mutation_lock = threading.RLock()
        #: While a multi-statement transaction is open, the pre-BEGIN
        #: snapshot is installed here and :meth:`snapshot` hands readers a
        #: shared proxy over it — so nobody outside the transaction ever
        #: observes uncommitted writes.  See ``begin_overlay``.
        self._txn_overlay: "DatabaseSnapshot | None" = None

    # -- schema/DML versioning ------------------------------------------------

    @property
    def version(self) -> int:
        """Derived summary clock: advanced by every DDL/DML mutation.

        Kept as a cheap "did anything change at all" signal; fine-grained
        consumers should use :meth:`table_version` / :meth:`table_versions`
        so a write to one table does not invalidate state derived from
        others.
        """
        return self._clock

    @property
    def catalog_version(self) -> int:
        """Bumped only by CREATE/DROP TABLE (schema-shape changes)."""
        return self._catalog_version

    def table_version(self, name: str) -> int | None:
        """Current stamp of one table, or None when it does not exist."""
        table = self._tables.get(name.lower())
        return None if table is None else table.version

    def table_versions(self) -> dict[str, int]:
        """Snapshot of every table's version stamp."""
        return {name: table.version for name, table in self._tables.items()}

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # -- MVCC snapshots -------------------------------------------------------

    def snapshot(self) -> "DatabaseSnapshot":
        """Pin an immutable, version-stamped view of every table.

        O(number of tables): the view shares live storage until the next
        write, which detaches by copy-on-write — readers on the snapshot
        never block writers and never observe a half-applied statement.
        Release the pins with ``close()`` / a ``with`` block (a GC
        finalizer covers abandoned snapshots).  See ``docs/concurrency.md``.
        """
        from repro.sqlengine.snapshot import DatabaseSnapshot, SharedSnapshot

        overlay = self._txn_overlay
        if overlay is not None:
            # A transaction is in flight: readers get the committed
            # pre-BEGIN view, never the uncommitted live storage.
            return SharedSnapshot(overlay)
        return DatabaseSnapshot(self)

    # -- transaction overlay --------------------------------------------------

    @property
    def txn_overlay(self) -> "DatabaseSnapshot | None":
        """The pre-transaction snapshot while BEGIN..COMMIT is open."""
        return self._txn_overlay

    def begin_overlay(self) -> "DatabaseSnapshot":
        """Pin the current state and install it as the transaction overlay.

        Until :meth:`clear_overlay`, every :meth:`snapshot` call returns a
        shared proxy over this pinned view; direct table access (the
        transaction's own statements) still sees live storage.
        """
        from repro.sqlengine.snapshot import DatabaseSnapshot

        with self._mutation_lock:
            if self._txn_overlay is not None:
                raise TransactionError("a transaction is already open")
            overlay = DatabaseSnapshot(self)
            self._txn_overlay = overlay
            return overlay

    def clear_overlay(self) -> None:
        """Drop the transaction overlay (COMMIT/ROLLBACK epilogue)."""
        with self._mutation_lock:
            self._txn_overlay = None

    def rollback_to(self, snapshot: "DatabaseSnapshot") -> None:
        """Restore every table to ``snapshot``'s captured state (ROLLBACK).

        Tables created since the snapshot are dropped, dropped ones are
        recreated, and changed ones are restored by *cloning* the
        snapshot's captured storage (the snapshot may still be shared by
        concurrent readers).  Version stamps are restored with the data —
        the bytes match what those stamps described, so pre-transaction
        plan-cache entries become valid again — but the global clock is
        never rewound, and the catalog version is bumped unconditionally
        so derived state (NLI language layers, response caches) rebuilds
        from scratch instead of trusting deltas from the rolled-back
        statements.
        """
        with self._mutation_lock:
            for name in [n for n in self._tables if not snapshot.has_table(n)]:
                self._tables[name]._on_mutation = None
                del self._tables[name]
            for captured in snapshot.tables():
                live = self._tables.get(captured.schema.name)
                if live is None:
                    live = Table(captured.schema)
                    live._write_lock = self._mutation_lock
                    live._on_mutation = self._on_table_mutation
                    self._tables[captured.schema.name] = live
                    live.restore_from(captured)
                elif live._version != captured.version:
                    live.restore_from(captured)
            self._tick()
            self._catalog_version += 1

    @property
    def snapshot_pins(self) -> int:
        """Total live storage pins across all tables (observability: a
        healthy idle service reports 0 — snapshots do not leak)."""
        # list() snapshots the catalog atomically so lock-free stats
        # readers cannot trip over a concurrent CREATE/DROP TABLE.
        return sum(table._pinned for table in list(self._tables.values()))

    @contextmanager
    def statement_scope(self) -> Iterator[None]:
        """Hold the mutation lock across one multi-mutation statement.

        Per-row operations (a multi-row INSERT) each take the shared lock
        themselves; wrapping the whole statement in this (reentrant)
        scope guarantees no snapshot can be pinned between its rows, so
        readers never observe a half-applied statement.
        """
        with self._mutation_lock:
            yield

    def _on_table_mutation(self, delta: TableDelta) -> int:
        """Table-mutation callback: advance the clock, fan the delta out.

        The mutated table's stamp is assigned *before* listeners run, so a
        listener that queries through the plan cache mid-callback cannot be
        served a pre-mutation materialized result under a stale stamp.
        """
        stamp = self._tick()
        table = self._tables.get(delta.table)
        if table is not None:
            table._version = stamp
        if self._delta_listeners:
            self._broadcast(delta)
        return stamp

    # -- delta listeners ------------------------------------------------------

    def add_delta_listener(self, listener: Callable[[TableDelta], None]) -> None:
        """Subscribe to row-level deltas from every table.

        Bound methods are held weakly (``WeakMethod``), so a forgotten NLI
        does not keep receiving deltas — or leak — once dropped; anything
        else (plain functions, builtin methods) is held strongly.
        """
        try:
            ref: Callable[[], Any] = weakref.WeakMethod(
                listener
            )  # type: ignore[arg-type]
        except TypeError:
            ref = lambda fn=listener: fn  # noqa: E731 - strong holder
        self._delta_listeners.append(ref)

    def remove_delta_listener(self, listener: Callable[[TableDelta], None]) -> None:
        self._delta_listeners = [
            ref for ref in self._delta_listeners if ref() not in (None, listener)
        ]

    def _broadcast(self, delta: TableDelta) -> None:
        # Dispatch over a snapshot, then prune dead refs from the *current*
        # list — a listener may subscribe or unsubscribe during its own
        # callback, and overwriting with the snapshot would lose that.
        for ref in list(self._delta_listeners):
            fn = ref()
            if fn is not None:
                fn(delta)
        self._delta_listeners = [
            ref for ref in self._delta_listeners if ref() is not None
        ]

    # -- catalog -------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.ref_table != schema.name and fk.ref_table not in self._tables:
                raise SchemaError(
                    f"foreign key of {schema.name!r} references unknown table "
                    f"{fk.ref_table!r}"
                )
        table = Table(schema)
        with self._mutation_lock:
            # All tables share the database's mutation lock, so snapshot
            # capture (which holds it) is atomic against every writer.
            table._write_lock = self._mutation_lock
            table._on_mutation = self._on_table_mutation
            table._version = self._tick()
            self._tables[schema.name] = table
            self._catalog_version += 1
        return table

    def drop_table(self, name: str) -> None:
        lowered = name.lower()
        with self._mutation_lock:
            if lowered not in self._tables:
                raise UnknownTableError(f"no table named {name!r}")
            self._tables[lowered]._on_mutation = None
            del self._tables[lowered]
            self._tick()
            self._catalog_version += 1

    def table(self, name: str) -> Table:
        lowered = name.lower()
        if lowered not in self._tables:
            raise UnknownTableError(f"no table named {name!r}")
        return self._tables[lowered]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    def schemas(self) -> list[TableSchema]:
        return [t.schema for t in self._tables.values()]

    # -- mutation with FK enforcement ----------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any] | Sequence[Any]) -> int:
        table = self.table(table_name)
        if not self.enforce_fk or not table.schema.foreign_keys:
            return table.insert(values)
        # Validate *before* inserting: the old insert-then-compensate
        # order let a concurrent snapshot pin the rejected row during the
        # window between insert and rollback.  The row is normalised once
        # and handed straight to the table.
        row = table._normalise(values)
        self._check_row_fks(table, row)
        return table.insert_normalised(row)

    def insert_many(
        self, table_name: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> int:
        count = 0
        # One statement scope for the batch: a concurrent snapshot lands
        # before or after the whole bulk insert, never between its rows.
        with self.statement_scope():
            for values in rows:
                self.insert(table_name, values)
                count += 1
        return count

    def update_rows(
        self,
        table_name: str,
        updates: Iterable[tuple[int, Mapping[str, Any] | Sequence[Any]]],
    ) -> int:
        """Batch row replacement with referential-integrity enforcement.

        Two directions are validated *before* anything mutates (so a
        violation leaves the table untouched, matching the primary-key
        behaviour of :meth:`Table.update_rows`):

        * child side — an updated foreign-key value must match a parent
          row, exactly as on :meth:`insert`;
        * parent side — rewriting a referenced (primary-key) value must
          not strand child rows still pointing at the old value.

        Both reject with the same :class:`IntegrityError` shape as
        INSERT-time FK violations.
        """
        table = self.table(table_name)
        if not self.enforce_fk or not self._fk_involved(table):
            # No outgoing or incoming foreign keys: skip the validation
            # pass entirely (the common case on the DML hot path).
            return table.update_rows(updates)
        prepared = table.prepare_updates(updates)
        self._check_update_fks(table, prepared)
        self._check_no_stranded_children(table, prepared)
        return table.apply_prepared_updates(prepared)

    def update_row(
        self, table_name: str, row_id: int, values: Mapping[str, Any] | Sequence[Any]
    ) -> bool:
        """Single-row convenience over :meth:`update_rows`."""
        return self.update_rows(table_name, [(row_id, values)]) == 1

    def _fk_involved(self, table: Table) -> bool:
        """Does ``table`` have outgoing FKs, or any table referencing it?"""
        if table.schema.foreign_keys:
            return True
        return any(
            fk.ref_table == table.name
            for other in self.tables()
            for fk in other.schema.foreign_keys
        )

    def _check_row_fks(self, table: Table, row: tuple[Any, ...]) -> None:
        """Validate a (not-yet-inserted) row's FK values against parents."""
        for fk in table.schema.foreign_keys:
            value = row[table.schema.column_index(fk.column)]
            if value is None:
                continue
            if (
                fk.ref_table == table.name
                and row[table.schema.column_index(fk.ref_column)] == value
            ):
                # Self-referencing row satisfies its own FK (it used to be
                # found by the post-insert lookup; keep accepting it).
                continue
            parent = self.table(fk.ref_table)
            if not parent.lookup_equal(fk.ref_column, value):
                raise IntegrityError(
                    f"{table.name}.{fk.column}={value!r} has no match in "
                    f"{fk.ref_table}.{fk.ref_column}"
                )

    def _check_update_fks(
        self,
        table: Table,
        prepared: list[tuple[int, tuple[Any, ...], tuple[Any, ...]]],
    ) -> None:
        """Child-side validation for a batch update.

        Unchanged FK columns are skipped (their values were validated when
        they entered the table).  A self-referencing FK is judged against
        the table's *post-batch* state, so a batch that rewrites a key and
        its in-batch references together (``SET id = id + 100,
        manager_id = manager_id + 100``) is accepted.
        """
        final_values: dict[str, set[Any]] = {}

        def final_column_state(column: str) -> set[Any]:
            values = final_values.get(column)
            if values is None:
                pos = table.schema.column_index(column)
                updating = {row_id for row_id, _, _ in prepared}
                values = {new[pos] for _, new, _ in prepared}
                for row_id, row in table.rows_with_ids():
                    if row_id not in updating:
                        values.add(row[pos])
                final_values[column] = values
            return values

        for fk in table.schema.foreign_keys:
            pos = table.schema.column_index(fk.column)
            self_referencing = fk.ref_table == table.name
            for _, new, old in prepared:
                value = new[pos]
                if value is None or old[pos] == value:
                    continue
                if self_referencing:
                    matched = value in final_column_state(fk.ref_column)
                else:
                    matched = bool(
                        self.table(fk.ref_table).lookup_equal(fk.ref_column, value)
                    )
                if not matched:
                    raise IntegrityError(
                        f"{table.name}.{fk.column}={value!r} has no match in "
                        f"{fk.ref_table}.{fk.ref_column}"
                    )

    def _check_no_stranded_children(
        self,
        table: Table,
        prepared: list[tuple[int, tuple[Any, ...], tuple[Any, ...]]],
    ) -> None:
        """Reject updates that rewrite a referenced value away from its
        children (the ROADMAP-listed FK hole: a parent PK rewrite used to
        strand child rows silently)."""
        incoming = [
            (fk, child)
            for child in self.tables()
            for fk in child.schema.foreign_keys
            if fk.ref_table == table.name
        ]
        if not incoming:
            return
        updating_ids = {row_id for row_id, _, _ in prepared}
        for ref_column in {fk.ref_column for fk, _ in incoming}:
            pos = table.schema.column_index(ref_column)
            rewritten = {
                old[pos]
                for _, new, old in prepared
                if old[pos] is not None and old[pos] != new[pos]
            }
            if not rewritten:
                continue
            # A value only disappears if no row (updated or untouched)
            # still carries it after the batch applies.  With an index on
            # the referenced column (the PK, usually) survival is a probe
            # per rewritten value; otherwise one scan of the parent.
            new_values = {new[pos] for _, new, _ in prepared}
            index = table.hash_index(ref_column)
            if index is not None:
                removed = {
                    value
                    for value in rewritten
                    if value not in new_values
                    # The index still reflects pre-update state, so filter
                    # out the rows being rewritten in this batch.
                    and not any(
                        row_id not in updating_ids
                        for row_id in index.lookup(value)
                    )
                }
            else:
                surviving = set(new_values)
                for row_id, row in table.rows_with_ids():
                    if row_id not in updating_ids:
                        surviving.add(row[pos])
                removed = rewritten - surviving
            if not removed:
                continue
            updated_new = {row_id: new for row_id, new, _ in prepared}
            for fk, child in incoming:
                if fk.ref_column != ref_column:
                    continue
                child_pos = child.schema.column_index(fk.column)
                child_index = (
                    child.hash_index(fk.column) if child is not table else None
                )
                if child_index is not None:
                    # Indexed child FK column: probe per removed value
                    # instead of scanning the child table.
                    for value in removed:
                        if any(
                            child.row_by_id(row_id) is not None
                            for row_id in child_index.lookup(value)
                        ):
                            raise IntegrityError(
                                f"{child.name}.{fk.column}={value!r} has no "
                                f"match in {table.name}.{ref_column}"
                            )
                    continue
                for child_row_id, child_row in child.rows_with_ids():
                    # Self-referencing updates: judge an updated row by its
                    # post-update FK value, not the one being replaced.
                    if child is table and child_row_id in updated_new:
                        child_row = updated_new[child_row_id]
                    value = child_row[child_pos]
                    if value is not None and value in removed:
                        raise IntegrityError(
                            f"{child.name}.{fk.column}={value!r} has no match in "
                            f"{table.name}.{ref_column}"
                        )

    def check_integrity(self) -> list[str]:
        """Full referential-integrity sweep; returns violation messages."""
        problems: list[str] = []
        for table in self._tables.values():
            for fk in table.schema.foreign_keys:
                parent = self.table(fk.ref_table)
                parent_values = set(parent.column_values(fk.ref_column))
                pos = table.schema.column_index(fk.column)
                for row in table.rows():
                    value = row[pos]
                    if value is not None and value not in parent_values:
                        problems.append(
                            f"{table.name}.{fk.column}={value!r} missing in "
                            f"{fk.ref_table}.{fk.ref_column}"
                        )
        return problems

    # -- stats used by the optimizer ------------------------------------------

    def row_count(self, table_name: str) -> int:
        return len(self.table(table_name))

    def statistics(self, table_name: str) -> TableStatistics:
        """The incrementally maintained statistics of one table."""
        return self.table(table_name).statistics

    def summary(self) -> str:
        """Human-readable catalog overview."""
        lines = [f"database {self.name!r}:"]
        for name in self.table_names:
            table = self._tables[name]
            cols = ", ".join(
                f"{c.name} {c.sql_type}" for c in table.schema.columns
            )
            lines.append(f"  {name}({cols}) [{len(table)} rows]")
        return "\n".join(lines)
