"""The database catalog: named tables plus referential-integrity checks."""

from __future__ import annotations

import weakref
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import IntegrityError, SchemaError, UnknownTableError
from repro.sqlengine.schema import TableSchema
from repro.sqlengine.statistics import TableStatistics
from repro.sqlengine.table import Table, TableDelta


class Database:
    """A named collection of tables.

    Foreign keys are checked on :meth:`insert` when ``enforce_fk`` is on
    (default).  Bulk loaders may switch it off and call
    :meth:`check_integrity` once at the end.
    """

    def __init__(self, name: str = "db", enforce_fk: bool = True) -> None:
        self.name = name
        self.enforce_fk = enforce_fk
        self._tables: dict[str, Table] = {}
        #: Global monotone clock.  Every mutation anywhere advances it, and
        #: the mutated table's own stamp is set to the new clock value — so
        #: per-table stamps are unique across the database's whole history
        #: (a dropped-and-recreated table can never echo an old stamp).
        self._clock = 0
        self._catalog_version = 0
        #: Zero-arg holders resolving to a live listener or None (weak for
        #: bound methods, strong otherwise) — see add_delta_listener.
        self._delta_listeners: list[Callable[[], Any]] = []

    # -- schema/DML versioning ------------------------------------------------

    @property
    def version(self) -> int:
        """Derived summary clock: advanced by every DDL/DML mutation.

        Kept as a cheap "did anything change at all" signal; fine-grained
        consumers should use :meth:`table_version` / :meth:`table_versions`
        so a write to one table does not invalidate state derived from
        others.
        """
        return self._clock

    @property
    def catalog_version(self) -> int:
        """Bumped only by CREATE/DROP TABLE (schema-shape changes)."""
        return self._catalog_version

    def table_version(self, name: str) -> int | None:
        """Current stamp of one table, or None when it does not exist."""
        table = self._tables.get(name.lower())
        return None if table is None else table.version

    def table_versions(self) -> dict[str, int]:
        """Snapshot of every table's version stamp."""
        return {name: table.version for name, table in self._tables.items()}

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _on_table_mutation(self, delta: TableDelta) -> int:
        """Table-mutation callback: advance the clock, fan the delta out.

        The mutated table's stamp is assigned *before* listeners run, so a
        listener that queries through the plan cache mid-callback cannot be
        served a pre-mutation materialized result under a stale stamp.
        """
        stamp = self._tick()
        table = self._tables.get(delta.table)
        if table is not None:
            table._version = stamp
        if self._delta_listeners:
            self._broadcast(delta)
        return stamp

    # -- delta listeners ------------------------------------------------------

    def add_delta_listener(self, listener: Callable[[TableDelta], None]) -> None:
        """Subscribe to row-level deltas from every table.

        Bound methods are held weakly (``WeakMethod``), so a forgotten NLI
        does not keep receiving deltas — or leak — once dropped; anything
        else (plain functions, builtin methods) is held strongly.
        """
        try:
            ref: Callable[[], Any] = weakref.WeakMethod(listener)  # type: ignore[arg-type]
        except TypeError:
            ref = lambda fn=listener: fn  # noqa: E731 - strong holder
        self._delta_listeners.append(ref)

    def remove_delta_listener(self, listener: Callable[[TableDelta], None]) -> None:
        self._delta_listeners = [
            ref for ref in self._delta_listeners if ref() not in (None, listener)
        ]

    def _broadcast(self, delta: TableDelta) -> None:
        # Dispatch over a snapshot, then prune dead refs from the *current*
        # list — a listener may subscribe or unsubscribe during its own
        # callback, and overwriting with the snapshot would lose that.
        for ref in list(self._delta_listeners):
            fn = ref()
            if fn is not None:
                fn(delta)
        self._delta_listeners = [
            ref for ref in self._delta_listeners if ref() is not None
        ]

    # -- catalog -------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            if fk.ref_table != schema.name and fk.ref_table not in self._tables:
                raise SchemaError(
                    f"foreign key of {schema.name!r} references unknown table "
                    f"{fk.ref_table!r}"
                )
        table = Table(schema)
        table._on_mutation = self._on_table_mutation
        table._version = self._tick()
        self._tables[schema.name] = table
        self._catalog_version += 1
        return table

    def drop_table(self, name: str) -> None:
        lowered = name.lower()
        if lowered not in self._tables:
            raise UnknownTableError(f"no table named {name!r}")
        self._tables[lowered]._on_mutation = None
        del self._tables[lowered]
        self._tick()
        self._catalog_version += 1

    def table(self, name: str) -> Table:
        lowered = name.lower()
        if lowered not in self._tables:
            raise UnknownTableError(f"no table named {name!r}")
        return self._tables[lowered]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    def schemas(self) -> list[TableSchema]:
        return [t.schema for t in self._tables.values()]

    # -- mutation with FK enforcement ----------------------------------------

    def insert(self, table_name: str, values: Mapping[str, Any] | Sequence[Any]) -> int:
        table = self.table(table_name)
        row_id = table.insert(values)
        if self.enforce_fk:
            row = table.row_by_id(row_id)
            assert row is not None
            try:
                self._check_row_fks(table, row)
            except IntegrityError:
                table.delete_row(row_id)
                raise
        return row_id

    def insert_many(
        self, table_name: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> int:
        count = 0
        for values in rows:
            self.insert(table_name, values)
            count += 1
        return count

    def _check_row_fks(self, table: Table, row: tuple[Any, ...]) -> None:
        for fk in table.schema.foreign_keys:
            value = row[table.schema.column_index(fk.column)]
            if value is None:
                continue
            parent = self.table(fk.ref_table)
            if not parent.lookup_equal(fk.ref_column, value):
                raise IntegrityError(
                    f"{table.name}.{fk.column}={value!r} has no match in "
                    f"{fk.ref_table}.{fk.ref_column}"
                )

    def check_integrity(self) -> list[str]:
        """Full referential-integrity sweep; returns violation messages."""
        problems: list[str] = []
        for table in self._tables.values():
            for fk in table.schema.foreign_keys:
                parent = self.table(fk.ref_table)
                parent_values = set(parent.column_values(fk.ref_column))
                pos = table.schema.column_index(fk.column)
                for row in table.rows():
                    value = row[pos]
                    if value is not None and value not in parent_values:
                        problems.append(
                            f"{table.name}.{fk.column}={value!r} missing in "
                            f"{fk.ref_table}.{fk.ref_column}"
                        )
        return problems

    # -- stats used by the optimizer ------------------------------------------

    def row_count(self, table_name: str) -> int:
        return len(self.table(table_name))

    def statistics(self, table_name: str) -> TableStatistics:
        """The incrementally maintained statistics of one table."""
        return self.table(table_name).statistics

    def summary(self) -> str:
        """Human-readable catalog overview."""
        lines = [f"database {self.name!r}:"]
        for name in self.table_names:
            table = self._tables[name]
            cols = ", ".join(
                f"{c.name} {c.sql_type}" for c in table.schema.columns
            )
            lines.append(f"  {name}({cols}) [{len(table)} rows]")
        return "\n".join(lines)
