"""Plan execution and full statement evaluation.

:class:`Engine` is the public façade: it parses, plans, optimizes and runs
statements against a :class:`~repro.sqlengine.database.Database`.

The access plan (scans/joins/filters) produces a row stream; the executor
then applies the "upper" query semantics — grouping and aggregation,
HAVING, projection with star expansion, DISTINCT, ORDER BY and LIMIT —
directly from the AST, because those need expression-level evaluation.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import (
    ExecutionError,
    PlanError,
    SchemaError,
    SqlSyntaxError,
)
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.aggregates import AGGREGATE_NAMES, AGGREGATES
from repro.sqlengine.database import Database
from repro.sqlengine.expressions import Env, Evaluator, Scope
from repro.sqlengine.optimizer import optimize
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.planner import (
    FilterNode,
    HashJoinNode,
    JoinNode,
    PlanNode,
    ScanNode,
    build_plan,
)
from repro.sqlengine.result import ResultSet
from repro.sqlengine.schema import Column, ForeignKey, TableSchema
from repro.sqlengine.types import SqlType, sort_key

_TYPE_NAMES = {
    "int": SqlType.INT,
    "integer": SqlType.INT,
    "float": SqlType.FLOAT,
    "real": SqlType.FLOAT,
    "double": SqlType.FLOAT,
    "text": SqlType.TEXT,
    "varchar": SqlType.TEXT,
    "char": SqlType.TEXT,
    "string": SqlType.TEXT,
    "bool": SqlType.BOOL,
    "boolean": SqlType.BOOL,
}


class _AggregateEvaluator(Evaluator):
    """Evaluates expressions over a *group* of rows.

    Aggregate calls compute over all group rows; everything else resolves
    against the group's representative (first) row, matching the permissive
    semantics of engines like MySQL for non-grouped columns.
    """

    def __init__(self, base: Evaluator, group_rows: list[Env]) -> None:
        super().__init__(base._run_subquery)
        self._base = base
        self._group_rows = group_rows

    def evaluate(self, expr: ast.Expr, env: Env) -> Any:
        if isinstance(expr, ast.FunctionCall) and expr.name.lower() in AGGREGATE_NAMES:
            return self._eval_aggregate(expr)
        return super().evaluate(expr, env)

    def _eval_aggregate(self, expr: ast.FunctionCall) -> Any:
        name = expr.name.lower()
        if len(expr.args) == 1 and isinstance(expr.args[0], ast.Star):
            if name != "count":
                raise ExecutionError(f"{expr.name}(*) is not valid")
            return len(self._group_rows)
        if len(expr.args) != 1:
            raise ExecutionError(f"{expr.name}() takes exactly one argument")
        arg = expr.args[0]
        values = [self._base.evaluate(arg, row_env) for row_env in self._group_rows]
        return AGGREGATES[name](values, distinct=expr.distinct)


class Engine:
    """Executes SQL statements against an in-memory database.

    >>> from repro.sqlengine.database import Database
    >>> engine = Engine(Database())
    >>> engine.execute("SELECT 1 + 1 AS two").scalar()
    2
    """

    def __init__(
        self,
        database: Database,
        use_optimizer: bool = True,
        use_indexes: bool = True,
    ) -> None:
        self.database = database
        self.use_optimizer = use_optimizer
        self.use_indexes = use_indexes
        self._evaluator = Evaluator(self._run_subquery)

    # -- public API ------------------------------------------------------------

    def execute(self, statement: str | ast.Statement) -> ResultSet:
        """Parse (if needed) and execute one statement."""
        stmt = parse_sql(statement) if isinstance(statement, str) else statement
        if isinstance(stmt, ast.Select):
            return self._execute_select(stmt)
        if isinstance(stmt, ast.CreateTable):
            return self._execute_create(stmt)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.Delete):
            return self._execute_delete(stmt)
        if isinstance(stmt, ast.Update):
            return self._execute_update(stmt)
        raise SqlSyntaxError(f"unsupported statement {type(stmt).__name__}")

    def explain(self, sql: str) -> str:
        """Describe the (optimized) access plan for a SELECT."""
        stmt = parse_sql(sql)
        if not isinstance(stmt, ast.Select):
            raise SqlSyntaxError("EXPLAIN supports only SELECT")
        plan = self._plan_for(stmt)
        if plan is None:
            return "NoTable"
        return plan.describe()

    # -- SELECT ------------------------------------------------------------------

    def _plan_for(self, select: ast.Select) -> PlanNode | None:
        plan = build_plan(select, self.database)
        if self.use_optimizer:
            plan = optimize(plan, self.database, use_indexes=self.use_indexes)
        return plan

    def _run_subquery(self, select: ast.Select, env: Env) -> list[tuple[Any, ...]]:
        return self._execute_select(select, outer_env=env).rows

    def _execute_select(
        self, select: ast.Select, outer_env: Env | None = None
    ) -> ResultSet:
        plan = self._plan_for(select)
        if plan is None:
            scope = Scope([])
            rows: list[tuple[Any, ...]] = [()]
        else:
            scope, rows = self._run_plan(plan, outer_env)

        envs = [Env(scope, row, outer_env) for row in rows]

        if self._is_aggregate_query(select):
            projected = self._project_groups(select, scope, envs, outer_env)
        else:
            if select.having is not None:
                raise PlanError("HAVING requires GROUP BY or aggregates")
            projected = self._project_rows(select, scope, envs)

        columns, keyed_rows = projected
        if select.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique = []
            for row, keys in keyed_rows:
                marker = tuple(row)
                if marker in seen:
                    continue
                seen.add(marker)
                unique.append((row, keys))
            keyed_rows = unique
        if select.order_by:
            for index in range(len(select.order_by) - 1, -1, -1):
                descending = select.order_by[index].descending
                keyed_rows.sort(
                    key=lambda pair, i=index: sort_key(pair[1][i]),
                    reverse=descending,
                )
        if select.limit is not None:
            keyed_rows = keyed_rows[: select.limit]
        return ResultSet(columns, [row for row, _ in keyed_rows])

    # -- projection --------------------------------------------------------------

    def _is_aggregate_query(self, select: ast.Select) -> bool:
        if select.group_by:
            return True
        for item in select.items:
            if not isinstance(item.expr, ast.Star) and ast.contains_aggregate(
                item.expr, AGGREGATE_NAMES
            ):
                return True
        if select.having is not None:
            return True
        return False

    def _expand_items(
        self, select: ast.Select, scope: Scope
    ) -> list[tuple[ast.Expr, str]]:
        """Expand stars and name every output column."""
        out: list[tuple[ast.Expr, str]] = []
        for item in select.items:
            expr = item.expr
            if isinstance(expr, ast.Star):
                matching = [
                    (binding, column)
                    for binding, column in scope.entries
                    if expr.table is None or binding == expr.table.lower()
                ]
                if not matching:
                    raise PlanError(
                        f"star {expr.render()!r} matches no table in scope"
                    )
                counts: dict[str, int] = {}
                for _, column in matching:
                    counts[column] = counts.get(column, 0) + 1
                for binding, column in matching:
                    name = column if counts[column] == 1 else f"{binding}.{column}"
                    out.append((ast.ColumnRef(column, table=binding), name))
                continue
            if item.alias:
                name = item.alias
            elif isinstance(expr, ast.ColumnRef):
                name = expr.name
            else:
                name = expr.render().lower()
            out.append((expr, name))
        return out

    def _order_exprs(
        self, select: ast.Select, items: list[tuple[ast.Expr, str]]
    ) -> list[tuple[ast.Expr | None, int | None]]:
        """Resolve ORDER BY items to (expr, select-item index) pairs.

        A bare identifier matching an output column name (or a 1-based
        ordinal literal) orders by the projected value; anything else is an
        expression evaluated in the row/group environment.
        """
        resolved: list[tuple[ast.Expr | None, int | None]] = []
        names = [name for _, name in items]
        for order in select.order_by:
            expr = order.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                index = expr.value - 1
                if not 0 <= index < len(items):
                    raise PlanError(f"ORDER BY ordinal {expr.value} out of range")
                resolved.append((None, index))
                continue
            if isinstance(expr, ast.ColumnRef) and expr.table is None and expr.name in names:
                resolved.append((None, names.index(expr.name)))
                continue
            resolved.append((expr, None))
        return resolved

    def _project_rows(
        self, select: ast.Select, scope: Scope, envs: list[Env]
    ) -> tuple[list[str], list[tuple[tuple[Any, ...], tuple[Any, ...]]]]:
        items = self._expand_items(select, scope)
        order = self._order_exprs(select, items)
        columns = [name for _, name in items]
        keyed_rows = []
        for env in envs:
            row = tuple(self._evaluator.evaluate(expr, env) for expr, _ in items)
            keys = tuple(
                row[index] if expr is None else self._evaluator.evaluate(expr, env)
                for expr, index in order
            )
            keyed_rows.append((row, keys))
        return columns, keyed_rows

    def _project_groups(
        self,
        select: ast.Select,
        scope: Scope,
        envs: list[Env],
        outer_env: Env | None,
    ) -> tuple[list[str], list[tuple[tuple[Any, ...], tuple[Any, ...]]]]:
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                raise PlanError("'*' cannot appear in an aggregate query")
        items = self._expand_items(select, scope)
        order = self._order_exprs(select, items)
        columns = [name for _, name in items]

        groups: dict[tuple[Any, ...], list[Env]] = {}
        group_order: list[tuple[Any, ...]] = []
        if select.group_by:
            for env in envs:
                key = tuple(
                    self._evaluator.evaluate(expr, env) for expr in select.group_by
                )
                if key not in groups:
                    groups[key] = []
                    group_order.append(key)
                groups[key].append(env)
        else:
            key = ()
            groups[key] = list(envs)
            group_order.append(key)

        keyed_rows = []
        for key in group_order:
            group_envs = groups[key]
            representative = (
                group_envs[0]
                if group_envs
                else Env(scope, tuple([None] * len(scope)), outer_env)
            )
            agg = _AggregateEvaluator(self._evaluator, group_envs)
            if select.having is not None and agg.evaluate(
                select.having, representative
            ) is not True:
                continue
            row = tuple(agg.evaluate(expr, representative) for expr, _ in items)
            keys = tuple(
                row[index] if expr is None else agg.evaluate(expr, representative)
                for expr, index in order
            )
            keyed_rows.append((row, keys))
        return columns, keyed_rows

    # -- plan interpretation --------------------------------------------------------

    def _run_plan(
        self, plan: PlanNode, outer_env: Env | None
    ) -> tuple[Scope, list[tuple[Any, ...]]]:
        if isinstance(plan, ScanNode):
            return self._run_scan(plan, outer_env)
        if isinstance(plan, FilterNode):
            scope, rows = self._run_plan(plan.child, outer_env)
            kept = [
                row
                for row in rows
                if self._evaluator.is_true(plan.predicate, Env(scope, row, outer_env))
            ]
            return scope, kept
        if isinstance(plan, HashJoinNode):
            return self._run_hash_join(plan, outer_env)
        if isinstance(plan, JoinNode):
            return self._run_nested_join(plan, outer_env)
        raise ExecutionError(f"unknown plan node {type(plan).__name__}")

    def _run_scan(
        self, plan: ScanNode, outer_env: Env | None
    ) -> tuple[Scope, list[tuple[Any, ...]]]:
        table = self.database.table(plan.table_name)
        scope = Scope([(plan.binding, col) for col in table.schema.column_names])
        candidate_ids: set[int] | None = None
        for column, value in plan.eq_filters:
            index = table.hash_index(column) or table.sorted_index(column)
            assert index is not None
            ids = set(index.lookup(value))
            candidate_ids = ids if candidate_ids is None else candidate_ids & ids
        for column, op, value in plan.range_filters:
            index = table.sorted_index(column)
            assert index is not None
            if op in ("<", "<="):
                ids = set(index.range_lookup(high=value, high_inclusive=op == "<="))
            else:
                ids = set(index.range_lookup(low=value, low_inclusive=op == ">="))
            candidate_ids = ids if candidate_ids is None else candidate_ids & ids
        if candidate_ids is None:
            rows: Iterable[tuple[Any, ...]] = table.rows()
        else:
            rows = (
                row
                for row_id in sorted(candidate_ids)
                if (row := table.row_by_id(row_id)) is not None
            )
        if plan.residual_filters:
            out = [
                row
                for row in rows
                if all(
                    self._evaluator.is_true(pred, Env(scope, row, outer_env))
                    for pred in plan.residual_filters
                )
            ]
        else:
            out = list(rows)
        return scope, out

    def _run_nested_join(
        self, plan: JoinNode, outer_env: Env | None
    ) -> tuple[Scope, list[tuple[Any, ...]]]:
        left_scope, left_rows = self._run_plan(plan.left, outer_env)
        right_scope, right_rows = self._run_plan(plan.right, outer_env)
        scope = left_scope.merge(right_scope)
        null_pad = tuple([None] * len(right_scope))
        out = []
        for left_row in left_rows:
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if plan.condition is None or self._evaluator.is_true(
                    plan.condition, Env(scope, combined, outer_env)
                ):
                    matched = True
                    out.append(combined)
            if plan.kind == "LEFT" and not matched:
                out.append(left_row + null_pad)
        return scope, out

    def _run_hash_join(
        self, plan: HashJoinNode, outer_env: Env | None
    ) -> tuple[Scope, list[tuple[Any, ...]]]:
        left_scope, left_rows = self._run_plan(plan.left, outer_env)
        right_scope, right_rows = self._run_plan(plan.right, outer_env)
        scope = left_scope.merge(right_scope)
        buckets: dict[Any, list[tuple[Any, ...]]] = {}
        for right_row in right_rows:
            key = self._evaluator.evaluate(
                plan.right_key, Env(right_scope, right_row, outer_env)
            )
            if key is None:
                continue
            buckets.setdefault(_join_key(key), []).append(right_row)
        null_pad = tuple([None] * len(right_scope))
        out = []
        for left_row in left_rows:
            key = self._evaluator.evaluate(
                plan.left_key, Env(left_scope, left_row, outer_env)
            )
            matched = False
            if key is not None:
                for right_row in buckets.get(_join_key(key), []):
                    combined = left_row + right_row
                    if plan.residual is None or self._evaluator.is_true(
                        plan.residual, Env(scope, combined, outer_env)
                    ):
                        matched = True
                        out.append(combined)
            if plan.kind == "LEFT" and not matched:
                out.append(left_row + null_pad)
        return scope, out

    # -- DDL / DML ---------------------------------------------------------------------

    def _execute_create(self, stmt: ast.CreateTable) -> ResultSet:
        columns = []
        primary_key: str | None = None
        foreign_keys = []
        for col in stmt.columns:
            type_name = col.type_name.lower()
            if type_name not in _TYPE_NAMES:
                raise SchemaError(f"unknown type {col.type_name!r}")
            nullable = not (col.not_null or col.primary_key)
            columns.append(Column(col.name, _TYPE_NAMES[type_name], nullable))
            if col.primary_key:
                if primary_key is not None:
                    raise SchemaError("multiple PRIMARY KEY columns")
                primary_key = col.name
            if col.references is not None:
                foreign_keys.append(
                    ForeignKey(col.name, col.references[0], col.references[1])
                )
        schema = TableSchema(stmt.name, columns, primary_key, foreign_keys)
        self.database.create_table(schema)
        return ResultSet(["rows_affected"], [(0,)])

    def _const(self, expr: ast.Expr) -> Any:
        return self._evaluator.evaluate(expr, Env(Scope([]), ()))

    def _execute_insert(self, stmt: ast.Insert) -> ResultSet:
        table = self.database.table(stmt.table)
        count = 0
        for row_exprs in stmt.rows:
            values = [self._const(expr) for expr in row_exprs]
            if stmt.columns:
                if len(values) != len(stmt.columns):
                    raise PlanError("INSERT column/value count mismatch")
                self.database.insert(stmt.table, dict(zip(stmt.columns, values)))
            else:
                if len(values) != len(table.schema.columns):
                    raise PlanError("INSERT value count mismatch")
                self.database.insert(stmt.table, values)
            count += 1
        return ResultSet(["rows_affected"], [(count,)])

    def _matching_row_ids(self, table_name: str, where: ast.Expr | None) -> list[int]:
        table = self.database.table(table_name)
        scope = Scope([(table.name, col) for col in table.schema.column_names])
        out = []
        for row_id, row in table.rows_with_ids():
            if where is None or self._evaluator.is_true(where, Env(scope, row)):
                out.append(row_id)
        return out

    def _execute_delete(self, stmt: ast.Delete) -> ResultSet:
        table = self.database.table(stmt.table)
        ids = self._matching_row_ids(stmt.table, stmt.where)
        for row_id in ids:
            table.delete_row(row_id)
        return ResultSet(["rows_affected"], [(len(ids),)])

    def _execute_update(self, stmt: ast.Update) -> ResultSet:
        table = self.database.table(stmt.table)
        scope = Scope([(table.name, col) for col in table.schema.column_names])
        ids = self._matching_row_ids(stmt.table, stmt.where)
        updated_rows = []
        for row_id in ids:
            row = table.row_by_id(row_id)
            assert row is not None
            env = Env(scope, row)
            values = dict(zip(table.schema.column_names, row))
            for column, expr in stmt.assignments:
                if not table.schema.has_column(column):
                    raise SchemaError(
                        f"table {table.name!r} has no column {column!r}"
                    )
                values[column.lower()] = self._evaluator.evaluate(expr, env)
            updated_rows.append((row_id, values))
        for row_id, values in updated_rows:
            table.delete_row(row_id)
            table.insert(values)
        return ResultSet(["rows_affected"], [(len(ids),)])


def _join_key(value: Any) -> Any:
    """Normalise numeric join keys so 1 and 1.0 land in one bucket."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value
